/**
 * @file
 * Compiler-throughput microbenchmarks (google-benchmark): parse, semantic
 * analysis, srDFG construction, pass pipeline, lowering, and translation
 * rates on representative workloads. Not a paper figure — engineering
 * telemetry for the stack itself.
 */
#include <benchmark/benchmark.h>

#include "lower/lower.h"
#include "passes/pass.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"
#include "srdfg/builder.h"
#include "workloads/programs.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

void
BM_Parse(benchmark::State &state)
{
    const auto src = wl::mobileRobotProgram();
    for (auto _ : state) {
        auto program = lang::parse(src);
        benchmark::DoNotOptimize(program);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_Parse);

void
BM_Analyze(benchmark::State &state)
{
    const auto src = wl::mobileRobotProgram();
    const auto program = lang::parse(src);
    for (auto _ : state)
        lang::analyze(program);
}
BENCHMARK(BM_Analyze);

void
BM_BuildSrdfg(benchmark::State &state)
{
    const auto src = wl::mobileRobotProgram();
    for (auto _ : state) {
        auto graph = ir::compileToSrdfg(src);
        benchmark::DoNotOptimize(graph);
    }
}
BENCHMARK(BM_BuildSrdfg);

void
BM_BuildResnet18(benchmark::State &state)
{
    const auto src = wl::resnet18Program();
    for (auto _ : state) {
        auto graph = ir::compileToSrdfg(src);
        benchmark::DoNotOptimize(graph);
    }
}
BENCHMARK(BM_BuildResnet18);

void
BM_PassPipeline(benchmark::State &state)
{
    const auto src = wl::mobileRobotProgram();
    for (auto _ : state) {
        state.PauseTiming();
        auto graph = ir::compileToSrdfg(src);
        state.ResumeTiming();
        auto pm = pass::standardPipeline();
        pm.runToFixpoint(*graph);
        benchmark::DoNotOptimize(graph);
    }
}
BENCHMARK(BM_PassPipeline);

void
BM_LowerAndTranslate(benchmark::State &state)
{
    const auto registry = target::standardRegistry();
    const auto src = wl::mobileRobotProgram();
    for (auto _ : state) {
        auto compiled = wl::compileBenchmark(src, {}, registry,
                                             lang::Domain::RBT);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_LowerAndTranslate);

void
BM_EndToEndBrainStimul(benchmark::State &state)
{
    const auto registry = target::standardRegistry();
    const auto src = wl::brainStimulProgram();
    for (auto _ : state) {
        auto compiled =
            wl::compileBenchmark(src, {}, registry, lang::Domain::None);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_EndToEndBrainStimul);

} // namespace

BENCHMARK_MAIN();
