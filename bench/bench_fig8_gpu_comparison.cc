/**
 * @file
 * Figure 8: runtime and performance-per-watt of PolyMath-compiled programs
 * vs. Titan Xp and Jetson Xavier. The paper reports cross-domain
 * acceleration at ~40% of Titan Xp runtime but 7.2x its perf-per-watt,
 * and 1.2x runtime / 1.7x perf-per-watt over Jetson.
 */
#include <cstdio>
#include <vector>

#include "report/report.h"
#include "soc/soc.h"
#include "targets/gpu/gpu_model.h"
#include "workloads/suite.h"

using namespace polymath;

int
main()
{
    const auto registry = target::standardRegistry();
    const auto titan = target::GpuModel::titanXp();
    const auto jetson = target::GpuModel::jetson();
    soc::SocRuntime runtime;

    report::Table table({"Benchmark", "RT(Titan)", "PPW(Titan)",
                         "RT(Jetson)", "PPW(Jetson)"});
    std::vector<double> rt_t, ppw_t, rt_j, ppw_j;

    for (const auto &bench : wl::tableIII()) {
        const auto compiled = wl::compileBenchmark(
            bench.source, bench.buildOpts, registry, bench.domain);
        const auto accel = runtime.execute(compiled, bench.profile);
        const auto on_titan = titan.simulate(bench.cpuCost());
        const auto on_jetson = jetson.simulate(bench.cpuCost());

        rt_t.push_back(target::speedup(on_titan, accel.total));
        ppw_t.push_back(target::ppwImprovement(on_titan, accel.total));
        rt_j.push_back(target::speedup(on_jetson, accel.total));
        ppw_j.push_back(target::ppwImprovement(on_jetson, accel.total));
        table.addRow({bench.id, report::times(rt_t.back()),
                      report::times(ppw_t.back()),
                      report::times(rt_j.back()),
                      report::times(ppw_j.back())});
    }
    table.addRow({"Geomean", report::times(report::geomean(rt_t)),
                  report::times(report::geomean(ppw_t)),
                  report::times(report::geomean(rt_j)),
                  report::times(report::geomean(ppw_j))});

    std::printf("Figure 8: PolyMath cross-domain acceleration vs. GPUs\n"
                "(paper geomeans: ~0.4x runtime / 7.2x PPW vs Titan Xp, "
                "1.2x / 1.7x vs Jetson)\n\n%s\n",
                table.str().c_str());
    return 0;
}
