/**
 * @file
 * Figure 8: runtime and performance-per-watt of PolyMath-compiled programs
 * vs. Titan Xp and Jetson Xavier. The paper reports cross-domain
 * acceleration at ~40% of Titan Xp runtime but 7.2x its perf-per-watt,
 * and 1.2x runtime / 1.7x perf-per-watt over Jetson.
 *
 * Routed through the suite driver (-jN) with serial aggregation, so the
 * report is identical at every jobs count.
 */
#include <cstdio>
#include <vector>

#include "driver.h"
#include "report/report.h"
#include "soc/soc.h"
#include "targets/gpu/gpu_model.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto titan = target::GpuModel::titanXp();
    const auto jetson = target::GpuModel::jetson();
    const soc::SocRuntime runtime;

    struct Row
    {
        std::string id;
        double rt_titan, ppw_titan, rt_jetson, ppw_jetson;
    };
    const auto rows = driver.mapTableIII(
        registry,
        [&](const wl::Benchmark &bench,
            const lower::CompiledProgram &compiled) {
            const auto accel = runtime.execute(compiled, bench.profile);
            const auto on_titan = titan.simulate(bench.cpuCost());
            const auto on_jetson = jetson.simulate(bench.cpuCost());
            return Row{bench.id,
                       target::speedup(on_titan, accel.total),
                       target::ppwImprovement(on_titan, accel.total),
                       target::speedup(on_jetson, accel.total),
                       target::ppwImprovement(on_jetson, accel.total)};
        });

    report::Table table({"Benchmark", "RT(Titan)", "PPW(Titan)",
                         "RT(Jetson)", "PPW(Jetson)"});
    std::vector<double> rt_t, ppw_t, rt_j, ppw_j;
    for (const auto &row : rows) {
        rt_t.push_back(row.rt_titan);
        ppw_t.push_back(row.ppw_titan);
        rt_j.push_back(row.rt_jetson);
        ppw_j.push_back(row.ppw_jetson);
        table.addRow({row.id, report::times(row.rt_titan),
                      report::times(row.ppw_titan),
                      report::times(row.rt_jetson),
                      report::times(row.ppw_jetson)});
    }
    table.addRow({"Geomean", report::times(report::geomean(rt_t)),
                  report::times(report::geomean(ppw_t)),
                  report::times(report::geomean(rt_j)),
                  report::times(report::geomean(ppw_j))});

    std::printf("Figure 8: PolyMath cross-domain acceleration vs. GPUs\n"
                "(paper geomeans: ~0.4x runtime / 7.2x PPW vs Titan Xp, "
                "1.2x / 1.7x vs Jetson)\n\n%s\n",
                table.str().c_str());
    return 0;
}
