/**
 * @file
 * Load generator for the pmcd compile service (docs/SERVICE.md).
 *
 * Spins up an in-process service::Server on a private Unix socket and
 * drives it through the real wire protocol in two phases:
 *
 *   - "sustained": 16 client connections pipeline 1600 compile requests
 *     (every request outstanding at once) drawn from 8 distinct Table
 *     III sources, against an unbounded admission queue. Reports p50/p99
 *     request latency, throughput, the exact cache hit rate (1592/1600:
 *     one miss per distinct source, coalesced compiles count as hits),
 *     and the conservation check completed + rejected == offered.
 *
 *   - "overload": a deliberately starved server (1 worker, admission
 *     bound 4, cold cache) under a 320-request flood. Rejections are
 *     expected; the gate checks that rejection is *accounted* (the
 *     conservation law still holds exactly and every request gets a
 *     response) rather than the timing-dependent rejection count.
 *
 * `--json` writes the numbers as a polymath-bench/1 artifact for the
 * tools/check.sh perf-regression gate (bench/baselines/service.json);
 * counts and rates are exact, latency/throughput rows gate with a loose
 * tolerance.
 */
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/strings.h"
#include "driver.h"
#include "lower/compile_cache.h"
#include "obs/metrics.h"
#include "report/report.h"
#include "service/client.h"
#include "service/server.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

constexpr int kClients = 16;
constexpr int kPerClientSustained = 100; // 1600 requests in flight
constexpr int kDistinctSources = 8;
constexpr int kPerClientOverload = 20; // 320-request flood

/** What one client connection observed. */
struct Tally
{
    std::vector<double> latencyMs; ///< completed requests only
    int64_t hits = 0;
    int64_t rejected = 0;
    int64_t errors = 0; ///< non-ok, non-rejected responses
};

/** The request templates: one compile request per distinct source. */
std::vector<service::Request>
requestTemplates()
{
    std::vector<service::Request> templates;
    const auto &suite = wl::tableIII();
    const size_t n =
        std::min<size_t>(kDistinctSources, suite.size());
    for (size_t i = 0; i < n; ++i) {
        const auto &bench = suite[i];
        service::Request req;
        req.verb = service::Verb::Compile;
        req.file = bench.id;
        req.source = bench.source;
        req.entry = bench.buildOpts.entry;
        req.params = bench.buildOpts.paramConsts;
        req.optimize = true;
        req.target = lang::toString(bench.domain);
        templates.push_back(std::move(req));
    }
    return templates;
}

/**
 * One client: pipeline @p perClient requests (all outstanding at once),
 * then collect every response, timing each request send-to-response.
 */
Tally
driveClient(const std::string &socket,
            const std::vector<service::Request> &templates, int perClient,
            int clientIndex)
{
    using Clock = std::chrono::steady_clock;
    service::Client client(socket);
    std::vector<Clock::time_point> sent(
        static_cast<size_t>(perClient));
    for (int i = 0; i < perClient; ++i) {
        auto req = templates[static_cast<size_t>(clientIndex + i) %
                             templates.size()];
        req.id = i;
        sent[static_cast<size_t>(i)] = Clock::now();
        client.send(req);
    }
    Tally tally;
    for (int i = 0; i < perClient; ++i) {
        service::Response resp;
        if (!client.recv(resp))
            fatal("bench_service: connection closed with responses "
                  "outstanding");
        if (resp.id < 0 || resp.id >= perClient)
            fatal("bench_service: unexpected response id " +
                  std::to_string(resp.id));
        if (resp.rejected) {
            ++tally.rejected;
            continue;
        }
        if (!resp.ok) {
            ++tally.errors;
            continue;
        }
        tally.hits += resp.cacheHit ? 1 : 0;
        const double ms =
            std::chrono::duration<double, std::milli>(
                Clock::now() - sent[static_cast<size_t>(resp.id)])
                .count();
        tally.latencyMs.push_back(ms);
    }
    return tally;
}

/** Bounded-error percentile over whole-microsecond latencies: the
 *  obs::LatencyHistogram gives p50/p99 without gathering + sorting
 *  every sample (same instrument the stream scheduler reports with). */
double
percentileMs(const obs::LatencyHistogram &hist, double p)
{
    return hist.quantile(p) / 1e3;
}

struct PhaseResult
{
    int64_t requests = 0;
    int64_t completed = 0;
    int64_t rejected = 0;
    int64_t errors = 0;
    double hitRate = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double requestsPerSec = 0.0;
    double conservationViolations = 0.0;
    std::map<std::string, double> serverStats;
};

PhaseResult
runPhase(const std::string &socket, service::ServerConfig config,
         int perClient)
{
    using Clock = std::chrono::steady_clock;
    config.socketPath = socket;
    service::Server server(config);
    server.start();

    const auto templates = requestTemplates();
    std::vector<Tally> tallies(kClients);
    const auto t0 = Clock::now();
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                tallies[static_cast<size_t>(c)] =
                    driveClient(socket, templates, perClient, c);
            });
        }
        for (auto &t : clients)
            t.join();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();

    PhaseResult result;
    result.requests = static_cast<int64_t>(kClients) * perClient;
    obs::LatencyHistogram latency_hist;
    for (auto &tally : tallies) {
        result.completed +=
            static_cast<int64_t>(tally.latencyMs.size()) + tally.errors;
        result.rejected += tally.rejected;
        result.errors += tally.errors;
        result.hitRate += static_cast<double>(tally.hits);
        for (const double ms : tally.latencyMs)
            latency_hist.observe(
                static_cast<int64_t>(std::llround(ms * 1e3)));
    }
    result.hitRate /= static_cast<double>(result.requests);
    result.p50Ms = percentileMs(latency_hist, 0.50);
    result.p99Ms = percentileMs(latency_hist, 0.99);
    result.requestsPerSec =
        elapsed > 0 ? static_cast<double>(result.requests) / elapsed : 0;

    // Exercise the inline stats verb (a live snapshot), then shut down.
    // Conservation is checked on the *shutdown* response: its stats are
    // taken after the drain barrier, when every admitted request has
    // been executed, written, and accounted, so completed + rejected ==
    // offered must hold exactly.
    service::Client control(socket);
    service::Request stats_req;
    stats_req.verb = service::Verb::Stats;
    result.serverStats = control.call(stats_req).stats;

    service::Request shutdown_req;
    shutdown_req.verb = service::Verb::Shutdown;
    const auto bye = control.call(shutdown_req);
    if (!bye.ok)
        fatal("bench_service: shutdown request failed");
    const double offered = bye.stats.at("offered");
    const double completed = bye.stats.at("completed");
    const double rejected = bye.stats.at("rejected");
    result.conservationViolations = offered - completed - rejected;
    server.wait();
    return result;
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const std::string base =
        "/tmp/pm_bench_service_" + std::to_string(::getpid());

    // Phase 1: unbounded admission, shared warm cache, full pipeline
    // depth — every one of the 1600 requests is outstanding at once.
    lower::CompileCache sustained_cache;
    service::ServerConfig sustained;
    sustained.jobs = std::max(driver.jobs(), 2);
    sustained.maxPending = 0; // unbounded: zero rejects, by design
    sustained.cache = &sustained_cache;
    const auto warm =
        runPhase(base + "_sustained.sock", sustained,
                 kPerClientSustained);

    // Phase 2: starved server (1 worker, admission bound 4, cold
    // cache) under a flood; rejections are expected and accounted.
    lower::CompileCache overload_cache;
    service::ServerConfig overload;
    overload.jobs = 1;
    overload.maxPending = 4;
    overload.cache = &overload_cache;
    const auto flood =
        runPhase(base + "_overload.sock", overload, kPerClientOverload);

    report::Table table({"Phase", "Requests", "Completed", "Rejected",
                         "Hit rate", "p50 ms", "p99 ms", "Req/s",
                         "Conservation"});
    const auto add_row = [&](const char *name, const PhaseResult &r) {
        table.addRow({name, std::to_string(r.requests),
                      std::to_string(r.completed),
                      std::to_string(r.rejected), formatF(r.hitRate, 3),
                      formatF(r.p50Ms, 3), formatF(r.p99Ms, 3),
                      formatF(r.requestsPerSec, 1),
                      formatF(r.conservationViolations, 0)});
    };
    add_row("sustained", warm);
    add_row("overload", flood);
    std::printf("Compile service under load: %d clients, pipelined "
                "requests over %d distinct Table III sources\n%s\n",
                kClients, kDistinctSources, table.str().c_str());
    std::printf("Conservation is offered - completed - rejected as "
                "accounted by the server (must be 0).\n");

    // Artifact rows. Counts and rates are exact by construction (see
    // the file comment); latency/throughput rows gate loosely.
    driver.record("sustained", "requests",
                  static_cast<double>(warm.requests));
    driver.record("sustained", "clients", kClients);
    driver.record("sustained", "hit_rate", warm.hitRate);
    driver.record("sustained", "rejected",
                  static_cast<double>(warm.rejected));
    driver.record("sustained", "errors",
                  static_cast<double>(warm.errors));
    driver.record("sustained", "conservation_violations",
                  warm.conservationViolations);
    driver.record("sustained", "p50_ms", warm.p50Ms);
    driver.record("sustained", "p99_ms", warm.p99Ms);
    driver.record("sustained", "requests_per_sec", warm.requestsPerSec);
    driver.record("overload", "offered",
                  static_cast<double>(flood.requests));
    driver.record("overload", "saw_rejects",
                  flood.rejected > 0 ? 1.0 : 0.0);
    driver.record("overload", "errors",
                  static_cast<double>(flood.errors));
    driver.record("overload", "conservation_violations",
                  flood.conservationViolations);
    driver.reportStats();

    // Hard self-checks, so the bench fails loudly even without the
    // artifact gate.
    if (warm.rejected != 0)
        fatal("bench_service: sustained phase saw rejects with an "
              "unbounded admission queue");
    if (warm.errors != 0 || flood.errors != 0)
        fatal("bench_service: requests failed");
    if (warm.conservationViolations != 0 ||
        flood.conservationViolations != 0)
        fatal("bench_service: conservation violation (completed + "
              "rejected != offered)");
    if (warm.hitRate < 0.5)
        fatal("bench_service: cache hit rate below 50% on repeated "
              "sources");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_service: %s\n", e.what());
        return 1;
    }
}
