/**
 * @file
 * Tables V and VI: domains, accelerators, baseline frameworks, and the
 * machine configurations the cost models run with (the calibration
 * surface of this reproduction).
 */
#include <cstdio>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "targets/cpu/cpu_model.h"
#include "targets/gpu/gpu_model.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    report::Table t5({"Domain", "PolyMath Accelerator",
                      "Baseline Framework (modeled)"});
    t5.addRow({"Robotics", "RoboX (ASIC)", "ACADO / cuBLAS"});
    t5.addRow({"Graph Analytics", "Graphicionado (ASIC)",
               "Intel GraphMat / Enterprise"});
    t5.addRow({"Data Analytics", "TABLA (FPGA) + HyperStreams (FPGA)",
               "mlpack / OpenBLAS / CUDA"});
    t5.addRow({"DSP", "DECO (FPGA)", "FFTW3 / cuFFT / NVIDIA-DCT"});
    t5.addRow({"Deep Learning", "TVM-VTA (FPGA)", "TensorFlow / cuDNN"});
    std::printf("Table V: domains and accelerators\n%s\n", t5.str().c_str());

    report::Table t6({"Machine", "Freq (GHz)", "Units", "Peak (Gop/s)",
                      "DRAM (GB/s)", "On-chip", "Power (W)"});
    auto add = [&](const target::MachineConfig &m) {
        driver.record(m.name, "freq_ghz", m.freqGhz);
        driver.record(m.name, "peak_gops", m.peakFlops() / 1e9);
        driver.record(m.name, "dram_gbs", m.dramGBs);
        driver.record(m.name, "watts", m.watts);
        t6.addRow({m.name, formatF(m.freqGhz, 2),
                   std::to_string(m.computeUnits),
                   formatF(m.peakFlops() / 1e9, 1),
                   formatF(m.dramGBs, 1),
                   m.onChipBytes ? format("%lld KB",
                                          static_cast<long long>(
                                              m.onChipBytes / 1024))
                                 : std::string("-"),
                   formatF(m.watts, 1)});
    };
    add(target::xeonConfig());
    add(target::titanXpConfig());
    add(target::jetsonConfig());
    for (const auto &backend : target::standardBackends())
        add(backend->machine());
    std::printf("Table VI: platform configurations (cost-model "
                "parameters)\n%s\n",
                t6.str().c_str());
    return 0;
}
