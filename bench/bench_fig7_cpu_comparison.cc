/**
 * @file
 * Figure 7: runtime and energy improvement of PolyMath-compiled programs
 * on their domain accelerators over the Xeon CPU baseline, for the fifteen
 * Table III workloads. The paper reports geomeans of ~3.3x runtime and
 * ~18.1x energy.
 *
 * Per-workload compile + simulation runs through the suite driver (-jN);
 * geomeans and the table are aggregated serially from the ordered results
 * so the report is identical at every jobs count.
 */
#include <cstdio>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "soc/soc.h"
#include "targets/cpu/cpu_model.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const target::CpuModel cpu;
    const soc::SocRuntime runtime;

    struct Row
    {
        std::vector<std::string> cells;
        double speedup;
        double energy;
    };
    const auto rows = driver.mapTableIII(
        registry,
        [&](const wl::Benchmark &bench,
            const lower::CompiledProgram &compiled) {
            const auto accel = runtime.execute(compiled, bench.profile);
            const auto host = cpu.simulate(bench.cpuCost());

            const double sp = target::speedup(host, accel.total);
            const double en = target::energyReduction(host, accel.total);
            driver.record(bench.id, "cpu_seconds", host.seconds);
            driver.record(bench.id, "accel_seconds", accel.total.seconds);
            driver.record(bench.id, "speedup", sp);
            driver.record(bench.id, "energy_reduction", en);
            return Row{{bench.id, lang::toString(bench.domain), bench.accel,
                        formatG(host.seconds * 1e3, 4),
                        formatG(accel.total.seconds * 1e3, 4),
                        report::times(sp), report::times(en)},
                       sp, en};
        });

    report::Table table({"Benchmark", "Domain", "Accelerator",
                         "CPU (ms)", "Accel (ms)", "Runtime", "Energy"});
    std::vector<double> speedups;
    std::vector<double> energies;
    for (const auto &row : rows) {
        speedups.push_back(row.speedup);
        energies.push_back(row.energy);
        table.addRow(row.cells);
    }
    driver.record("geomean", "speedup", report::geomean(speedups));
    driver.record("geomean", "energy_reduction",
                  report::geomean(energies));
    table.addRow({"Geomean", "", "", "", "",
                  report::times(report::geomean(speedups)),
                  report::times(report::geomean(energies))});

    std::printf("Figure 7: PolyMath cross-domain acceleration vs. Xeon "
                "E-2176G\n(paper: geomean 3.3x runtime, 18.1x energy)\n\n");
    std::printf("%s\n", table.str().c_str());
    return 0;
}
