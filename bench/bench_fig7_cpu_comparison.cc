/**
 * @file
 * Figure 7: runtime and energy improvement of PolyMath-compiled programs
 * on their domain accelerators over the Xeon CPU baseline, for the fifteen
 * Table III workloads. The paper reports geomeans of ~3.3x runtime and
 * ~18.1x energy.
 */
#include <cstdio>
#include <vector>

#include "core/strings.h"
#include "report/report.h"
#include "soc/soc.h"
#include "targets/cpu/cpu_model.h"
#include "workloads/suite.h"

using namespace polymath;

int
main()
{
    const auto registry = target::standardRegistry();
    const target::CpuModel cpu;
    soc::SocRuntime runtime;

    report::Table table({"Benchmark", "Domain", "Accelerator",
                         "CPU (ms)", "Accel (ms)", "Runtime", "Energy"});
    std::vector<double> speedups;
    std::vector<double> energies;

    for (const auto &bench : wl::tableIII()) {
        const auto compiled = wl::compileBenchmark(
            bench.source, bench.buildOpts, registry, bench.domain);
        const auto accel = runtime.execute(compiled, bench.profile);
        const auto host = cpu.simulate(bench.cpuCost());

        const double sp = target::speedup(host, accel.total);
        const double en = target::energyReduction(host, accel.total);
        speedups.push_back(sp);
        energies.push_back(en);
        table.addRow({bench.id, lang::toString(bench.domain), bench.accel,
                      format("%.4g", host.seconds * 1e3),
                      format("%.4g", accel.total.seconds * 1e3),
                      report::times(sp), report::times(en)});
    }
    table.addRow({"Geomean", "", "", "", "",
                  report::times(report::geomean(speedups)),
                  report::times(report::geomean(energies))});

    std::printf("Figure 7: PolyMath cross-domain acceleration vs. Xeon "
                "E-2176G\n(paper: geomean 3.3x runtime, 18.1x energy)\n\n");
    std::printf("%s\n", table.str().c_str());
    return 0;
}
