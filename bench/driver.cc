#include "driver.h"

#include <charconv>
#include <cstring>
#include <exception>

#include "core/error.h"
#include "core/logging.h"
#include "core/strings.h"
#include "obs/export.h"
#include "report/artifact.h"

namespace polymath::bench {

namespace {

int
parseJobsValue(const char *text)
{
    int value = 0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec != std::errc{} || ptr != end || value < 0)
        fatal(std::string("-j/--jobs expects a non-negative integer "
                          "(got '") +
              text + "')");
    return value;
}

} // namespace

DriverOptions
parseDriverArgs(int argc, char **argv)
{
    DriverOptions opts;
    opts.jobs = core::defaultJobs();
    if (argc > 0 && argv[0] != nullptr) {
        std::string name = argv[0];
        const size_t slash = name.find_last_of('/');
        if (slash != std::string::npos)
            name.erase(0, slash + 1);
        if (name.rfind("bench_", 0) == 0)
            name.erase(0, 6);
        opts.benchName = name;
    }
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "-j") == 0 ||
            std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal(std::string("missing value after ") + arg);
            opts.jobs = parseJobsValue(argv[++i]);
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            opts.jobs = parseJobsValue(arg + 2); // -jN combined form
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            opts.jobs = parseJobsValue(arg + 7);
        } else if (std::strcmp(arg, "--driver-stats") == 0) {
            opts.stats = true;
        } else if (std::strcmp(arg, "--trace") == 0) {
            if (i + 1 >= argc)
                fatal("missing value after --trace");
            opts.tracePath = argv[++i];
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            opts.tracePath = arg + 8;
        } else if (std::strcmp(arg, "--json") == 0) {
            if (i + 1 >= argc)
                fatal("missing value after --json");
            opts.jsonPath = argv[++i];
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            opts.jsonPath = arg + 7;
        }
    }
    opts.jobs = core::resolveJobs(opts.jobs);
    return opts;
}

Driver::Driver(DriverOptions options)
    : options_(std::move(options)), cache_(lower::CompileCache::global())
{
    options_.jobs = core::resolveJobs(options_.jobs);
    if (!options_.tracePath.empty())
        obs::TraceRecorder::global().setEnabled(true);
}

Driver::Driver(int argc, char **argv)
    : Driver(parseDriverArgs(argc, argv))
{
}

Driver::~Driver()
{
    reportStats();
    // Destructors must not throw; a failed trace/artifact write is a
    // warning, not a bench failure (the report already went to stdout).
    if (!options_.jsonPath.empty()) {
        try {
            report::BenchArtifact artifact;
            artifact.name = options_.benchName;
            artifact.git = report::buildGitDescribe();
            artifact.config = report::buildConfig();
            artifact.jobs = options_.jobs;
            {
                std::lock_guard<std::mutex> lock(artifactMutex_);
                for (const auto &[bench, metric, value] : artifactRows_)
                    artifact.add(bench, metric, value);
            }
            artifact.write(options_.jsonPath);
        } catch (const std::exception &e) {
            warn(std::string("driver: cannot write artifact: ") + e.what());
        }
    }
    if (options_.tracePath.empty())
        return;
    try {
        obs::writeChromeTrace(obs::TraceRecorder::global(),
                              options_.tracePath);
    } catch (const std::exception &e) {
        warn(std::string("driver: cannot write trace: ") + e.what());
    }
}

void
Driver::record(const std::string &benchmark, const std::string &metric,
               double value) const
{
    if (options_.jsonPath.empty())
        return;
    std::lock_guard<std::mutex> lock(artifactMutex_);
    artifactRows_.emplace_back(benchmark, metric, value);
}

std::vector<CompiledBenchmark>
Driver::compileTableIII(const lower::AcceleratorRegistry &registry) const
{
    const auto &table = wl::tableIII();
    auto programs = map(
        static_cast<int64_t>(table.size()), [&](int64_t i) {
            const auto &b = table[static_cast<size_t>(i)];
            return wl::compileBenchmarkCached(b.source, b.buildOpts,
                                              registry, b.domain, cache_);
        });
    std::vector<CompiledBenchmark> out;
    out.reserve(table.size());
    for (size_t i = 0; i < table.size(); ++i)
        out.push_back(CompiledBenchmark{&table[i], std::move(programs[i])});
    return out;
}

std::vector<CompiledApp>
Driver::compileTableIV(const lower::AcceleratorRegistry &registry) const
{
    const auto &table = wl::tableIV();
    auto programs = map(
        static_cast<int64_t>(table.size()), [&](int64_t i) {
            const auto &a = table[static_cast<size_t>(i)];
            return wl::compileBenchmarkCached(a.source, a.buildOpts,
                                              registry, lang::Domain::None,
                                              cache_);
        });
    std::vector<CompiledApp> out;
    out.reserve(table.size());
    for (size_t i = 0; i < table.size(); ++i)
        out.push_back(CompiledApp{&table[i], std::move(programs[i])});
    return out;
}

std::string
Driver::statsLine() const
{
    return format("driver: jobs=%d cache: %lld hits (%lld coalesced), "
                  "%lld misses (",
                  options_.jobs, static_cast<long long>(cache_.hits()),
                  static_cast<long long>(cache_.coalesced()),
                  static_cast<long long>(cache_.misses())) +
           formatF(cache_.hitRate() * 100.0, 0) +
           format("%% hit rate, %zu programs)", cache_.size());
}

void
Driver::reportStats(std::FILE *out) const
{
    if (options_.stats)
        std::fprintf(out, "%s\n", statsLine().c_str());
}

} // namespace polymath::bench
