/**
 * @file
 * Figure 12: percent of hand-tuned optimal performance for the end-to-end
 * applications, per kernel and per combination. The paper reports 76.7%
 * for BrainStimul, 76.9% for OptionPricing (76.8% average) — the
 * "automation overhead" of expressing the whole application in PMLang
 * instead of manually stitching native stacks.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/strings.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** Hand-tuned view of one partition: no identity moves, fused kernels,
 *  no cross-stack glue (an expert stitches the native stacks directly). */
lower::Partition
expertPartition(const lower::Partition &compiled)
{
    lower::Partition out;
    out.domain = compiled.domain;
    out.accel = compiled.accel;
    out.loads = compiled.loads;
    out.stores = compiled.stores;
    int fused = 0;
    lower::IrFragment pending;
    for (const auto &frag : compiled.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        if (frag.attrs.count("move_elems"))
            continue; // experts do not materialize copies
        if (pending.opcode.empty()) {
            pending = frag;
            continue;
        }
        // Fuse pairs of adjacent kernels (native stacks fuse aggressively).
        pending.flops += frag.flops;
        for (const auto &in : frag.inputs)
            pending.inputs.push_back(in);
        pending.outputs = frag.outputs;
        out.fragments.push_back(pending);
        pending = lower::IrFragment{};
        ++fused;
    }
    if (!pending.opcode.empty())
        out.fragments.push_back(pending);
    return out;
}

} // namespace

int
main()
{
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();

    std::vector<double> all_pcts;
    for (const auto &app : wl::tableIV()) {
        const auto compiled = wl::compileBenchmark(
            app.source, app.buildOpts, registry, lang::Domain::None);

        report::Table table({"Kernel (partition)", "PolyMath compute (us)",
                             "Hand-tuned compute (us)", "% of optimal"});
        std::vector<double> pcts;
        for (const auto &partition : compiled.partitions) {
            const auto *backend =
                target::findBackend(backends, partition.accel);
            if (!backend)
                continue;
            const auto poly = backend->simulate(partition, app.profile);
            const auto expert =
                backend->simulate(expertPartition(partition), app.profile);
            // As in Fig. 9: both move the same data, so the expert edge
            // is in compute/scheduling structure plus per-kernel launch.
            const double poly_t =
                poly.computeSeconds + poly.overheadSeconds;
            const double expert_t =
                expert.computeSeconds + expert.overheadSeconds;
            if (poly_t <= 0)
                continue;
            const double pct = std::min(1.0, expert_t / poly_t);
            pcts.push_back(pct);
            all_pcts.push_back(pct);
            table.addRow({partition.accel,
                          format("%.4g", poly_t * 1e6),
                          format("%.4g", expert_t * 1e6),
                          report::percent(pct)});
        }
        table.addRow({"Average (" + app.id + ")", "", "",
                      report::percent(report::mean(pcts))});
        std::printf("Figure 12 (%s)\n%s\n", app.id.c_str(),
                    table.str().c_str());
    }
    std::printf("Overall average: %s (paper: 76.8%%)\n",
                report::percent(report::mean(all_pcts)).c_str());
    return 0;
}
