/**
 * @file
 * Figure 12: percent of hand-tuned optimal performance for the end-to-end
 * applications, per kernel and per combination. The paper reports 76.7%
 * for BrainStimul, 76.9% for OptionPricing (76.8% average) — the
 * "automation overhead" of expressing the whole application in PMLang
 * instead of manually stitching native stacks.
 *
 * Apps compile through the suite driver's cache, and the per-partition
 * simulations fan out across the pool (-jN) with serial aggregation, so
 * the report is identical at every jobs count.
 */
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** Hand-tuned view of one partition: no identity moves, fused kernels,
 *  no cross-stack glue (an expert stitches the native stacks directly). */
lower::Partition
expertPartition(const lower::Partition &compiled)
{
    lower::Partition out;
    out.domain = compiled.domain;
    out.accel = compiled.accel;
    out.loads = compiled.loads;
    out.stores = compiled.stores;
    int fused = 0;
    lower::IrFragment pending;
    for (const auto &frag : compiled.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        if (frag.attrs.count("move_elems"))
            continue; // experts do not materialize copies
        if (pending.opcode.empty()) {
            pending = frag;
            continue;
        }
        // Fuse pairs of adjacent kernels (native stacks fuse aggressively).
        pending.flops += frag.flops;
        for (const auto &in : frag.inputs)
            pending.inputs.push_back(in);
        pending.outputs = frag.outputs;
        out.fragments.push_back(pending);
        pending = lower::IrFragment{};
        ++fused;
    }
    if (!pending.opcode.empty())
        out.fragments.push_back(pending);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();

    struct Row
    {
        std::vector<std::string> cells;
        double pct;
    };
    std::vector<double> all_pcts;
    for (const auto &entry : driver.compileTableIV(registry)) {
        const auto &app = *entry.app;
        const auto &compiled = *entry.program;

        const auto rows = driver.map(
            static_cast<int64_t>(compiled.partitions.size()),
            [&](int64_t i) -> std::optional<Row> {
                const auto &partition =
                    compiled.partitions[static_cast<size_t>(i)];
                const auto *backend =
                    target::findBackend(backends, partition.accel);
                if (!backend)
                    return std::nullopt;
                const auto poly = backend->simulate(partition, app.profile);
                const auto expert = backend->simulate(
                    expertPartition(partition), app.profile);
                // As in Fig. 9: both move the same data, so the expert edge
                // is in compute/scheduling structure plus per-kernel launch.
                const double poly_t =
                    poly.computeSeconds + poly.overheadSeconds;
                const double expert_t =
                    expert.computeSeconds + expert.overheadSeconds;
                if (poly_t <= 0)
                    return std::nullopt;
                const double pct = std::min(1.0, expert_t / poly_t);
                driver.record(app.id + "/" + partition.accel,
                              "pct_of_optimal", pct);
                return Row{{partition.accel,
                            formatG(poly_t * 1e6, 4),
                            formatG(expert_t * 1e6, 4),
                            report::percent(pct)},
                           pct};
            });

        report::Table table({"Kernel (partition)", "PolyMath compute (us)",
                             "Hand-tuned compute (us)", "% of optimal"});
        std::vector<double> pcts;
        for (const auto &row : rows) {
            if (!row)
                continue;
            pcts.push_back(row->pct);
            all_pcts.push_back(row->pct);
            table.addRow(row->cells);
        }
        driver.record(app.id, "avg_pct_of_optimal", report::mean(pcts));
        table.addRow({"Average (" + app.id + ")", "", "",
                      report::percent(report::mean(pcts))});
        std::printf("Figure 12 (%s)\n%s\n", app.id.c_str(),
                    table.str().c_str());
    }
    std::printf("Overall average: %s (paper: 76.8%%)\n",
                report::percent(report::mean(all_pcts)).c_str());
    return 0;
}
