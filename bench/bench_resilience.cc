/**
 * @file
 * Resilience sweep: end-to-end slowdown vs. injected fault rate across the
 * Table III workloads on the SoC runtime (docs/RESILIENCE.md).
 *
 * For each fault rate r the model injects DMA failures at rate r,
 * watchdog timeouts at r/2, and permanent accelerator losses at r/5,
 * each workload drawing from its own seed-salted fault stream, so the
 * sweep is deterministic and fault sets are monotone in r (raising the
 * rate only adds faults). Reported per rate: geomean slowdown and
 * energy overhead vs. the fault-free run, aggregate availability, and
 * the retry/fallback tallies.
 *
 * Workloads compile through the suite driver's cache and the per-rate
 * sweeps fan out across the pool (-jN); each rate owns its SocRuntime and
 * the fault draws are seed-keyed, so the table is identical at every jobs
 * count.
 */
#include <cmath>
#include <cstdio>

#include "core/strings.h"
#include "driver.h"
#include "obs/metrics.h"
#include "report/report.h"
#include "soc/soc.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

soc::FaultConfig
configFor(double rate, uint64_t seed)
{
    soc::FaultConfig fc;
    fc.seed = seed;
    fc.dmaFailureRate = rate;
    fc.watchdogRate = rate / 2.0;
    fc.accelUnavailableRate = rate / 5.0;
    return fc;
}

/** Distinct deterministic fault stream per workload: the draws are keyed
 *  by (partition, class, attempt), so without a per-workload salt every
 *  single-partition Table III workload would fault in lockstep. */
uint64_t
workloadSeed(uint64_t seed, size_t workload)
{
    return seed ^ ((workload + 1) * 0x9e3779b97f4a7c15ull);
}

/** One sweep row: rendered cells plus the raw tallies they came from,
 *  kept so the totals can be cross-checked against the SoC runtime's
 *  MetricsRegistry counters after the sweep. */
struct SweepRow
{
    std::vector<std::string> cells;
    int64_t faults = 0;
    int64_t retries = 0;
    int64_t fallbacks = 0;
    int64_t attempts = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const uint64_t kSeed = 0x5eed;
    const double kRates[] = {0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 0.75, 1.0};
    const int64_t kNumRates =
        static_cast<int64_t>(sizeof(kRates) / sizeof(kRates[0]));

    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto workloads = driver.compileTableIII(registry);

    const auto rows = driver.map(kNumRates, [&](int64_t ri) {
        const double rate = kRates[ri];
        soc::SocRuntime runtime;
        double log_slowdown = 0.0;
        double log_energy = 0.0;
        SweepRow row;
        int64_t &faults = row.faults;
        int64_t &retries = row.retries;
        int64_t &fallbacks = row.fallbacks;
        int64_t &attempts = row.attempts;
        for (size_t i = 0; i < workloads.size(); ++i) {
            const auto &bench = *workloads[i].bench;
            // Calibrated host-library efficiency for fallback execution.
            const std::map<std::string, double> host_eff{
                {bench.accel, bench.cpuEff}};
            runtime.setFaultModel(soc::FaultModel(
                configFor(rate, workloadSeed(kSeed, i))));
            const auto r = runtime.execute(*workloads[i].program,
                                           bench.profile, {}, host_eff);
            log_slowdown += std::log(rate > 0 ? r.reliability.slowdown()
                                              : 1.0);
            log_energy += std::log(
                rate > 0 ? r.reliability.energyOverhead() : 1.0);
            faults += r.reliability.faultsInjected;
            retries += r.reliability.retriesSpent;
            fallbacks += r.reliability.hostFallbacks;
            attempts += r.reliability.offloadAttempts;
        }
        const double n = static_cast<double>(workloads.size());
        const double geomean = std::exp(log_slowdown / n);
        const double geomean_energy = std::exp(log_energy / n);
        const double availability =
            attempts > 0 ? 1.0 - static_cast<double>(fallbacks) /
                                     static_cast<double>(attempts)
                         : 1.0;
        const std::string rate_id = "rate=" + formatF(rate, 2);
        driver.record(rate_id, "geomean_slowdown", geomean);
        driver.record(rate_id, "geomean_energy", geomean_energy);
        driver.record(rate_id, "availability", availability);
        row.cells = {
            formatF(rate, 2), formatF(geomean, 4) + "x",
            formatF(geomean_energy, 4) + "x", formatF(availability, 3),
            std::to_string(faults), std::to_string(retries),
            std::to_string(fallbacks)};
        return row;
    });

    report::Table table({"Fault rate", "Geomean slowdown",
                         "Geomean energy", "Availability", "Faults",
                         "Retries", "Fallbacks"});
    for (const auto &row : rows)
        table.addRow(row.cells);
    std::printf("Resilience sweep: Table III workloads on the SoC, "
                "seed 0x%llx\n%s\n",
                static_cast<unsigned long long>(kSeed),
                table.str().c_str());
    std::printf("Policies: accel-unavailable => host fallback; DMA "
                "failure => retry w/ exponential backoff then host "
                "fallback; watchdog => re-execute then host fallback.\n");

    // Cross-check: the SoC runtime publishes its fault accounting through
    // the MetricsRegistry (soc.faults.*); the totals must agree with the
    // per-row ReliabilityReport tallies summed above. Any disagreement
    // means an instrumentation bug, so fail loudly — on stderr, keeping
    // stdout byte-identical to an unchecked run.
    SweepRow total;
    for (const auto &row : rows) {
        total.faults += row.faults;
        total.retries += row.retries;
        total.fallbacks += row.fallbacks;
        total.attempts += row.attempts;
    }
    const auto snap = obs::MetricsRegistry::global().snapshot();
    const auto check = [](const char *name, int64_t metric,
                          int64_t tallied) {
        if (metric == tallied)
            return true;
        std::fprintf(stderr,
                     "bench_resilience: metric %s = %lld disagrees with "
                     "summed ReliabilityReport tally %lld\n",
                     name, static_cast<long long>(metric),
                     static_cast<long long>(tallied));
        return false;
    };
    bool ok = true;
    ok &= check("soc.faults.injected",
                snap.counter("soc.faults.injected"), total.faults);
    ok &= check("soc.faults.retries", snap.counter("soc.faults.retries"),
                total.retries);
    ok &= check("soc.faults.host_fallbacks",
                snap.counter("soc.faults.host_fallbacks"),
                total.fallbacks);
    ok &= check("soc.faults.offload_attempts",
                snap.counter("soc.faults.offload_attempts"),
                total.attempts);
    return ok ? 0 : 1;
}
