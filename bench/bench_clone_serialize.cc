/**
 * @file
 * Graph clone/serialize microbenchmark over the Table III + Table IV
 * workloads: per-workload wall-clock cost of `ir::Graph::clone()` and
 * `ir::toJson()` on the *optimized* srDFG (the form the pmcd daemon
 * snapshots per request). This is the enabler metric for daemon-side
 * per-request graph snapshots: the flat arena-backed IR turns clone()
 * into a handful of pool copies, and this bench pins that it stays
 * that way.
 *
 * Each workload runs `--reps N` batches (default 5) of `--iters K`
 * clones/serializes (default 32) and reports the per-operation minimum:
 *   clone_micros      one Graph::clone() of the optimized graph
 *   serialize_micros  one ir::toJson() of the optimized graph
 * plus geomean rows. `--json` records a polymath-bench/1 artifact;
 * tools/bench_compare diffs it against
 * bench/baselines/clone_serialize.json in the check.sh perf gate
 * (loose relative tolerance — wall clock, not model output).
 */
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/strings.h"
#include "driver.h"
#include "passes/pass.h"
#include "report/report.h"
#include "srdfg/serialize.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

using Clock = std::chrono::steady_clock;

double
microsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
}

int64_t
intFlag(int argc, char **argv, const char *flag, int64_t fallback)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
            const char *text = argv[i + 1];
            const char *end = text + std::strlen(text);
            int64_t value = 0;
            const auto [ptr, ec] = std::from_chars(text, end, value);
            if (ec != std::errc{} || ptr != end || value < 1) {
                polymath::fatal(std::string(flag) +
                                " expects a positive integer (got '" +
                                text + "')");
            }
            return value;
        }
    }
    return fallback;
}

struct CloneTiming
{
    double clone = 0.0;     ///< per-clone microseconds
    double serialize = 0.0; ///< per-toJson microseconds
};

/** Times @p iters clones and serializations of the optimized graph. */
CloneTiming
timeWorkload(const ir::Graph &graph, int64_t iters)
{
    CloneTiming t;
    // Touch once outside the timed region so one-time lazy state (use
    // caches, interned tables) does not attribute to the first iteration.
    auto warm = graph.clone();
    std::string json = ir::toJson(*warm);

    auto start = Clock::now();
    for (int64_t i = 0; i < iters; ++i) {
        auto copy = graph.clone();
        // Keep the optimizer honest: consume one byte of the copy.
        if (copy->values.empty())
            polymath::fatal("clone produced an empty graph");
    }
    t.clone = microsSince(start) / static_cast<double>(iters);

    start = Clock::now();
    size_t bytes = 0;
    for (int64_t i = 0; i < iters; ++i)
        bytes += ir::toJson(graph).size();
    t.serialize = microsSince(start) / static_cast<double>(iters);
    if (bytes == 0)
        polymath::fatal("serialize produced no bytes");
    return t;
}

struct Workload
{
    std::string id;
    const std::string *source;
    const ir::BuildOptions *buildOpts;
};

} // namespace

int
main(int argc, char **argv)
{
    const int64_t reps = intFlag(argc, argv, "--reps", 5);
    const int64_t iters = intFlag(argc, argv, "--iters", 32);

    const bench::Driver driver(argc, argv);

    std::vector<Workload> workloads;
    for (const auto &bench : wl::tableIII())
        workloads.push_back({bench.id, &bench.source, &bench.buildOpts});
    for (const auto &app : wl::tableIV())
        workloads.push_back({app.id, &app.source, &app.buildOpts});

    struct Row
    {
        std::vector<std::string> cells;
        double cloneMicros;
        double serializeMicros;
    };
    const auto rows = driver.map(
        static_cast<int64_t>(workloads.size()), [&](int64_t i) {
            const auto &w = workloads[static_cast<size_t>(i)];
            auto graph = wl::buildGraph(*w.source, *w.buildOpts);
            auto pipeline = pass::standardPipeline();
            pipeline.runToFixpoint(*graph);
            CloneTiming best;
            for (int64_t rep = 0; rep < reps; ++rep) {
                const CloneTiming t = timeWorkload(*graph, iters);
                if (rep == 0 || t.clone < best.clone)
                    best.clone = t.clone;
                if (rep == 0 || t.serialize < best.serialize)
                    best.serialize = t.serialize;
            }
            driver.record(w.id, "clone_micros", best.clone);
            driver.record(w.id, "serialize_micros", best.serialize);
            return Row{{w.id, formatF(best.clone, 2),
                        formatF(best.serialize, 2)},
                       best.clone, best.serialize};
        });

    report::Table table({"Workload", "Clone (us)", "Serialize (us)"});
    std::vector<double> clones;
    std::vector<double> serializes;
    for (const auto &row : rows) {
        clones.push_back(row.cloneMicros);
        serializes.push_back(row.serializeMicros);
        table.addRow(row.cells);
    }
    const double geo_clone = report::geomean(clones);
    const double geo_ser = report::geomean(serializes);
    driver.record("geomean", "clone_micros", geo_clone);
    driver.record("geomean", "serialize_micros", geo_ser);
    table.addRow({"Geomean", formatF(geo_clone, 2), formatF(geo_ser, 2)});

    std::printf("Graph clone/serialize on optimized srDFGs, min over %lld "
                "reps of %lld iters\n\n",
                static_cast<long long>(reps),
                static_cast<long long>(iters));
    std::printf("%s\n", table.str().c_str());
    driver.reportStats();
    return 0;
}
