/**
 * @file
 * Figure 13: the user study's measurable artifacts, reproduced from the
 * bundled code corpus (DESIGN.md §1). LOC reduction is measured from real
 * program text (PMLang programs of record vs. idiomatic NumPy); coding
 * time uses the documented per-line model with one calibrated
 * unfamiliarity constant. The paper reports 3.3x/1.8x LOC reduction and
 * 2.6x/1.2x time reduction for K-means/DCT (averages 2.5x and 1.9x).
 */
#include <cstdio>
#include <vector>

#include "core/strings.h"
#include "report/report.h"
#include "workloads/python_corpus.h"

using namespace polymath;

int
main()
{
    report::Table table({"Algorithm", "Python LOC", "PMLang LOC",
                         "LOC reduction", "Time reduction (modeled)"});
    std::vector<double> loc_red, time_red;
    for (const auto &entry : wl::userStudyCorpus()) {
        const double lr = static_cast<double>(entry.pythonLoc()) /
                          static_cast<double>(entry.pmlangLoc());
        const double tr = entry.pythonMinutes() / entry.pmlangMinutes();
        loc_red.push_back(lr);
        time_red.push_back(tr);
        table.addRow({entry.algorithm, std::to_string(entry.pythonLoc()),
                      std::to_string(entry.pmlangLoc()), report::times(lr),
                      report::times(tr)});
    }
    table.addRow({"Average", "", "", report::times(report::mean(loc_red)),
                  report::times(report::mean(time_red))});

    std::printf("Figure 13: PMLang vs Python (user-study proxy; see "
                "DESIGN.md for the substitution)\n"
                "(paper: LOC reduction 3.3x/1.8x, avg 2.5x; time reduction "
                "2.6x/1.2x, avg 1.9x)\n\n%s\n"
                "Time model: minutes = LOC x rate; PMLang rate is %sx "
                "Python's (six-minute language intro).\n",
                table.str().c_str(),
                formatF(wl::kPmlangUnfamiliarity, 2).c_str());
    return 0;
}
