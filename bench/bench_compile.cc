/**
 * @file
 * Compile-path microbenchmark over the Table III suite: per-workload
 * wall-clock time for the full parse -> srDFG -> fixpoint pipeline ->
 * Algorithm-1/2 lowering path (no compile cache — every rep compiles
 * from scratch; the cache is exactly what this bench must not hide).
 *
 * Each workload runs `--reps N` times (default 3) and reports the
 * minimum, split into the three phases the stack exposes:
 *   frontend_micros  parse + sema + srDFG build
 *   passes_micros    standardPipeline().runToFixpoint
 *   lower_micros     lowerGraph + compileProgram
 *   compile_micros   sum of the above (the gated metric)
 * plus a geomean row. `--json` records the numbers as a polymath-bench/1
 * artifact; tools/bench_compare diffs it against
 * bench/baselines/compile_path.json in the check.sh perf gate (loose
 * relative tolerance — these are wall-clock timings, not model outputs).
 */
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/strings.h"
#include "driver.h"
#include "lower/lower.h"
#include "passes/pass.h"
#include "report/report.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

using Clock = std::chrono::steady_clock;

double
microsSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
}

struct CompileTiming
{
    double frontend = 0.0;
    double passes = 0.0;
    double lower = 0.0;

    double total() const { return frontend + passes + lower; }
};

/** One full uncached compile of @p bench, phase-timed. */
CompileTiming
timeCompile(const wl::Benchmark &bench,
            const lower::AcceleratorRegistry &registry)
{
    CompileTiming t;
    auto start = Clock::now();
    auto graph = wl::buildGraph(bench.source, bench.buildOpts);
    t.frontend = microsSince(start);

    start = Clock::now();
    auto pipeline = pass::standardPipeline();
    pipeline.runToFixpoint(*graph);
    t.passes = microsSince(start);

    start = Clock::now();
    lower::lowerGraph(*graph, registry.supportedOpsByDomain(),
                      bench.domain);
    auto compiled =
        lower::compileProgram(*graph, registry, bench.domain);
    t.lower = microsSince(start);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            const char *text = argv[i + 1];
            const char *end = text + std::strlen(text);
            const auto [ptr, ec] = std::from_chars(text, end, reps);
            if (ec != std::errc{} || ptr != end || reps < 1)
                polymath::fatal(std::string("--reps expects a positive "
                                            "integer (got '") +
                                text + "')");
        }
    }

    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto &suite = wl::tableIII();

    struct Row
    {
        std::vector<std::string> cells;
        double totalMicros;
    };
    const auto rows = driver.map(
        static_cast<int64_t>(suite.size()), [&](int64_t i) {
            const auto &bench = suite[static_cast<size_t>(i)];
            CompileTiming best;
            for (int rep = 0; rep < reps; ++rep) {
                const CompileTiming t = timeCompile(bench, registry);
                if (rep == 0 || t.total() < best.total())
                    best = t;
            }
            driver.record(bench.id, "frontend_micros", best.frontend);
            driver.record(bench.id, "passes_micros", best.passes);
            driver.record(bench.id, "lower_micros", best.lower);
            driver.record(bench.id, "compile_micros", best.total());
            return Row{{bench.id, lang::toString(bench.domain),
                        formatF(best.frontend, 1),
                        formatF(best.passes, 1),
                        formatF(best.lower, 1),
                        formatF(best.total(), 1)},
                       best.total()};
        });

    report::Table table({"Benchmark", "Domain", "Frontend (us)",
                         "Passes (us)", "Lower (us)", "Total (us)"});
    std::vector<double> totals;
    for (const auto &row : rows) {
        totals.push_back(row.totalMicros);
        table.addRow(row.cells);
    }
    const double geo = report::geomean(totals);
    driver.record("geomean", "compile_micros", geo);
    table.addRow({"Geomean", "", "", "", "", formatF(geo, 1)});

    std::printf("Compile path: parse -> srDFG -> fixpoint pipeline -> "
                "lower, min of %d reps\n\n", reps);
    std::printf("%s\n", table.str().c_str());
    driver.reportStats();
    return 0;
}
