/**
 * @file
 * Table II: computational-stack comparison. PolyMath's row is computed
 * live from the backend registry (which domains have a registered
 * accelerator and lower successfully); the literature rows restate the
 * paper's table for context.
 */
#include <cstdio>
#include <vector>

#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    using lang::Domain;
    const std::vector<std::pair<std::string, Domain>> domains = {
        {"Robotics", Domain::RBT},        {"Graph Analytics", Domain::GA},
        {"DSP", Domain::DSP},             {"Data Analytics", Domain::DA},
        {"Deep Learning", Domain::DL},
    };

    // Literature rows (paper Table II).
    struct Row
    {
        const char *stack;
        bool support[5];
        const char *extra;
    };
    const Row rows[] = {
        {"General-Purpose CPU", {true, true, true, true, true},
         "plus Genomics, SAT"},
        {"Graphicionado", {false, true, false, false, false}, ""},
        {"Darwin", {false, false, false, false, false}, "Genomics only"},
        {"DNNWeaver", {false, false, false, false, true}, ""},
        {"TVM", {false, false, false, true, true}, ""},
        {"TABLA", {false, false, false, true, false}, ""},
        {"RoboX", {true, false, false, false, false}, ""},
        {"DeCO", {false, false, true, false, false}, ""},
        {"BCP Acc", {false, false, false, false, false}, "SAT only"},
    };

    report::Table table({"Stack", "RBT", "GA", "DSP", "DA", "DL", "Notes"});
    auto mark = [](bool b) { return std::string(b ? "yes" : "-"); };
    for (const auto &row : rows) {
        table.addRow({row.stack, mark(row.support[0]), mark(row.support[1]),
                      mark(row.support[2]), mark(row.support[3]),
                      mark(row.support[4]), row.extra});
    }

    // PolyMath's row: verified live — a domain counts as supported when a
    // backend is registered AND a representative Table III workload of
    // that domain compiles through lowering + translation for it.
    const auto registry = target::standardRegistry();
    const auto marks = driver.map(
        static_cast<int64_t>(domains.size()), [&](int64_t i) {
            const auto dom = domains[static_cast<size_t>(i)].second;
            bool ok = registry.forDomain(dom) != nullptr;
            if (ok) {
                for (const auto &bench : wl::tableIII()) {
                    if (bench.domain != dom)
                        continue;
                    try {
                        wl::compileBenchmarkCached(
                            bench.source, bench.buildOpts, registry,
                            bench.domain, driver.cache());
                    } catch (const std::exception &) {
                        ok = false;
                    }
                    break;
                }
            }
            return ok;
        });
    std::vector<std::string> poly_row = {"PolyMath (this repo)"};
    for (const bool ok : marks)
        poly_row.push_back(ok ? "yes" : "-");
    poly_row.push_back("cross-domain multi-acceleration");
    table.addRow(std::move(poly_row));

    std::printf("Table II: comparison of computational stacks\n%s\n",
                table.str().c_str());
    return 0;
}
