/**
 * @file
 * Cross-check: DECO's analytic dependence-level model against the chain
 * mapper that actually groups the translated fragments into pipelined
 * DSP-block chains. Reports chain structure (count, average fused length,
 * waves) and the per-invocation cycle comparison for the DSP workloads.
 * Completes the per-backend fidelity ladder (see docs/MODELS.md).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "targets/deco/chain_mapper.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto *deco = target::findBackend(backends, "DECO");

    const std::vector<const char *> ids = {"FFT-8192", "FFT-16384",
                                           "DCT-1024", "DCT-2048"};
    const auto rows = driver.map(
        static_cast<int64_t>(ids.size()), [&](int64_t i) {
            const auto &bench =
                wl::benchmarkById(ids[static_cast<size_t>(i)]);
            const auto compiled = wl::compileBenchmarkCached(
                bench.source, bench.buildOpts, registry, bench.domain,
                driver.cache());
            const auto &partition = compiled->partitions.front();

            target::WorkloadProfile once = bench.profile;
            once.invocations = 1;
            const auto analytic = deco->simulate(partition, once);
            const double analytic_cycles =
                analytic.computeSeconds * deco->machine().freqGhz * 1e9;

            target::ChainConfig config;
            config.dspBlocks = deco->machine().computeUnits;
            const auto mapped = target::mapChains(partition, config);

            const double ratio =
                static_cast<double>(mapped.cycles) / analytic_cycles;
            driver.record(bench.id, "analytic_cycles", analytic_cycles);
            driver.record(bench.id, "mapped_cycles",
                          static_cast<double>(mapped.cycles));
            driver.record(bench.id, "map_ratio", ratio);
            driver.record(bench.id, "dsp_utilization",
                          mapped.dspUtilization);
            return std::vector<std::string>{
                bench.id, format("%zu", mapped.chains.size()),
                formatF(mapped.avgChainLength(), 1),
                format("%lld", static_cast<long long>(mapped.waves)),
                formatF(analytic_cycles, 0),
                format("%lld", static_cast<long long>(mapped.cycles)),
                formatF(ratio, 2) + "x",
                report::percent(mapped.dspUtilization)};
        });

    report::Table table({"Benchmark", "Chains", "Avg fused len", "Waves",
                         "Analytic (cyc)", "Mapped (cyc)", "Ratio",
                         "DSP util"});
    for (const auto &row : rows)
        table.addRow(row);
    std::printf("DECO chain mapper vs analytic level model\n"
                "(per-invocation steady-state cycles. Ratios below 1x are "
                "headroom: a hand-mapped chain design streams stages "
                "concurrently where the analytic model serializes levels "
                "— which is consistent with the paper's DECO results "
                "sitting above our conservative Fig. 7 FFT speedups, and "
                "with Fig. 9's <100%% for PolyMath-generated DFGs.)\n\n%s\n",
                table.str().c_str());
    return 0;
}
