/**
 * @file
 * Design-space sweep over the Table III suite (docs/DSE.md): every
 * workload's accelerator is autotuned over its *small* config space
 * (units x freq, exhaustive grid), and the per-workload baseline, best
 * point, and Pareto-front size are recorded. The grid driver plus the
 * analytical cost models make the sweep fully deterministic, so
 * check.sh gates the recorded artifact against bench/baselines/dse.json
 * at zero tolerance.
 *
 * Routed through the suite driver (-jN fans out across workloads; each
 * workload's space is evaluated serially) with serial aggregation, so
 * the report is identical at every jobs count.
 */
#include <cstdio>
#include <vector>

#include "driver.h"
#include "dse/dse.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();

    dse::SearchOptions opts;
    opts.space = dse::ConfigSpace::Kind::Small;
    opts.driver = dse::SearchOptions::Driver::Grid;
    opts.jobs = 1; // the driver already fans out across workloads

    auto studies = driver.mapTableIII(
        registry,
        [&](const wl::Benchmark &bench,
            const lower::CompiledProgram &compiled) {
            auto study = dse::explore(
                bench.id, bench.accel,
                dse::partitionsFor(compiled, bench.accel), bench.profile,
                opts);
            driver.record(bench.id, "front_size",
                          static_cast<double>(study.front.size()));
            driver.record(bench.id, "evaluated",
                          static_cast<double>(study.evaluated()));
            driver.record(bench.id, "baseline_seconds",
                          study.baseline().seconds);
            driver.record(bench.id, "best_seconds", study.best().seconds);
            driver.record(bench.id, "best_perf_per_watt",
                          study.best().perfPerWatt);
            driver.record(bench.id, "speedup", study.bestSpeedup());
            driver.record(bench.id, "ppw_gain", study.bestPpwGain());
            return study;
        });

    std::printf("Design-space sweep: small grid over the Table III "
                "accelerator configs\n\n%s",
                dse::bestTable(studies).c_str());
    return 0;
}
