/**
 * @file
 * Table I: PMLang's keyword subset, verified live — each construct is
 * exercised through the actual lexer/parser/sema before its row prints,
 * so the table cannot drift from the implementation.
 */
#include <cstdio>
#include <string>

#include "pmlang/parser.h"
#include "pmlang/sema.h"
#include "report/report.h"

using namespace polymath;

namespace {

/** Parses + analyzes a probe program; returns "yes" or throws. */
std::string
verify(const std::string &probe)
{
    lang::analyze(lang::parse(probe));
    return "yes";
}

} // namespace

int
main()
{
    report::Table table(
        {"Construct", "Keyword(s)", "Description", "Verified"});

    table.addRow({"Component", "<name>(...) { ... }",
                  "Takes input, produces output, reads/writes state",
                  verify("main(input float x[4], output float y[4]) {"
                         "  index i[0:3]; y[i] = x[i]; }")});
    table.addRow({"Domain", "RBT, GA, DSP, DA, DL",
                  "Specifies a component's target domain",
                  verify("f(input float x[2], output float y[2]) {"
                         "  index i[0:1]; y[i] = x[i]; }"
                         "main(input float x[2], output float y[2]) {"
                         "  DSP: f(x, y); }")});
    table.addRow({"Type modifiers", "input, output, state, param",
                  "Data-flow semantics of component arguments",
                  verify("main(input float a[2], state float s[2],"
                         "     param float p, output float o[2]) {"
                         "  index i[0:1]; s[i] = s[i] + a[i]*p;"
                         "  o[i] = s[i]; }")});
    table.addRow({"Index", "index",
                  "Specifies ranges of operations",
                  verify("main(input float x[8], output float y[4]) {"
                         "  index i[0:3]; y[i] = x[2*i]; }")});
    table.addRow({"Types", "bin, int, float, str, complex",
                  "Variable declaration types",
                  verify("main(input complex x[2], input int n[2],"
                         "     input bin b[2], output complex y[2]) {"
                         "  index i[0:1]; y[i] = x[i]*x[i]; }")});
    table.addRow({"Group reductions", "sum, prod, max, min",
                  "Built-in folds over index ranges",
                  verify("main(input float a[3][3], output float s) {"
                         "  index i[0:2], j[0:2];"
                         "  s = sum[i][j: j != i](a[i][j]); }")});
    table.addRow({"Custom reductions", "reduction",
                  "User-defined fold operators",
                  verify("reduction mymin(a, b) = a < b ? a : b;"
                         "main(input float a[4], output float m) {"
                         "  index i[0:3]; m = mymin[i](a[i]); }")});

    std::printf("Table I: PMLang constructs (each row verified against the "
                "live frontend)\n%s\n",
                table.str().c_str());
    return 0;
}
