/**
 * @file
 * Figure 9: percent of hand-optimized (native-stack) performance that
 * PolyMath-translated implementations reach on each accelerator. The paper
 * reports an 83.9% average, with robotics lowest (unique data semantics),
 * DECO reduced (stage balance), ElecUse low (small size amortizes the
 * extra srDFG operations poorly), and deep learning near-optimal.
 *
 * Routed through the suite driver (-jN) with serial aggregation, so the
 * report is identical at every jobs count.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();

    struct Row
    {
        std::vector<std::string> cells;
        double pct;
    };
    const auto rows = driver.mapTableIII(
        registry,
        [&](const wl::Benchmark &bench,
            const lower::CompiledProgram &compiled) {
            const auto *backend = target::findBackend(backends, bench.accel);
            if (!backend || compiled.partitions.empty())
                fatal("benchmark " + bench.id + " produced no partition");
            const auto &partition = compiled.partitions.front();

            const auto poly = backend->simulate(partition, bench.profile);
            const auto opt = backend->simulate(
                wl::optimalPartition(bench, partition), bench.profile);

            // Both designs stream the same operands, so the comparison is
            // on the compute/scheduling structure the expert controls; a
            // hand tuning can only match, not beat, the shared memory roof.
            const double poly_t = poly.computeSeconds + poly.overheadSeconds;
            const double opt_t = opt.computeSeconds + opt.overheadSeconds;
            const double pct =
                poly_t > 0 ? std::min(1.0, opt_t / poly_t) : 1.0;
            driver.record(bench.id, "poly_compute_seconds", poly_t);
            driver.record(bench.id, "opt_compute_seconds", opt_t);
            driver.record(bench.id, "pct_of_optimal", pct);
            return Row{{bench.id, bench.accel,
                        formatG(poly_t * 1e3, 4),
                        formatG(opt_t * 1e3, 4),
                        report::percent(pct)},
                       pct};
        });

    report::Table table(
        {"Benchmark", "Accel", "PolyMath compute (ms)", "Hand-tuned compute (ms)",
         "% of optimal"});
    std::vector<double> percents;
    for (const auto &row : rows) {
        percents.push_back(row.pct);
        table.addRow(row.cells);
    }
    driver.record("average", "pct_of_optimal", report::mean(percents));
    table.addRow({"Average", "", "", "",
                  report::percent(report::mean(percents))});

    std::printf("Figure 9: PolyMath vs. hand-tuned implementations on the "
                "same accelerators\n(paper: 83.9%% average)\n\n%s\n",
                table.str().c_str());
    return 0;
}
