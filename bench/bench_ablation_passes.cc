/**
 * @file
 * Ablation: effect of the srDFG optimization passes — in particular the
 * paper's algebraic-combination example (Section IV-B) — on compiled
 * program structure and simulated accelerator time. Not a paper figure;
 * it quantifies the design choice DESIGN.md calls out.
 */
#include <cstdio>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "lower/lower.h"
#include "passes/pass.h"
#include "passes/passes.h"
#include "report/report.h"
#include "soc/soc.h"
#include "srdfg/builder.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** Compiles @p bench with a configurable pipeline. */
lower::CompiledProgram
compileWith(const wl::Benchmark &bench,
            const lower::AcceleratorRegistry &registry, bool combination,
            bool cse, bool elision = false)
{
    auto graph = ir::compileToSrdfg(bench.source, bench.buildOpts);
    pass::PassManager pm;
    pm.add(pass::createConstantFolding());
    pm.add(pass::createSimplify());
    if (cse)
        pm.add(pass::createCse());
    if (combination)
        pm.add(pass::createAlgebraicCombination());
    pm.add(pass::createDeadNodeElimination());
    pm.runToFixpoint(*graph);
    lower::lowerGraph(*graph, registry.supportedOpsByDomain(),
                      bench.domain);
    if (elision) {
        // Post-lowering cleanup: once components are spliced, the moves
        // and their consumers share a level and gathers compose away.
        pass::PassManager post;
        post.add(pass::createIdentityElision());
        post.add(pass::createDeadNodeElimination());
        post.runToFixpoint(*graph);
    }
    return lower::compileProgram(*graph, registry, bench.domain);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    soc::SocRuntime runtime;

    report::Table table({"Benchmark", "Config", "Fragments", "Group ops",
                         "Accel time (ms)", "vs full pipeline"});

    const std::vector<std::string> subjects = {"MobileRobot", "Hexacopter",
                                               "FFT-8192"};
    for (const auto &id : subjects) {
        const auto &bench = wl::benchmarkById(id);
        struct Config
        {
            const char *label;
            bool combination;
            bool cse;
            bool elision;
        };
        const Config configs[] = {
            {"full pipeline", true, true, false},
            {"no algebraic-combination", false, true, false},
            {"no CSE", true, false, false},
            {"no passes", false, false, false},
            {"+ identity-elision (expert moves)", true, true, true},
        };
        double full_time = 0.0;
        for (const auto &config : configs) {
            const auto compiled = compileWith(bench, registry,
                                              config.combination,
                                              config.cse, config.elision);
            const auto result = runtime.execute(compiled, bench.profile);
            int64_t frags = 0;
            int64_t groups = 0;
            for (const auto &partition : compiled.partitions) {
                for (const auto &frag : partition.fragments) {
                    if (frag.opcode == "tload" || frag.opcode == "tstore")
                        continue;
                    ++frags;
                    if (frag.attrs.count("reduce_extent"))
                        ++groups;
                }
            }
            if (full_time == 0.0)
                full_time = result.total.seconds;
            driver.record(bench.id + "/" + config.label, "seconds",
                          result.total.seconds);
            table.addRow({bench.id, config.label, std::to_string(frags),
                          std::to_string(groups),
                          formatG(result.total.seconds * 1e3, 4),
                          formatF(result.total.seconds / full_time, 2) +
                              "x"});
        }
    }
    std::printf("Pass ablation (fragments/group ops after translation, "
                "simulated accelerator time)\n%s\n",
                table.str().c_str());
    return 0;
}
