/**
 * @file
 * Figure 11: end-to-end runtime and performance-per-watt improvement over
 * Titan Xp and Jetson Xavier for the two cross-domain applications, per
 * accelerated-domain combination. Paper anchors for all-domains: 1.2x
 * runtime / 8.3x PPW vs Titan Xp and 1.8x / 2.8x vs Jetson for
 * BrainStimul; 1.5x / 9.2x and 1.4x / 1.9x for OptionPricing.
 *
 * Apps compile through the suite driver's cache, and the per-combination
 * simulations fan out across the pool (-jN) with serial aggregation, so
 * the report is identical at every jobs count.
 */
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "driver.h"
#include "report/report.h"
#include "soc/soc.h"
#include "targets/gpu/gpu_model.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto titan = target::GpuModel::titanXp();
    const auto jetson = target::GpuModel::jetson();
    const soc::SocRuntime runtime;

    for (const auto &entry : driver.compileTableIV(registry)) {
        const auto &app = *entry.app;
        const auto &compiled = *entry.program;
        std::map<std::string, double> host_eff;
        for (const auto &kernel : app.kernels)
            host_eff[kernel.accel] = kernel.cpuEff;

        auto on_titan = titan.simulate(app.cpuCost());
        auto on_jetson = jetson.simulate(app.cpuCost());
        // The GPU systems pay the same host-side glue per step.
        const double glue =
            app.profile.hostGlueSeconds *
            static_cast<double>(app.profile.invocations);
        for (auto *g : {&on_titan, &on_jetson}) {
            g->seconds += glue;
            g->joules += glue * 15.0;
        }

        // Per-kernel rows then the full cross-domain row.
        std::vector<std::set<std::string>> combos;
        std::vector<std::string> labels;
        for (const auto &kernel : app.kernels) {
            combos.push_back({kernel.accel});
            labels.push_back(kernel.label);
        }
        std::set<std::string> all;
        std::string all_label;
        for (const auto &kernel : app.kernels) {
            all.insert(kernel.accel);
            all_label += all_label.empty() ? kernel.label
                                           : "+" + kernel.label;
        }
        combos.push_back(all);
        labels.push_back(all_label);

        const auto rows = driver.map(
            static_cast<int64_t>(combos.size()), [&](int64_t i) {
                const auto result = runtime.execute(
                    compiled, app.profile, combos[static_cast<size_t>(i)],
                    host_eff);
                return std::vector<std::string>{
                    labels[static_cast<size_t>(i)],
                    report::times(target::speedup(on_titan, result.total)),
                    report::times(
                        target::ppwImprovement(on_titan, result.total)),
                    report::times(target::speedup(on_jetson, result.total)),
                    report::times(
                        target::ppwImprovement(on_jetson, result.total))};
            });

        report::Table table({"Accelerated", "RT(Titan)", "PPW(Titan)",
                             "RT(Jetson)", "PPW(Jetson)"});
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("Figure 11 (%s): end-to-end improvement over GPUs\n%s\n",
                    app.id.c_str(), table.str().c_str());
    }
    return 0;
}
