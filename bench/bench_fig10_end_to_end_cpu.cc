/**
 * @file
 * Figure 10: end-to-end runtime/energy improvement over the CPU for the
 * two cross-domain applications, across every combination of accelerated
 * domains. The paper's headline: accelerating all kernels adds 1.85x
 * (BrainStimul) / 2.06x (OptionPricing) over the best single-domain
 * choice, with communication overheads of 23.4%/17.0% runtime and
 * 21.8%/12.4% energy.
 *
 * Apps compile through the suite driver's cache, and the per-combination
 * simulations fan out across the pool (-jN); tables are aggregated
 * serially so the report is identical at every jobs count.
 */
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "soc/soc.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** All non-empty subsets of the app's kernels, singletons first. */
std::vector<std::vector<const wl::AppKernel *>>
combinations(const wl::EndToEndApp &app)
{
    std::vector<std::vector<const wl::AppKernel *>> out;
    const size_t n = app.kernels.size();
    for (size_t size = 1; size <= n; ++size) {
        for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
            if (static_cast<size_t>(__builtin_popcountll(mask)) != size)
                continue;
            std::vector<const wl::AppKernel *> combo;
            for (size_t k = 0; k < n; ++k) {
                if (mask & (size_t{1} << k))
                    combo.push_back(&app.kernels[k]);
            }
            out.push_back(std::move(combo));
        }
    }
    return out;
}

std::string
comboLabel(const std::vector<const wl::AppKernel *> &combo)
{
    std::string label;
    for (const auto *k : combo) {
        if (!label.empty())
            label += "+";
        label += k->label;
    }
    return label;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const soc::SocRuntime runtime;

    for (const auto &entry : driver.compileTableIV(registry)) {
        const auto &app = *entry.app;
        const auto &compiled = *entry.program;

        std::map<std::string, double> host_eff;
        for (const auto &kernel : app.kernels)
            host_eff[kernel.accel] = kernel.cpuEff;

        // CPU-only baseline: no accelerator name matches.
        const auto cpu_only = runtime.execute(
            compiled, app.profile, {"<none>"}, host_eff);

        struct ComboRow
        {
            std::vector<std::string> cells;
            double runtime_gain;
            size_t size;
        };
        const auto combos = combinations(app);
        const auto rows = driver.map(
            static_cast<int64_t>(combos.size()), [&](int64_t i) {
                const auto &combo = combos[static_cast<size_t>(i)];
                std::set<std::string> accels;
                for (const auto *k : combo)
                    accels.insert(k->accel);
                const auto result =
                    runtime.execute(compiled, app.profile, accels, host_eff);
                const double rt =
                    target::speedup(cpu_only.total, result.total);
                const double en =
                    target::energyReduction(cpu_only.total, result.total);
                return ComboRow{
                    {comboLabel(combo), report::times(rt),
                     report::times(en),
                     report::percent(result.communicationFraction()),
                     report::percent(result.communicationEnergyFraction())},
                    rt, combo.size()};
            });

        report::Table table({"Accelerated", "Runtime", "Energy",
                             "Comm time", "Comm energy"});
        double best_single = 0.0;
        double all_accel = 0.0;
        for (const auto &row : rows) {
            if (row.size == 1)
                best_single = std::max(best_single, row.runtime_gain);
            if (row.size == app.kernels.size())
                all_accel = row.runtime_gain;
            table.addRow(row.cells);
        }
        std::printf("Figure 10 (%s): end-to-end improvement over CPU per "
                    "accelerated-domain combination\n",
                    app.id.c_str());
        std::printf("%s", table.str().c_str());
        const double gain =
            best_single > 0 ? all_accel / best_single : 0.0;
        driver.record(app.id, "cross_domain_gain", gain);
        driver.record(app.id, "best_single_speedup", best_single);
        driver.record(app.id, "all_accel_speedup", all_accel);
        std::printf("cross-domain gain over best single-domain: %sx\n\n",
                    formatF(gain, 2).c_str());
    }
    std::printf("(paper: gaps of 1.85x for BrainStimul and 2.06x for "
                "OptionPricing)\n");
    return 0;
}
