/**
 * @file
 * Figure 10: end-to-end runtime/energy improvement over the CPU for the
 * two cross-domain applications, across every combination of accelerated
 * domains. The paper's headline: accelerating all kernels adds 1.85x
 * (BrainStimul) / 2.06x (OptionPricing) over the best single-domain
 * choice, with communication overheads of 23.4%/17.0% runtime and
 * 21.8%/12.4% energy.
 */
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "report/report.h"
#include "soc/soc.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** All non-empty subsets of the app's kernels, singletons first. */
std::vector<std::vector<const wl::AppKernel *>>
combinations(const wl::EndToEndApp &app)
{
    std::vector<std::vector<const wl::AppKernel *>> out;
    const size_t n = app.kernels.size();
    for (size_t size = 1; size <= n; ++size) {
        for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
            if (static_cast<size_t>(__builtin_popcountll(mask)) != size)
                continue;
            std::vector<const wl::AppKernel *> combo;
            for (size_t k = 0; k < n; ++k) {
                if (mask & (size_t{1} << k))
                    combo.push_back(&app.kernels[k]);
            }
            out.push_back(std::move(combo));
        }
    }
    return out;
}

std::string
comboLabel(const std::vector<const wl::AppKernel *> &combo)
{
    std::string label;
    for (const auto *k : combo) {
        if (!label.empty())
            label += "+";
        label += k->label;
    }
    return label;
}

} // namespace

int
main()
{
    const auto registry = target::standardRegistry();
    soc::SocRuntime runtime;

    for (const auto &app : wl::tableIV()) {
        const auto compiled = wl::compileBenchmark(
            app.source, app.buildOpts, registry, lang::Domain::None);

        std::map<std::string, double> host_eff;
        for (const auto &kernel : app.kernels)
            host_eff[kernel.accel] = kernel.cpuEff;

        // CPU-only baseline: no accelerator name matches.
        const auto cpu_only = runtime.execute(
            compiled, app.profile, {"<none>"}, host_eff);

        report::Table table({"Accelerated", "Runtime", "Energy",
                             "Comm time", "Comm energy"});
        double best_single = 0.0;
        double all_accel = 0.0;
        for (const auto &combo : combinations(app)) {
            std::set<std::string> accels;
            for (const auto *k : combo)
                accels.insert(k->accel);
            const auto result =
                runtime.execute(compiled, app.profile, accels, host_eff);
            const double rt = target::speedup(cpu_only.total, result.total);
            const double en =
                target::energyReduction(cpu_only.total, result.total);
            if (combo.size() == 1)
                best_single = std::max(best_single, rt);
            if (combo.size() == app.kernels.size())
                all_accel = rt;
            table.addRow({comboLabel(combo), report::times(rt),
                          report::times(en),
                          report::percent(result.communicationFraction()),
                          report::percent(
                              result.communicationEnergyFraction())});
        }
        std::printf("Figure 10 (%s): end-to-end improvement over CPU per "
                    "accelerated-domain combination\n",
                    app.id.c_str());
        std::printf("%s", table.str().c_str());
        std::printf("cross-domain gain over best single-domain: %.2fx\n\n",
                    best_single > 0 ? all_accel / best_single : 0.0);
    }
    std::printf("(paper: gaps of 1.85x for BrainStimul and 2.06x for "
                "OptionPricing)\n");
    return 0;
}
