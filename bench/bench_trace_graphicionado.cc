/**
 * @file
 * Cross-check: the analytic Graphicionado cost model (used by Figs. 7/8)
 * against the trace-driven pipeline simulator streaming the actual R-MAT
 * edge lists. Reports cycles, bank-conflict rates (R-MAT hubs serialize
 * atomic updates), scratchpad residency, and the analytic/trace ratio.
 * Not a paper figure; it validates the substitution of DESIGN.md §1.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "targets/graphicionado/pipeline_sim.h"
#include "workloads/datasets.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto *gcn = target::findBackend(backends, "Graphicionado");

    const std::vector<const char *> ids = {"Twitter-BFS", "Wiki-BFS",
                                           "LiveJourn-SSP"};
    const auto rows = driver.map(
        static_cast<int64_t>(ids.size()), [&](int64_t i) {
            const auto &bench =
                wl::benchmarkById(ids[static_cast<size_t>(i)]);
            const auto compiled = wl::compileBenchmarkCached(
                bench.source, bench.buildOpts, registry, bench.domain,
                driver.cache());
            const auto analytic =
                gcn->simulate(compiled->partitions.front(), bench.profile);

            // Generate the actual dataset this benchmark stands for.
            const auto graph = wl::rmatGraph(bench.profile.vertices,
                                             bench.profile.edges, 1234);
            auto config =
                target::TraceConfig::fromMachine(gcn->machine());
            // Per-edge/per-vertex op counts from the compiled vertex
            // program (mirrors the analytic model's derivation).
            config.opsPerEdge = 4.0;
            config.opsPerVertex = 2.0;
            const auto trace = target::simulateEdgeStream(
                graph.edgeList, graph.vertices, bench.profile.invocations,
                config);
            const auto traced = trace.toReport(config);

            driver.record(bench.id, "analytic_seconds",
                          analytic.seconds);
            driver.record(bench.id, "traced_seconds", traced.seconds);
            driver.record(bench.id, "trace_ratio",
                          traced.seconds / analytic.seconds);
            return std::vector<std::string>{
                bench.id,
                format("%lld", static_cast<long long>(graph.edges())),
                formatF(analytic.seconds * 1e3, 3),
                formatF(traced.seconds * 1e3, 3),
                formatF(traced.seconds / analytic.seconds, 2) + "x",
                formatF(static_cast<double>(trace.bankConflicts) /
                            static_cast<double>(trace.edgesProcessed),
                        3),
                trace.scratchpadResident ? "yes" : "no"};
        });

    report::Table table({"Benchmark", "Edges", "Analytic (ms)",
                         "Trace (ms)", "Ratio", "Conflicts/edge",
                         "Resident"});
    for (const auto &row : rows)
        table.addRow(row);
    std::printf("Trace-driven Graphicionado vs analytic model\n"
                "(validates the cost model behind Figs. 7/8; ratios near "
                "1x mean the analytic model is faithful)\n\n%s\n",
                table.str().c_str());
    return 0;
}
