/**
 * @file
 * Tables III and IV: the benchmark suite with measured PMLang LOC and
 * compiled srDFG statistics. The LOC column is counted from the programs
 * of record (this reproduction's FFT spells out per-stage instantiations,
 * so its LOC exceeds the paper's 12; see EXPERIMENTS.md).
 *
 * Runs through the parallel suite driver: `-jN` fans the per-workload
 * compilations across N workers (graphs additionally land in the shared
 * compile cache for later use), with output bit-identical to `-j1`.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "driver.h"
#include "report/report.h"
#include "srdfg/printer.h"
#include "targets/common/backend.h"
#include "workloads/python_corpus.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();

    report::Table t3({"Benchmark", "Domain", "Algorithm", "Config",
                      "PMLang LOC", "srDFG"});
    const auto t3_rows = driver.mapTableIII(
        registry,
        [](const wl::Benchmark &bench, const lower::CompiledProgram &) {
            auto graph = wl::buildGraph(bench.source, bench.buildOpts);
            return std::vector<std::string>{
                bench.id, lang::toString(bench.domain), bench.algorithm,
                bench.config, std::to_string(wl::pmlangLoc(bench.source)),
                ir::graphStats(*graph)};
        });
    for (const auto &row : t3_rows)
        t3.addRow(row);
    std::printf("Table III: single-domain workloads\n%s\n",
                t3.str().c_str());

    report::Table t4({"Application", "Kernels", "PMLang LOC", "srDFG"});
    const auto t4_rows = driver.mapTableIV(
        registry,
        [](const wl::EndToEndApp &app, const lower::CompiledProgram &) {
            std::string kernels;
            for (const auto &k : app.kernels) {
                if (!kernels.empty())
                    kernels += ", ";
                kernels += k.label + " (" + lang::toString(k.domain) +
                           " on " + k.accel + ")";
            }
            auto graph = wl::buildGraph(app.source, app.buildOpts);
            return std::vector<std::string>{
                app.id, kernels,
                std::to_string(wl::pmlangLoc(app.source)),
                ir::graphStats(*graph)};
        });
    for (const auto &row : t4_rows)
        t4.addRow(row);
    std::printf("Table IV: end-to-end cross-domain applications\n%s\n",
                t4.str().c_str());
    return 0;
}
