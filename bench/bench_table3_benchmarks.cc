/**
 * @file
 * Tables III and IV: the benchmark suite with measured PMLang LOC and
 * compiled srDFG statistics. The LOC column is counted from the programs
 * of record (this reproduction's FFT spells out per-stage instantiations,
 * so its LOC exceeds the paper's 12; see EXPERIMENTS.md).
 */
#include <cstdio>

#include "report/report.h"
#include "srdfg/printer.h"
#include "workloads/python_corpus.h"
#include "workloads/suite.h"

using namespace polymath;

int
main()
{
    report::Table t3({"Benchmark", "Domain", "Algorithm", "Config",
                      "PMLang LOC", "srDFG"});
    for (const auto &bench : wl::tableIII()) {
        auto graph = wl::buildGraph(bench.source, bench.buildOpts);
        t3.addRow({bench.id, lang::toString(bench.domain), bench.algorithm,
                   bench.config,
                   std::to_string(wl::pmlangLoc(bench.source)),
                   ir::graphStats(*graph)});
    }
    std::printf("Table III: single-domain workloads\n%s\n",
                t3.str().c_str());

    report::Table t4({"Application", "Kernels", "PMLang LOC", "srDFG"});
    for (const auto &app : wl::tableIV()) {
        std::string kernels;
        for (const auto &k : app.kernels) {
            if (!kernels.empty())
                kernels += ", ";
            kernels += k.label + " (" + lang::toString(k.domain) + " on " +
                       k.accel + ")";
        }
        auto graph = wl::buildGraph(app.source, app.buildOpts);
        t4.addRow({app.id, kernels,
                   std::to_string(wl::pmlangLoc(app.source)),
                   ir::graphStats(*graph)});
    }
    std::printf("Table IV: end-to-end cross-domain applications\n%s\n",
                t4.str().c_str());
    return 0;
}
