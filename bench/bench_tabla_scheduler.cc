/**
 * @file
 * Cross-check: TABLA's analytic dependence-level model (Figs. 7/8)
 * against the event-driven PE-array list scheduler on the data-analytics
 * workloads. Reports makespans, bus pressure, and PE occupancy. Not a
 * paper figure; it validates the cost model (DESIGN.md §1).
 */
#include <cstdio>

#include "core/strings.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "targets/tabla/scheduler.h"
#include "workloads/suite.h"

using namespace polymath;

int
main()
{
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto *tabla = target::findBackend(backends, "TABLA");

    report::Table table({"Benchmark", "Fragments", "Analytic (cyc)",
                         "Scheduled (cyc)", "Ratio", "Bus (cyc)",
                         "PE occupancy"});

    for (const char *id :
         {"MovieL-100K", "MovieL-20M", "DigitCluster", "ElecUse"}) {
        const auto &bench = wl::benchmarkById(id);
        const auto compiled = wl::compileBenchmark(
            bench.source, bench.buildOpts, registry, bench.domain);
        const auto &partition = compiled.partitions.front();

        // Analytic per-invocation cycles (strip DMA/overhead terms).
        target::WorkloadProfile once = bench.profile;
        once.invocations = 1;
        const auto analytic = tabla->simulate(partition, once);
        const double analytic_cycles =
            analytic.computeSeconds * tabla->machine().freqGhz * 1e9;

        target::ScheduleConfig config;
        config.pes = tabla->machine().computeUnits;
        const auto schedule = target::listSchedule(partition, config);

        int64_t frags = 0;
        for (const auto &f : partition.fragments)
            frags += f.opcode != "tload" && f.opcode != "tstore";

        table.addRow(
            {bench.id, format("%lld", static_cast<long long>(frags)),
             format("%.0f", analytic_cycles),
             format("%lld", static_cast<long long>(schedule.cycles)),
             format("%.2fx",
                    static_cast<double>(schedule.cycles) /
                        analytic_cycles),
             format("%lld", static_cast<long long>(schedule.busCycles)),
             report::percent(schedule.peOccupancy)});
    }
    std::printf("Event-driven TABLA list scheduler vs analytic level "
                "model\n(per-invocation compute cycles; the scheduler "
                "serializes operand fetches the analytic model assumes "
                "are overlapped, so ratios of ~1.5x bound the optimism "
                "of the Fig. 7/8 cost model)\n\n%s\n",
                table.str().c_str());
    return 0;
}
