/**
 * @file
 * Cross-check: TABLA's analytic dependence-level model (Figs. 7/8)
 * against the event-driven PE-array list scheduler on the data-analytics
 * workloads. Reports makespans, bus pressure, and PE occupancy. Not a
 * paper figure; it validates the cost model (DESIGN.md §1).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/common/backend.h"
#include "targets/tabla/scheduler.h"
#include "workloads/suite.h"

using namespace polymath;

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto backends = target::standardBackends();
    const auto *tabla = target::findBackend(backends, "TABLA");

    const std::vector<const char *> ids = {"MovieL-100K", "MovieL-20M",
                                           "DigitCluster", "ElecUse"};
    const auto rows = driver.map(
        static_cast<int64_t>(ids.size()), [&](int64_t i) {
            const auto &bench =
                wl::benchmarkById(ids[static_cast<size_t>(i)]);
            const auto compiled = wl::compileBenchmarkCached(
                bench.source, bench.buildOpts, registry, bench.domain,
                driver.cache());
            const auto &partition = compiled->partitions.front();

            // Analytic per-invocation cycles (strip DMA/overhead terms).
            target::WorkloadProfile once = bench.profile;
            once.invocations = 1;
            const auto analytic = tabla->simulate(partition, once);
            const double analytic_cycles =
                analytic.computeSeconds * tabla->machine().freqGhz * 1e9;

            target::ScheduleConfig config;
            config.pes = tabla->machine().computeUnits;
            const auto schedule = target::listSchedule(partition, config);

            int64_t frags = 0;
            for (const auto &f : partition.fragments)
                frags += f.opcode != "tload" && f.opcode != "tstore";

            const double ratio =
                static_cast<double>(schedule.cycles) / analytic_cycles;
            driver.record(bench.id, "analytic_cycles", analytic_cycles);
            driver.record(bench.id, "scheduled_cycles",
                          static_cast<double>(schedule.cycles));
            driver.record(bench.id, "schedule_ratio", ratio);
            driver.record(bench.id, "pe_occupancy", schedule.peOccupancy);
            return std::vector<std::string>{
                bench.id, format("%lld", static_cast<long long>(frags)),
                formatF(analytic_cycles, 0),
                format("%lld", static_cast<long long>(schedule.cycles)),
                formatF(ratio, 2) + "x",
                format("%lld", static_cast<long long>(schedule.busCycles)),
                report::percent(schedule.peOccupancy)};
        });

    report::Table table({"Benchmark", "Fragments", "Analytic (cyc)",
                         "Scheduled (cyc)", "Ratio", "Bus (cyc)",
                         "PE occupancy"});
    for (const auto &row : rows)
        table.addRow(row);
    std::printf("Event-driven TABLA list scheduler vs analytic level "
                "model\n(per-invocation compute cycles; the scheduler "
                "serializes operand fetches the analytic model assumes "
                "are overlapped, so ratios of ~1.5x bound the optimism "
                "of the Fig. 7/8 cost model)\n\n%s\n",
                table.str().c_str());
    return 0;
}
