/**
 * @file
 * Streaming-SoC throughput/latency sweep (docs/RESILIENCE.md, "Online
 * rescheduling & load shedding").
 *
 * The Table III workloads become a job mix for soc::StreamScheduler: jobs
 * arrive as a Poisson stream cycling over the templates, and the sweep
 * varies the offered load relative to the mix's mean fault-free service
 * time (rho = 0.5 / 1.0 / 2.0), with and without chaos-level fault
 * injection (DMA 10%, watchdog 5%, accelerator loss 2% — the
 * bench_resilience rate mapping at r = 0.1). Reported per cell:
 * sustained jobs/s, p50/p99/p999 stream latency, load shed (admission
 * rejections + deadline sheds), online migrations, and accelerator
 * availability.
 *
 * Everything is virtual-time simulation from seeded draws, so the table
 * is byte-identical across runs and jobs counts; `--json` writes the
 * numbers as a polymath-bench/1 artifact for the tools/check.sh
 * perf-regression gate (bench/baselines/soc_throughput.json).
 */
#include <cstdio>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "soc/stream.h"
#include "targets/common/backend.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

constexpr uint64_t kSeed = 0x5eed;
constexpr int kJobs = 120;

soc::FaultConfig
chaosConfig(double rate)
{
    soc::FaultConfig fc;
    fc.seed = kSeed;
    fc.dmaFailureRate = rate;
    fc.watchdogRate = rate / 2.0;
    fc.accelUnavailableRate = rate / 5.0;
    return fc;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    const auto registry = target::standardRegistry();
    const auto workloads = driver.compileTableIII(registry);

    soc::SocRuntime runtime;
    std::vector<soc::StreamJob> templates;
    double mean_service = 0.0;
    for (const auto &w : workloads) {
        soc::StreamJob job;
        job.name = w.bench->id;
        job.program = w.program.get();
        job.profile = w.bench->profile;
        job.hostEff = {{w.bench->accel, w.bench->cpuEff}};
        mean_service +=
            runtime.estimate(*job.program, job.profile, {}, job.hostEff)
                .total.seconds;
        templates.push_back(std::move(job));
    }
    mean_service /= static_cast<double>(templates.size());

    // Offered load relative to the mix's mean service time; past
    // saturation the deadline policy starts shedding queued work.
    const double kLoads[] = {0.5, 1.0, 2.0};
    const double kFaultRates[] = {0.0, 0.1};
    struct Cell
    {
        double load = 0.0;
        double faultRate = 0.0;
    };
    std::vector<Cell> cells;
    for (const double load : kLoads) {
        for (const double rate : kFaultRates)
            cells.push_back(Cell{load, rate});
    }

    const auto rows = driver.map(
        static_cast<int64_t>(cells.size()), [&](int64_t ci) {
            const Cell cell = cells[static_cast<size_t>(ci)];
            soc::StreamConfig config;
            config.arrival = soc::ArrivalModel::Poisson;
            config.jobs = kJobs;
            config.arrivalRate = cell.load / mean_service;
            config.seed = kSeed;
            // Shed jobs whose queueing pushes them past 10x their own
            // fault-free estimate — under overload the long-template
            // backends saturate and start dropping work.
            config.deadlineFactor = 10.0;
            config.deadlinePolicy = soc::DeadlinePolicy::Shed;
            config.workers = 1; // the outer sweep already uses the pool
            if (cell.faultRate > 0.0)
                config.faults = chaosConfig(cell.faultRate);
            const soc::SocRuntime rt;
            const soc::StreamScheduler scheduler(rt, config);
            const soc::StreamReport report = scheduler.run(templates);

            const int64_t shed = report.rejected + report.shed;
            const std::string id = "load=" + formatF(cell.load, 2) +
                                   ",faults=" +
                                   formatF(cell.faultRate, 2);
            driver.record(id, "jobs_per_sec",
                          report.throughputJobsPerSecond());
            driver.record(id, "p50_ms",
                          report.p50LatencySeconds * 1e3);
            driver.record(id, "p99_ms",
                          report.p99LatencySeconds * 1e3);
            driver.record(id, "p999_ms",
                          report.p999LatencySeconds * 1e3);
            driver.record(id, "shed", static_cast<double>(shed));
            driver.record(id, "migrations",
                          static_cast<double>(report.migrations));
            driver.record(id, "availability",
                          report.reliability.availability());
            return std::vector<std::string>{
                formatF(cell.load, 2),
                formatF(cell.faultRate, 2),
                formatF(report.throughputJobsPerSecond(), 2),
                formatF(report.p50LatencySeconds * 1e3, 3),
                formatF(report.p99LatencySeconds * 1e3, 3),
                formatF(report.p999LatencySeconds * 1e3, 3),
                std::to_string(shed),
                std::to_string(report.migrations),
                formatF(report.reliability.availability(), 3)};
        });

    report::Table table({"Load", "Fault rate", "Jobs/s", "p50 ms",
                         "p99 ms", "p999 ms", "Shed", "Migrations",
                         "Availability"});
    for (const auto &row : rows)
        table.addRow(row);
    std::printf("Streaming SoC throughput: %d Poisson jobs over the "
                "Table III mix (mean service %s s), seed 0x%llx\n%s\n",
                kJobs, formatF(mean_service, 6).c_str(),
                static_cast<unsigned long long>(kSeed),
                table.str().c_str());
    std::printf("Load is offered rate x mean fault-free service time; "
                "faults follow the resilience mapping (dma=r, "
                "watchdog=r/2, accel=r/5).\n");
    driver.reportStats();
    return 0;
}
