/**
 * @file
 * Shared parallel suite driver for the bench harness.
 *
 * Every bench_* main used to recompile and simulate the Table III/IV
 * workloads serially and from scratch. The driver centralizes that loop:
 * workloads compile through the process-wide content-addressed
 * CompileCache and fan out across a fixed-size thread pool, with results
 * returned in table order so the rendered reports are *bit-identical* to
 * a serial run (`-j1` and `-jN` must produce the same bytes; see
 * tests/test_driver.cc).
 *
 * Knobs: `-j N` / `--jobs N` / `--jobs=N` on any bench binary, or the
 * `POLYMATH_JOBS` environment variable (0 = all hardware threads).
 * Default is serial. `--driver-stats` prints jobs + cache hit counters
 * to stderr after the run (stderr, so report output stays identical).
 * `--trace <out.json>` records the whole run — per-job wall-clock spans
 * from every pool worker plus the compiler/SoC instrumentation beneath
 * them — and writes Chrome-trace JSON on driver destruction.
 * `--json <out.json>` writes the numbers behind the rendered report as a
 * schema-versioned bench artifact (report/artifact.h) on destruction;
 * bench mains feed it via Driver::record(). tools/bench_compare diffs
 * two artifacts for the perf-regression gate.
 */
#ifndef POLYMATH_BENCH_DRIVER_H_
#define POLYMATH_BENCH_DRIVER_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/thread_pool.h"
#include "lower/compile_cache.h"
#include "obs/trace.h"
#include "workloads/suite.h"

namespace polymath::bench {

/** Command-line / environment configuration for a suite run. */
struct DriverOptions
{
    /** Worker threads; <= 1 means serial, 0 means all hardware threads. */
    int jobs = 1;

    /** Print cache/pool statistics to stderr after the run. */
    bool stats = false;

    /** When non-empty, enable the global TraceRecorder and write
     *  Chrome-trace JSON here when the driver is destroyed. */
    std::string tracePath;

    /** When non-empty, write a bench artifact (every Driver::record()
     *  call) here when the driver is destroyed. */
    std::string jsonPath;

    /** Artifact identity; parseDriverArgs derives it from argv[0]
     *  ("bench/bench_fig7_cpu_comparison" -> "fig7_cpu_comparison"). */
    std::string benchName;
};

/**
 * Parses `-j`/`--jobs`/`--driver-stats` out of argv (the flags every
 * bench main accepts), leaving unrecognized arguments alone. Starts from
 * the POLYMATH_JOBS environment default. @throws UserError on a
 * malformed jobs value.
 */
DriverOptions parseDriverArgs(int argc, char **argv);

/** One compiled Table III workload, in table order. */
struct CompiledBenchmark
{
    const wl::Benchmark *bench = nullptr;
    std::shared_ptr<const lower::CompiledProgram> program;
};

/** One compiled Table IV application, in table order. */
struct CompiledApp
{
    const wl::EndToEndApp *app = nullptr;
    std::shared_ptr<const lower::CompiledProgram> program;
};

/** The suite driver: pool + cache + deterministic aggregation. */
class Driver
{
  public:
    explicit Driver(DriverOptions options = {});

    /** Convenience: parseDriverArgs + construct. */
    Driver(int argc, char **argv);

    ~Driver();

    int jobs() const { return options_.jobs; }
    lower::CompileCache &cache() const { return cache_; }

    /**
     * Deterministic parallel map: returns {fn(0), ..., fn(n-1)} in index
     * order regardless of the jobs count. Serial when jobs <= 1.
     */
    template <class Fn>
    auto map(int64_t n, Fn &&fn) const
    {
        // Each job gets a wall-clock span on its worker's track, so a
        // traced run shows how the pool filled. fn is shared across
        // workers (parallelMap already requires it to be thread-safe).
        return core::parallelMap(options_.jobs, n, [&fn, n](int64_t i) {
            obs::Span span("driver:job", "driver");
            if (span.active()) {
                span.arg("index", i);
                span.arg("of", n);
            }
            return fn(i);
        });
    }

    /**
     * Compiles all Table III workloads (cached + parallel), then applies
     * @p fn to each (benchmark, compiled program) pair — also in the
     * pool — and returns the per-benchmark results in table order.
     */
    template <class Fn>
    auto mapTableIII(const lower::AcceleratorRegistry &registry,
                     Fn &&fn) const
    {
        const auto compiled = compileTableIII(registry);
        return map(static_cast<int64_t>(compiled.size()),
                   [&](int64_t i) {
                       const auto &c = compiled[static_cast<size_t>(i)];
                       return fn(*c.bench, *c.program);
                   });
    }

    /** mapTableIII's analogue for the Table IV applications. */
    template <class Fn>
    auto mapTableIV(const lower::AcceleratorRegistry &registry,
                    Fn &&fn) const
    {
        const auto compiled = compileTableIV(registry);
        return map(static_cast<int64_t>(compiled.size()),
                   [&](int64_t i) {
                       const auto &c = compiled[static_cast<size_t>(i)];
                       return fn(*c.app, *c.program);
                   });
    }

    /** Compiles the whole Table III suite (cached), in table order. */
    std::vector<CompiledBenchmark> compileTableIII(
        const lower::AcceleratorRegistry &registry) const;

    /** Compiles both Table IV applications (cached), in table order. */
    std::vector<CompiledApp> compileTableIV(
        const lower::AcceleratorRegistry &registry) const;

    /** Jobs + cache statistics line, e.g. for --driver-stats. */
    std::string statsLine() const;

    /** Prints statsLine() to @p out when --driver-stats was given. */
    void reportStats(std::FILE *out = stderr) const;

    /**
     * Records one artifact row (thread-safe; bench mains call this from
     * inside map lambdas). A no-op without `--json`, so instrumented
     * benches cost nothing on the default path.
     */
    void record(const std::string &benchmark, const std::string &metric,
                double value) const;

  private:
    DriverOptions options_;
    lower::CompileCache &cache_;
    mutable std::mutex artifactMutex_;
    mutable std::vector<std::tuple<std::string, std::string, double>>
        artifactRows_;
};

} // namespace polymath::bench

#endif // POLYMATH_BENCH_DRIVER_H_
