/**
 * @file
 * Cross-check: the analytic VTA layer model (Figs. 7/8) against the
 * tile-level planner walking ResNet-18's real layer geometry. Reports
 * per-layer tile choices, GEMM utilization, exposed load cycles, and the
 * whole-network analytic/tiled ratio. Not a paper figure; validates the
 * DL-backend substitution (DESIGN.md §1).
 */
#include <cstdio>

#include "core/strings.h"
#include "driver.h"
#include "report/report.h"
#include "targets/vta/tiler.h"

using namespace polymath;

namespace {

void
reportNetwork(const bench::Driver &driver, const char *name,
              const std::vector<target::LayerShape> &layers,
              bool per_layer)
{
    const target::VtaTileConfig config;
    report::Table table({"Layer", "MACs (M)", "Tile (px x ch)", "Tiles",
                         "Cycles (k)", "GEMM util", "Exposed load"});

    double total_seconds = 0.0;
    double total_macs = 0.0;
    for (const auto &layer : layers) {
        const auto plan = target::planLayer(layer, config);
        total_seconds += plan.seconds(config.freqGhz);
        total_macs += static_cast<double>(layer.macs());
        table.addRow(
            {layer.name,
             formatF(static_cast<double>(layer.macs()) / 1e6, 1),
             format("%lldx%lld", static_cast<long long>(plan.tileRows),
                    static_cast<long long>(plan.tileCols)),
             format("%lld", static_cast<long long>(plan.tiles)),
             formatF(static_cast<double>(plan.totalCycles) / 1e3, 0),
             report::percent(plan.utilization),
             report::percent(plan.totalCycles > 0
                                 ? static_cast<double>(plan.loadCycles) /
                                       static_cast<double>(plan.totalCycles)
                                 : 0.0)});
    }

    // Analytic whole-network estimate at the same machine constants
    // (flops = 2*MACs, eff 0.35 as in the backend).
    const double peak =
        static_cast<double>(config.gemmRows * config.gemmCols) * 2.0 *
        config.freqGhz * 1e9;
    const double analytic_seconds = 2.0 * total_macs / (peak * 0.35);

    std::printf("Tile-level VTA planner on %s (one inference)\n\n", name);
    if (per_layer)
        std::printf("%s\n", table.str().c_str());
    driver.record(name, "tiled_seconds", total_seconds);
    driver.record(name, "analytic_seconds", analytic_seconds);
    driver.record(name, "ratio", total_seconds / analytic_seconds);
    std::printf("tiled total: %s ms   analytic backend estimate: %s ms "
                "  ratio %sx\n"
                "(the planner is a lower bound: it assumes perfect "
                "instruction streaming and no layout transforms; the "
                "analytic model's 0.35 GEMM efficiency folds those real "
                "VTA costs in, so it sits above the bound by design)\n",
                formatF(total_seconds * 1e3, 1).c_str(),
                formatF(analytic_seconds * 1e3, 1).c_str(),
                formatF(total_seconds / analytic_seconds, 2).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Driver driver(argc, argv);
    reportNetwork(driver, "ResNet-18", target::resnet18Layers(), true);
    std::printf("\n");
    reportNetwork(driver, "MobileNet-V1", target::mobilenetLayers(),
                  false);
    return 0;
}
