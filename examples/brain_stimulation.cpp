/**
 * @file
 * The paper's running example (Section II): a closed-loop deep-brain
 * stimulation application crossing three domains — ECoG signals are
 * transformed to the frequency domain (DSP), classified into biomarkers
 * (Data Analytics), and fed to model-predictive control that drives the
 * optical stimulation (Robotics/Control).
 *
 * This example runs the whole application functionally for several
 * closed-loop steps with the reference interpreter, then compiles it for
 * the DECO + TABLA + RoboX SoC and reports the multi-acceleration
 * schedule and simulated performance per accelerated-domain combination.
 */
#include <cstdio>

#include "core/rng.h"
#include "interp/interpreter.h"
#include "soc/soc.h"
#include "srdfg/builder.h"
#include "workloads/datasets.h"
#include "workloads/suite.h"

using namespace polymath;

int
main()
{
    const auto &app = wl::tableIV().front(); // BrainStimul

    // --- functional closed loop ---------------------------------------
    auto graph = wl::buildGraph(app.source, app.buildOpts);
    interp::Interpreter loop(*graph);

    Rng rng(42);
    // Classifier weights: positive bias on the low-frequency bins where
    // the synthetic pathological rhythm lives.
    Tensor w_cls(DType::Float, Shape{4096});
    for (int64_t i = 0; i < 64; ++i)
        w_cls.at(i) = 1e-7;
    loop.setInput("w_cls", w_cls);
    loop.setInput("tw", wl::twiddleTable(4096));
    loop.setInput("ctrl_mdl", Tensor(DType::Float, Shape{80}));

    Tensor pos_ref(DType::Float, Shape{120});
    for (int64_t i = 0; i < 120; ++i)
        pos_ref.at(i) = 0.5;
    loop.setInput("pos_ref", pos_ref);
    auto random_matrix = [&](Shape shape, double scale) {
        Tensor t(DType::Float, shape);
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = rng.gaussian() * scale;
        return t;
    };
    loop.setInput("P", random_matrix(Shape{120, 3}, 0.1));
    loop.setInput("H", random_matrix(Shape{120, 80}, 0.05));
    loop.setInput("HQ_g", random_matrix(Shape{80, 120}, 0.02));
    loop.setInput("R_g", random_matrix(Shape{80, 80}, 0.02));

    std::printf("closed-loop stimulation (functional, 5 steps):\n");
    for (int step = 0; step < 5; ++step) {
        loop.setInput("ecog", wl::complexSignal(
                                  4096, 100 + static_cast<uint64_t>(step)));
        Tensor pos = Tensor::vec({0.1 * step, -0.05 * step, 0.01});
        loop.setInput("pos", pos);
        loop.run();
        std::printf("  step %d: biomarker=%.4f  stim=(%.4f, %.4f)\n", step,
                    loop.output("biomarker").scalarValue(),
                    loop.output("stim_sgnl").at(int64_t{0}),
                    loop.output("stim_sgnl").at(int64_t{1}));
    }

    // --- cross-domain multi-acceleration --------------------------------
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(app.source, app.buildOpts,
                                               registry,
                                               lang::Domain::None);
    std::printf("\nmulti-accelerator schedule:\n%s\n",
                compiled.str().c_str());

    soc::SocRuntime runtime;
    std::map<std::string, double> host_eff;
    for (const auto &kernel : app.kernels)
        host_eff[kernel.accel] = kernel.cpuEff;
    const auto cpu_only =
        runtime.execute(compiled, app.profile, {"<none>"}, host_eff);
    const auto all = runtime.execute(compiled, app.profile, {}, host_eff);
    std::printf("CPU only : %s\n", cpu_only.total.str().c_str());
    std::printf("all accel: %s\n", all.total.str().c_str());
    std::printf("end-to-end speedup %.2fx, energy reduction %.2fx, "
                "communication %.1f%% of runtime\n",
                target::speedup(cpu_only.total, all.total),
                target::energyReduction(cpu_only.total, all.total),
                all.communicationFraction() * 100.0);
    return 0;
}
