/**
 * @file
 * Quickstart: the PolyMath stack end to end on one small program.
 *
 *  1. Write a PMLang component (matrix-vector product + bias).
 *  2. Compile it to an srDFG and print every granularity level.
 *  3. Execute it functionally with the reference interpreter.
 *  4. Optimize it with the standard pass pipeline.
 *  5. Lower + translate it for the data-analytics accelerator (TABLA)
 *     and simulate the result.
 */
#include <cstdio>

#include "interp/interpreter.h"
#include "passes/pass.h"
#include "soc/soc.h"
#include "srdfg/builder.h"
#include "srdfg/printer.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

const char *const kProgram = R"(
// y = A x + b, written the way the math reads (Section II).
affine(input float A[m][n], input float x[n], param float b[m],
       output float y[m]) {
    index i[0:n-1], j[0:m-1];
    y[j] = sum[i](A[j][i]*x[i]) + b[j];
}
main(input float A[4][3], input float x[3], param float b[4],
     output float y[4]) {
    DA: affine(A, x, b, y);
}
)";

} // namespace

int
main()
{
    // --- 2. Compile to the recursive IR -------------------------------
    auto graph = ir::compileToSrdfg(kProgram);
    std::printf("=== srDFG (all granularity levels) ===\n%s\n",
                ir::printGraph(*graph).c_str());
    std::printf("stats: %s\n\n", ir::graphStats(*graph).c_str());

    // --- 3. Execute functionally --------------------------------------
    Tensor a = Tensor::fromFlat(Shape{4, 3},
                                {1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1});
    Tensor x = Tensor::vec({10, 20, 30});
    Tensor b = Tensor::vec({1, 2, 3, 4});
    auto outputs = interp::evaluate(*graph, {{"A", a}, {"x", x}, {"b", b}});
    std::printf("y = %s  (expected 11, 22, 33, 64)\n\n",
                outputs.at("y").str().c_str());

    // --- 4. Optimize ----------------------------------------------------
    auto pipeline = pass::standardPipeline();
    for (const auto &result : pipeline.runToFixpoint(*graph)) {
        if (result.changed)
            std::printf("pass %-22s changed the graph\n",
                        result.name.c_str());
    }

    // --- 5. Lower, translate, and simulate on TABLA ---------------------
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(kProgram, {}, registry,
                                               lang::Domain::DA);
    std::printf("\n=== accelerator program ===\n%s\n",
                compiled.str().c_str());

    soc::SocRuntime runtime;
    target::WorkloadProfile profile;
    profile.invocations = 1000;
    const auto result = runtime.execute(compiled, profile);
    std::printf("simulated on %s: %s\n",
                compiled.partitions.front().accel.c_str(),
                result.total.str().c_str());
    return 0;
}
