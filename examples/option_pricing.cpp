/**
 * @file
 * The finance case study (Table IV): logistic-regression sentiment over a
 * resident news-article matrix steers the volatility input of a
 * Black-Scholes pricing batch. Both kernels are Data Analytics, yet they
 * map to two different accelerators — logistic regression to TABLA,
 * Black-Scholes to the HyperStreams pipeline — demonstrating that
 * PolyMath's accelerator selection is finer than one-per-domain.
 *
 * A reduced instance runs functionally (checked against the closed-form
 * reference); the full Table IV configuration is then compiled and
 * simulated on the SoC.
 */
#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "interp/interpreter.h"
#include "soc/soc.h"
#include "srdfg/builder.h"
#include "workloads/datasets.h"
#include "workloads/reference.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** The Table IV program at a functional-test scale. */
const char *const kSmallApp = R"(
sentiment_infer(state float art[N][D], state float w[D],
                output float sent[N]) {
    index n[0:N-1], d[0:D-1];
    sent[n] = sigmoid(sum[d](w[d]*art[n][d]));
}
market_signal(input float sent[N], output float sig) {
    index n[0:N-1];
    sig = sum[n](sent[n]) / N;
}
black_scholes(input float s[M], input float strike[M], input float t[M],
              input float sig, param float rate, param float vol,
              output float price[M]) {
    index i[0:M-1];
    float va, d1[M], d2[M], nd1[M], nd2[M];
    va = vol*(1 + (sig - 1/2));
    d1[i] = (ln(s[i]/strike[i]) + (rate + va*va/2)*t[i]) / (va*sqrt(t[i]));
    d2[i] = d1[i] - va*sqrt(t[i]);
    nd1[i] = (1 + erf(d1[i]/sqrt(2)))/2;
    nd2[i] = (1 + erf(d2[i]/sqrt(2)))/2;
    price[i] = s[i]*nd1[i] - strike[i]*exp(-rate*t[i])*nd2[i];
}
main(state float art[16][64], state float w_sent[64],
     input float s[32], input float strike[32], input float t[32],
     param float rate, param float vol, output float price[32]) {
    float sent[16], sig;
    DA: sentiment_infer(art, w_sent, sent);
    DA: market_signal(sent, sig);
    DA: black_scholes(s, strike, t, sig, rate, vol, price);
}
)";

} // namespace

int
main()
{
    // --- functional run vs. the closed-form reference -------------------
    auto graph = ir::compileToSrdfg(kSmallApp);
    Rng rng(7);
    Tensor art(DType::Float, Shape{16, 64});
    Tensor w(DType::Float, Shape{64});
    for (int64_t i = 0; i < art.numel(); ++i)
        art.at(i) = rng.gaussian();
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) = rng.gaussian() * 0.1;
    auto options = wl::optionBatch(32, 11);

    auto out = interp::evaluate(
        *graph, {{"art", art},
                 {"w_sent", w},
                 {"s", options.spot},
                 {"strike", options.strike},
                 {"t", options.expiry},
                 {"rate", Tensor::scalar(0.03)},
                 {"vol", Tensor::scalar(0.2)}});

    // Reference: same sentiment -> adjusted vol -> closed form.
    double sig = 0.0;
    for (int64_t n = 0; n < 16; ++n) {
        double dot = 0.0;
        for (int64_t d = 0; d < 64; ++d)
            dot += w.at(d) * art.at({n, d});
        sig += 1.0 / (1.0 + std::exp(-dot));
    }
    sig /= 16.0;
    const double va = 0.2 * (1.0 + (sig - 0.5));
    const Tensor expected = wl::ref::blackScholes(
        options.spot, options.strike, options.expiry, 0.03, va);
    std::printf("max |price - reference| = %.3e over 32 options "
                "(market signal %.4f)\n",
                Tensor::maxAbsDiff(out.at("price"), expected), sig);

    // --- Table IV configuration on the SoC -------------------------------
    const auto &app = wl::tableIV().back(); // OptionPricing
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(app.source, app.buildOpts,
                                               registry,
                                               lang::Domain::None);
    std::printf("\npartitions (note the two DA accelerators):\n");
    for (const auto &partition : compiled.partitions) {
        std::printf("  %-13s %zu fragments\n", partition.accel.c_str(),
                    partition.fragments.size());
    }

    soc::SocRuntime runtime;
    std::map<std::string, double> host_eff;
    for (const auto &kernel : app.kernels)
        host_eff[kernel.accel] = kernel.cpuEff;
    const auto cpu_only =
        runtime.execute(compiled, app.profile, {"<none>"}, host_eff);
    for (const auto &combo :
         {std::set<std::string>{"TABLA"},
          std::set<std::string>{"HyperStreams"},
          std::set<std::string>{"TABLA", "HyperStreams"}}) {
        const auto result =
            runtime.execute(compiled, app.profile, combo, host_eff);
        std::string label;
        for (const auto &name : combo)
            label += (label.empty() ? "" : "+") + name;
        std::printf("accelerating %-20s -> %.2fx runtime, %.2fx energy\n",
                    label.c_str(),
                    target::speedup(cpu_only.total, result.total),
                    target::energyReduction(cpu_only.total, result.total));
    }
    return 0;
}
