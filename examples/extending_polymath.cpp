/**
 * @file
 * Extending PolyMath with a new accelerator — the paper's fourth claim:
 * the stack is modular enough that the community can add targets without
 * touching the compiler.
 *
 * This example defines a toy systolic GEMM ASIC ("Systolic256"), registers
 * it for the Data Analytics domain with `mvmul` as its preferred
 * component, and compiles a program containing matrix-vector products plus
 * element-wise post-processing. Algorithm 1 keeps `mvmul` at component
 * granularity for the new target while the remaining statements lower to
 * TABLA's single-op dataflow — two accelerators sharing one domain, chosen
 * per kernel, with no change to Algorithms 1/2.
 */
#include <cstdio>

#include "soc/soc.h"
#include "srdfg/builder.h"
#include "workloads/suite.h"

using namespace polymath;

namespace {

/** A 64x64 weight-stationary systolic array at 800 MHz. */
class Systolic256 : public target::Backend
{
  public:
    Systolic256() : Backend(systolicConfig()) {}

    std::string name() const override { return "Systolic256"; }
    lang::Domain domain() const override { return lang::Domain::DA; }

    static target::MachineConfig systolicConfig()
    {
        target::MachineConfig m;
        m.name = "Systolic256";
        m.freqGhz = 0.8;
        m.watts = 2.2;
        m.computeUnits = 4096; // 64x64 MACs
        m.flopsPerUnitCycle = 2; // MACs
        m.dramGBs = 25.6;
        m.onChipBytes = 2ll * 1024 * 1024;
        m.launchOverheadUs = 0.5;
        return m;
    }

    lower::AcceleratorSpec spec() const override
    {
        lower::AcceleratorSpec s;
        s.name = name();
        s.domain = domain();
        // The whole point: this target consumes matvecs *whole*. The
        // srDFG's recursive granularity means no new compiler code is
        // needed for that — Algorithm 1 simply does not splice them.
        const ir::Op mvmul = ir::Op::intern("mvmul");
        s.supportedOps = {mvmul, ir::OpCode::Const, ir::OpCode::Identity};
        s.preferredComponents = {mvmul};
        s.translators[mvmul] = [](const ir::Graph &g,
                                  const ir::Node &n) {
            auto frag = lower::genericTranslate(g, n);
            frag.opcode = "systolic/gemv";
            return frag;
        };
        return s;
    }

    target::PerfReport simulateImpl(
        const lower::Partition &partition,
        const target::WorkloadProfile &profile) const override
    {
        const auto m = machine();
        target::PerfReport r;
        r.machine = name();
        // Weight-stationary wavefront: rows stream through the array.
        double cycles = 0.0;
        for (const auto &frag : partition.fragments) {
            if (frag.opcode != "systolic/gemv")
                continue;
            cycles += static_cast<double>(frag.flops) /
                          (2.0 * static_cast<double>(m.computeUnits)) +
                      32.0; // array fill
        }
        const double inv = static_cast<double>(profile.invocations);
        r.computeSeconds = cycles / (m.freqGhz * 1e9) * inv;
        const auto dma = target::dmaBreakdown(partition);
        r.dramBytes =
            dma.oneTimeBytes +
            static_cast<int64_t>(static_cast<double>(dma.perRunBytes) *
                                 inv);
        r.memorySeconds =
            static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);
        r.seconds = std::max(r.computeSeconds, r.memorySeconds);
        r.flops = static_cast<int64_t>(
            static_cast<double>(partition.flops()) * inv);
        r.joules = m.watts * r.seconds;
        return r;
    }
};

const char *const kProgram = R"(
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
main(param float A[1024][1024], input float x[1024],
     param float bias[1024], output float y[1024]) {
    index j[0:1023];
    float t[1024];
    DA: mvmul(A, x, t);
    y[j] = sigmoid(t[j] + bias[j]);
}
)";

} // namespace

int
main()
{
    // 1. Standard registry + the new target. Registration order matters
    //    only for domain defaults; Systolic256 is selected through its
    //    preferred component.
    auto backends = target::standardBackends();
    backends.push_back(std::make_unique<Systolic256>());
    lower::AcceleratorRegistry registry;
    for (const auto &backend : backends)
        registry.add(backend->spec());

    // 2. Compile: same Algorithms 1/2, zero new compiler code.
    const auto compiled = wl::compileBenchmark(kProgram, {}, registry,
                                               lang::Domain::DA);
    std::printf("partitions:\n");
    for (const auto &partition : compiled.partitions) {
        std::printf("  %-12s %zu fragments\n", partition.accel.c_str(),
                    partition.fragments.size());
        for (const auto &frag : partition.fragments) {
            if (frag.opcode.rfind("systolic", 0) == 0)
                std::printf("    %s\n", frag.str().c_str());
        }
    }

    // 3. Simulate the heterogeneous schedule on the SoC.
    soc::SocRuntime runtime(std::move(backends), target::socConfig());
    target::WorkloadProfile profile;
    profile.invocations = 2000;
    const auto with_new = runtime.execute(compiled, profile);

    // Baseline: the same program with everything on TABLA (no Systolic256
    // registered).
    const auto tabla_only = wl::compileBenchmark(
        kProgram, {}, target::standardRegistry(), lang::Domain::DA);
    soc::SocRuntime standard;
    const auto without = standard.execute(tabla_only, profile);

    std::printf("\nTABLA-only        : %s\n", without.total.str().c_str());
    std::printf("with Systolic256  : %s\n", with_new.total.str().c_str());
    std::printf("adding the accelerator bought %.2fx runtime, %.2fx "
                "energy\n",
                target::speedup(without.total, with_new.total),
                target::energyReduction(without.total, with_new.total));
    return 0;
}
