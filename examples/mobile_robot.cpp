/**
 * @file
 * Fig. 3/4 of the paper: MPC trajectory tracking for a two-wheeled robot.
 * Runs the Fig. 4 PMLang program in a closed loop against a simple unicycle
 * plant model, checks every step against the native reference, and shows
 * the srDFG's recursive granularity plus the RoboX compilation.
 */
#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "interp/interpreter.h"
#include "srdfg/builder.h"
#include "srdfg/expand.h"
#include "srdfg/printer.h"
#include "srdfg/traversal.h"
#include "workloads/reference.h"
#include "workloads/suite.h"

using namespace polymath;

int
main()
{
    const auto &bench = wl::benchmarkById("MobileRobot");
    auto graph = wl::buildGraph(bench.source, bench.buildOpts);

    std::printf("=== srDFG recursion ===\n");
    std::printf("depth %d; top level:\n", ir::recursionDepth(*graph));
    ir::PrintOptions opts;
    opts.maxDepth = 1;
    std::printf("%s\n", ir::printGraph(*graph, opts).c_str());

    // Demonstrate simultaneous granularity access: expand one reduce node
    // of the innermost mvmul into its scalar-level srDFG (Fig. 5 (5)).
    ir::forEachNodeRecursive(
        static_cast<const ir::Graph &>(*graph),
        [&](const ir::Graph &level, const ir::Node &node) {
            static bool shown = false;
            if (shown || node.kind != ir::NodeKind::Reduce)
                return;
            shown = true;
            auto scalar = ir::materializeScalar(level, node);
            std::printf("one '%s' group node expands into %lld scalar "
                        "nodes at the finest granularity\n\n",
                        node.op.str().c_str(),
                        static_cast<long long>(scalar->liveNodeCount()));
        });

    // --- closed-loop tracking vs. the native reference -------------------
    Rng rng(3);
    auto random_matrix = [&](Shape shape, double scale) {
        Tensor t(DType::Float, shape);
        for (int64_t i = 0; i < t.numel(); ++i)
            t.at(i) = rng.gaussian() * scale;
        return t;
    };
    const Tensor p = random_matrix(Shape{30, 3}, 0.2);
    const Tensor h = random_matrix(Shape{30, 20}, 0.1);
    const Tensor hq = random_matrix(Shape{20, 30}, 0.05);
    const Tensor rg = random_matrix(Shape{20, 20}, 0.05);
    Tensor pos_ref(DType::Float, Shape{30});
    for (int64_t i = 0; i < 30; ++i)
        pos_ref.at(i) = std::sin(0.2 * static_cast<double>(i));

    interp::Interpreter mpc(*graph);
    mpc.setInput("P", p);
    mpc.setInput("H", h);
    mpc.setInput("HQ_g", hq);
    mpc.setInput("R_g", rg);
    mpc.setInput("pos_ref", pos_ref);
    mpc.setInput("ctrl_mdl", Tensor(DType::Float, Shape{20}));

    Tensor ref_ctrl(DType::Float, Shape{20});
    double x = 0.0, y = 0.0, theta = 0.1;
    double worst = 0.0;
    for (int step = 0; step < 20; ++step) {
        Tensor pos = Tensor::vec({x, y, theta});
        mpc.setInput("pos", pos);
        mpc.run();
        const Tensor &sgnl = mpc.output("ctrl_sgnl");

        const auto expect =
            wl::ref::mpcStep(pos, ref_ctrl, pos_ref, p, hq, h, rg, 10);
        worst = std::max(worst,
                         Tensor::maxAbsDiff(sgnl, expect.ctrlSgnl));
        ref_ctrl = expect.ctrlMdl;

        // Unicycle plant: v = sgnl[0], omega = sgnl[1].
        const double v = sgnl.at(int64_t{0});
        const double omega = sgnl.at(int64_t{1});
        x += 0.1 * v * std::cos(theta);
        y += 0.1 * v * std::sin(theta);
        theta += 0.1 * omega;
        if (step % 5 == 0) {
            std::printf("step %2d: pos=(%.3f, %.3f, %.3f) ctrl=(%.3f, "
                        "%.3f)\n",
                        step, x, y, theta, v, omega);
        }
    }
    std::printf("max |PMLang - reference| over 20 steps: %.3e\n\n", worst);

    // --- RoboX compilation ----------------------------------------------
    const auto registry = target::standardRegistry();
    const auto compiled = wl::compileBenchmark(bench.source, bench.buildOpts,
                                               registry, bench.domain);
    std::printf("RoboX macro-DFG (%zu fragments):\n",
                compiled.partitions.front().fragments.size());
    int shown = 0;
    for (const auto &frag : compiled.partitions.front().fragments) {
        if (shown++ == 8) {
            std::printf("  ...\n");
            break;
        }
        std::printf("  %s\n", frag.str().c_str());
    }
    return 0;
}
