// European call pricing; compiles whole onto the HyperStreams pipeline.
black_scholes(input float s[N], input float strike[N], input float t[N],
              param float rate, param float vol, output float price[N]) {
    index i[0:N-1];
    float d1[N], d2[N], nd1[N], nd2[N];
    d1[i] = (ln(s[i]/strike[i]) + (rate + vol*vol/2)*t[i])
          / (vol*sqrt(t[i]));
    d2[i] = d1[i] - vol*sqrt(t[i]);
    nd1[i] = (1 + erf(d1[i]/sqrt(2)))/2;
    nd2[i] = (1 + erf(d2[i]/sqrt(2)))/2;
    price[i] = s[i]*nd1[i] - strike[i]*exp(-rate*t[i])*nd2[i];
}
main(input float s[4096], input float strike[4096], input float t[4096],
     param float rate, param float vol, output float price[4096]) {
    DA: black_scholes(s, strike, t, rate, vol, price);
}
