// Fig. 4 of the paper: MPC trajectory tracking for a two-wheeled robot.
predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                   param float P[c][a], param float H[c][b],
                   output float pred[c]) {
    index i[0:a-1], j[0:b-1], k[0:c-1];
    pred[k] = sum[i](P[k][i]*pos[i]);
    pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
}
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
compute_ctrl_grad(input float pos_pred[c], input float ctrl_mdl[b],
                  param float pos_ref[c], param float HQ_g[b][c],
                  param float R_g[b][b], output float g[b]) {
    index i[0:b-1], j[0:c-1];
    float P_g[b], H_g[b], err[c];
    err[j] = pos_ref[j] - pos_pred[j];
    mvmul(HQ_g, err, P_g);
    mvmul(R_g, ctrl_mdl, H_g);
    g[i] = P_g[i] + H_g[i];
}
update_ctrl_model(input float ctrl_prev[b], input float g[b],
                  output float ctrl_mdl[b], output float ctrl_sgnl[s],
                  param int h) {
    index i[0:b-2], j[0:s-1];
    ctrl_sgnl[j] = ctrl_prev[h*j];
    ctrl_mdl[b-1] = 0;
    ctrl_mdl[i] = ctrl_prev[(i+1)] - g[(i+1)];
}
main(input float pos[3], state float ctrl_mdl[20],
     param float pos_ref[30], param float P[30][3],
     param float HQ_g[20][30], param float H[30][20],
     param float R_g[20][20], output float ctrl_sgnl[2]) {
    float pos_pred[30], g[20];
    RBT: predict_trajectory(pos, ctrl_mdl, P, H, pos_pred);
    RBT: compute_ctrl_grad(pos_pred, ctrl_mdl, pos_ref, HQ_g, R_g, g);
    RBT: update_ctrl_model(ctrl_mdl, g, ctrl_mdl, ctrl_sgnl, 10);
}
