// Fig. 6 of the paper: BFS as an iterative min-plus vertex program.
// The host invokes main until dist stops changing.
reduction minplus(a, b) = a < b ? a : b;
process(input float adj[n][n], input float dist[n], output float cand[n]) {
    index u[0:n-1], v[0:n-1];
    cand[v] = minplus[u](adj[u][v] > 0 ? dist[u] + 1 : 1000000000);
}
apply(input float cand[n], input float dist_in[n],
      output float dist_out[n]) {
    index v[0:n-1];
    dist_out[v] = cand[v] < dist_in[v] ? cand[v] : dist_in[v];
}
main(input float adj[64][64], state float dist[64]) {
    float cand[64];
    GA: process(adj, dist, cand);
    GA: apply(cand, dist, dist);
}
