// Table IV BrainStimul: DSP -> DA -> RBT in one program (program
// of record, emitted by wl::brainStimulProgram).
bit_reverse_4096(input complex x[n], output complex y[n]) {
    index i[0:n-1];
    y[i] = x[((i/1)%2)*2048 + ((i/2)%2)*1024 + ((i/4)%2)*512 + ((i/8)%2)*256 + ((i/16)%2)*128 + ((i/32)%2)*64 + ((i/64)%2)*32 + ((i/128)%2)*16 + ((i/256)%2)*8 + ((i/512)%2)*4 + ((i/1024)%2)*2 + ((i/2048)%2)*1];
}
fft_stage(input complex x[n], param complex tw[h],
          param int s, output complex y[n]) {
    index k[0:h-1];
    y[(k/s)*(2*s) + (k%s)] = x[(k/s)*(2*s) + (k%s)]
        + tw[(k%s)*(h/s)] * x[(k/s)*(2*s) + (k%s) + s];
    y[(k/s)*(2*s) + (k%s) + s] = x[(k/s)*(2*s) + (k%s)]
        - tw[(k%s)*(h/s)] * x[(k/s)*(2*s) + (k%s) + s];
}
power_spectrum(input complex spec[n], output float p[n]) {
    index i[0:n-1];
    p[i] = re(spec[i]*conj(spec[i]));
}
logreg_infer(input float x[D], state float w[D], output float y) {
    index d[0:D-1];
    y = sigmoid(sum[d](w[d]*x[d]));
}
scale_reference(param float ref[c], input float marker,
                output float sref[c]) {
    index k[0:c-1];
    sref[k] = ref[k]*marker;
}
predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                   param float P[c][a], param float H[c][b],
                   output float pred[c]) {
    index i[0:a-1], j[0:b-1], k[0:c-1];
    pred[k] = sum[i](P[k][i]*pos[i]);
    pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
}
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
compute_ctrl_grad(input float pos_pred[c], input float ctrl_mdl[b],
                  input float pos_ref[c], param float HQ_g[b][c],
                  param float R_g[b][b], output float g[b]) {
    index i[0:b-1], j[0:c-1];
    float P_g[b], H_g[b], err[c];
    err[j] = pos_ref[j] - pos_pred[j];
    mvmul(HQ_g, err, P_g);
    mvmul(R_g, ctrl_mdl, H_g);
    g[i] = P_g[i] + H_g[i];
}
update_ctrl_model(input float ctrl_prev[b], input float g[b],
                  output float ctrl_mdl[b], output float ctrl_sgnl[s],
                  param int h) {
    index i[0:b-2], j[0:s-1];
    ctrl_sgnl[j] = ctrl_prev[h*j];
    ctrl_mdl[b-1] = 0;
    ctrl_mdl[i] = ctrl_prev[(i+1)] - g[(i+1)];
}
main(input complex ecog[4096], param complex tw[2048],
     state float w_cls[4096], input float pos[3],
     state float ctrl_mdl[80], param float pos_ref[120],
     param float P[120][3], param float HQ_g[80][120],
     param float H[120][80], param float R_g[80][80],
     output float stim_sgnl[2], output float biomarker) {
    complex spec[4096];
    float power[4096], sref[120], pos_pred[120], g[80];
    complex t0[4096], t1[4096], t2[4096], t3[4096], t4[4096], t5[4096], t6[4096], t7[4096], t8[4096], t9[4096], t10[4096], t11[4096];
    DSP: bit_reverse_4096(ecog, t0);
    DSP: fft_stage(t0, tw, 1, t1);
    DSP: fft_stage(t1, tw, 2, t2);
    DSP: fft_stage(t2, tw, 4, t3);
    DSP: fft_stage(t3, tw, 8, t4);
    DSP: fft_stage(t4, tw, 16, t5);
    DSP: fft_stage(t5, tw, 32, t6);
    DSP: fft_stage(t6, tw, 64, t7);
    DSP: fft_stage(t7, tw, 128, t8);
    DSP: fft_stage(t8, tw, 256, t9);
    DSP: fft_stage(t9, tw, 512, t10);
    DSP: fft_stage(t10, tw, 1024, t11);
    DSP: fft_stage(t11, tw, 2048, spec);
    DSP: power_spectrum(spec, power);
    DA: logreg_infer(power, w_cls, biomarker);
    RBT: scale_reference(pos_ref, biomarker, sref);
    RBT: predict_trajectory(pos, ctrl_mdl, P, H, pos_pred);
    RBT: compute_ctrl_grad(pos_pred, ctrl_mdl, sref, HQ_g, R_g, g);
    RBT: update_ctrl_model(ctrl_mdl, g, ctrl_mdl, stim_sgnl, 40);
}
