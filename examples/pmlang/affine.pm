// y = A x + b: the quickstart program as a standalone PMLang file.
affine(input float A[m][n], input float x[n], param float b[m],
       output float y[m]) {
    index i[0:n-1], j[0:m-1];
    y[j] = sum[i](A[j][i]*x[i]) + b[j];
}
main(input float A[4][3], input float x[3], param float b[4],
     output float y[4]) {
    DA: affine(A, x, b, y);
}
