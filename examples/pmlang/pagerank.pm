// PageRank power iteration (extension workload): one damped
// iteration per invocation; rank/out-degrees persist as state.
pr_iter(input float adj[n][n], state float outdeg[n],
        state float rank[n], param float damp) {
    index u[0:n-1], v[0:n-1];
    float contrib[n];
    contrib[v] = sum[u](adj[u][v] > 0 ? rank[u]/outdeg[u] : 0);
    rank[v] = (1 - damp)/n + damp*contrib[v];
}
main(input float adj[64][64], state float outdeg[64],
     state float rank[64], param float damp) {
    GA: pr_iter(adj, outdeg, rank, damp);
}
