/**
 * @file
 * Searchable design spaces over accelerator machine configurations
 * (docs/DSE.md).
 *
 * A ConfigSpace is the cartesian product of a few multiplicative axes
 * around a backend's Table VI factory config: compute units, clock
 * frequency, DRAM bandwidth, and — where the cost model exposes one — a
 * backend-specific microarchitecture knob (TABLA's operand-bus width,
 * Graphicionado's atomic-update banks). Points are addressed by a dense
 * mixed-radix index, so a space is enumerable, sampleable, and has a
 * well-defined neighborhood structure for local refinement.
 *
 * Power is *derived*, not a free axis: watts scale with the unit count,
 * quadratically with frequency, and mildly with bandwidth and knob area.
 * A free watts axis would make the Pareto front degenerate (the lowest
 * wattage trivially dominates perf-per-watt); deriving it keeps the
 * runtime/efficiency trade-off real. Every scale is exactly 1.0 at the
 * base point, so machineAt(baseIndex()) is byte-identical to the factory
 * config — the baseline row of every study is the shipped Table VI
 * machine, not a rounded cousin.
 */
#ifndef POLYMATH_DSE_CONFIG_SPACE_H_
#define POLYMATH_DSE_CONFIG_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "targets/common/machine_config.h"

namespace polymath::dse {

/** One multiplicative search axis. */
struct Axis
{
    std::string name;           ///< "units", "freq", "dram", "bus", "banks"
    std::vector<double> scales; ///< factors on the base config's value
};

/** The indexed design space of one backend. */
class ConfigSpace
{
  public:
    enum class Kind
    {
        Small, ///< units x freq — 6 points, the CI/bench grid
        Full,  ///< units x freq x dram x knob — the pmdse default
    };

    /** @throws UserError on anything but "small"|"full". */
    static Kind kindFromString(const std::string &word);
    static const char *toString(Kind kind);

    /** True when @p backend names one of the six searchable DSA
     *  backends (the target::makeBackend vocabulary). */
    static bool searchable(const std::string &backend);

    /** The design space around @p backend's factory config.
     *  @throws UserError on an unknown backend name. */
    static ConfigSpace forBackend(const std::string &backend, Kind kind);

    const std::string &backend() const { return backend_; }
    Kind kind() const { return kind_; }
    const target::MachineConfig &base() const { return base_; }
    const std::vector<Axis> &axes() const { return axes_; }

    /** Number of points (product of axis cardinalities). */
    int64_t size() const;

    /** Index of the all-scales-1.0 point (the factory config). */
    int64_t baseIndex() const;

    /** Mixed-radix decomposition of @p index (one digit per axis). */
    std::vector<int> coords(int64_t index) const;

    /** The machine at @p index: base config with the axis scales
     *  applied and derived power, validated. @throws UserError when the
     *  index is out of range. */
    target::MachineConfig machineAt(int64_t index) const;

    /** Human-readable point label, e.g. "units x2 freq x1.25". */
    std::string label(int64_t index) const;

    /** Indices one axis step away from @p index (the +-1 moves along
     *  every axis), ascending. */
    std::vector<int64_t> neighbors(int64_t index) const;

  private:
    std::string backend_;
    Kind kind_ = Kind::Small;
    target::MachineConfig base_;
    std::vector<Axis> axes_;
};

} // namespace polymath::dse

#endif // POLYMATH_DSE_CONFIG_SPACE_H_
