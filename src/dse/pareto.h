/**
 * @file
 * Pareto-front extraction over the autotuner's two objectives: runtime
 * (seconds, minimized) and efficiency (performance per watt, maximized).
 * A config is on the front iff no other config is at least as good on
 * both objectives and strictly better on one. Exact ties — equal on
 * both objectives — do not dominate each other, so tied configs are all
 * kept: a front of interchangeable designs is information, not noise.
 */
#ifndef POLYMATH_DSE_PARETO_H_
#define POLYMATH_DSE_PARETO_H_

#include <cstddef>
#include <vector>

namespace polymath::dse {

/** One candidate's objective values. */
struct Objective
{
    double seconds = 0.0;     ///< minimized
    double perfPerWatt = 0.0; ///< maximized
};

/** True when @p a dominates @p b: no worse on both objectives and
 *  strictly better on at least one. */
bool dominates(const Objective &a, const Objective &b);

/**
 * Positions of the non-dominated points of @p points, ascending (input
 * order preserved). O(n^2) pairwise dominance — the autotuner evaluates
 * at most a few hundred configs per workload, so simplicity wins over
 * a sort-and-sweep.
 */
std::vector<size_t> paretoFront(const std::vector<Objective> &points);

} // namespace polymath::dse

#endif // POLYMATH_DSE_PARETO_H_
