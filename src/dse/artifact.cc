#include "dse/artifact.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "core/error.h"
#include "core/json.h"

namespace polymath::dse {

namespace {

std::string
pointJson(const DsePoint &p)
{
    std::string doc = "{\"index\":" + std::to_string(p.index);
    doc += ",\"label\":" + json::quote(p.label);
    doc += ",\"seconds\":" + json::numberToJson(p.seconds);
    doc += ",\"joules\":" + json::numberToJson(p.joules);
    doc += ",\"perfPerWatt\":" + json::numberToJson(p.perfPerWatt);
    doc += ",\"computeSeconds\":" + json::numberToJson(p.computeSeconds);
    doc += ",\"dmaSeconds\":" + json::numberToJson(p.dmaSeconds);
    doc +=
        ",\"overheadSeconds\":" + json::numberToJson(p.overheadSeconds);
    doc += ",\"dominantPhase\":" + json::quote(p.dominantPhase);
    doc += ",\"topCost\":" + json::quote(p.topCost);
    doc += "}";
    return doc;
}

DsePoint
pointFromJson(const json::Value &v)
{
    DsePoint p;
    p.index = v.at("index").asInt();
    p.label = v.at("label").str();
    p.seconds = json::numberFromJson(v.at("seconds"));
    p.joules = json::numberFromJson(v.at("joules"));
    p.perfPerWatt = json::numberFromJson(v.at("perfPerWatt"));
    p.computeSeconds = json::numberFromJson(v.at("computeSeconds"));
    p.dmaSeconds = json::numberFromJson(v.at("dmaSeconds"));
    p.overheadSeconds = json::numberFromJson(v.at("overheadSeconds"));
    p.dominantPhase = v.at("dominantPhase").str();
    p.topCost = v.at("topCost").str();
    return p;
}

DsePoint
toPoint(const EvalPoint &e)
{
    DsePoint p;
    p.index = e.index;
    p.label = e.label;
    p.seconds = e.seconds;
    p.joules = e.joules;
    p.perfPerWatt = e.perfPerWatt;
    p.computeSeconds = e.computeSeconds;
    p.dmaSeconds = e.dmaSeconds;
    p.overheadSeconds = e.overheadSeconds;
    p.dominantPhase = e.dominantPhase;
    p.topCost = e.topCost;
    return p;
}

} // namespace

DseStudy
toStudy(const WorkloadStudy &study)
{
    DseStudy out;
    out.id = study.workload;
    out.backend = study.backend;
    out.spaceSize = study.spaceSize;
    out.evaluated = study.evaluated();
    out.baseline = toPoint(study.baseline());
    out.best = toPoint(study.best());
    out.front.reserve(study.front.size());
    for (const size_t pos : study.front)
        out.front.push_back(toPoint(study.points[pos]));
    return out;
}

std::string
DseArtifact::json() const
{
    std::string doc = "{\"schema\":";
    doc += json::quote(kSchema);
    doc += ",\"name\":" + json::quote(name);
    doc += ",\"git\":" + json::quote(git);
    doc += ",\"config\":" + json::quote(config);
    doc += ",\"space\":" + json::quote(space);
    doc += ",\"search\":" + json::quote(search);
    // Seeds are full uint64s; same decimal-string convention as the
    // service protocol.
    doc += ",\"seed\":" + json::quote(std::to_string(seed));
    doc += ",\"samples\":" + std::to_string(samples);
    doc += ",\"rounds\":" + std::to_string(rounds);
    doc += ",\"workloads\":[";
    bool first_study = true;
    for (const auto &study : workloads) {
        if (!first_study)
            doc += ",";
        first_study = false;
        doc += "{\"id\":" + json::quote(study.id);
        doc += ",\"backend\":" + json::quote(study.backend);
        doc += ",\"spaceSize\":" + std::to_string(study.spaceSize);
        doc += ",\"evaluated\":" + std::to_string(study.evaluated);
        doc += ",\"baseline\":" + pointJson(study.baseline);
        doc += ",\"best\":" + pointJson(study.best);
        doc += ",\"front\":[";
        bool first_point = true;
        for (const auto &point : study.front) {
            if (!first_point)
                doc += ",";
            first_point = false;
            doc += pointJson(point);
        }
        doc += "]}";
    }
    doc += "]}\n";
    return doc;
}

DseArtifact
DseArtifact::fromJson(const std::string &text)
{
    const json::Value doc = json::parse(text);
    const std::string schema = doc.at("schema").str();
    if (schema != kSchema)
        fatal("dse artifact: unsupported schema '" + schema +
              "' (this build reads " + kSchema + ")");
    DseArtifact artifact;
    artifact.name = doc.at("name").str();
    artifact.git = doc.at("git").str();
    artifact.config = doc.at("config").str();
    artifact.space = doc.at("space").str();
    artifact.search = doc.at("search").str();
    {
        const std::string seed = doc.at("seed").str();
        uint64_t value = 0;
        const char *begin = seed.data();
        const char *end = begin + seed.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc{} || ptr != end)
            fatal("dse artifact: field 'seed' must be a decimal "
                  "unsigned integer string (got '" +
                  seed + "')");
        artifact.seed = value;
    }
    artifact.samples = doc.at("samples").asInt();
    artifact.rounds = doc.at("rounds").asInt();
    for (const auto &entry : doc.at("workloads").arr()) {
        DseStudy study;
        study.id = entry.at("id").str();
        study.backend = entry.at("backend").str();
        study.spaceSize = entry.at("spaceSize").asInt();
        study.evaluated = entry.at("evaluated").asInt();
        study.baseline = pointFromJson(entry.at("baseline"));
        study.best = pointFromJson(entry.at("best"));
        for (const auto &point : entry.at("front").arr())
            study.front.push_back(pointFromJson(point));
        artifact.workloads.push_back(std::move(study));
    }
    return artifact;
}

void
DseArtifact::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '" + path + "' for writing");
    out << json();
    if (!out)
        fatal("failed writing '" + path + "'");
}

DseArtifact
DseArtifact::read(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromJson(buffer.str());
}

report::BenchArtifact
DseArtifact::toBenchArtifact() const
{
    report::BenchArtifact bench;
    bench.name = name;
    bench.git = git;
    bench.config = config;
    bench.jobs = 1; // the DSE artifact is jobs-independent by contract
    for (const auto &study : workloads) {
        bench.add(study.id, "front_size",
                  static_cast<double>(study.front.size()));
        bench.add(study.id, "evaluated",
                  static_cast<double>(study.evaluated));
        bench.add(study.id, "baseline_seconds", study.baseline.seconds);
        bench.add(study.id, "best_seconds", study.best.seconds);
        bench.add(study.id, "best_joules", study.best.joules);
        bench.add(study.id, "best_perf_per_watt",
                  study.best.perfPerWatt);
        bench.add(study.id, "speedup",
                  study.best.seconds > 0.0
                      ? study.baseline.seconds / study.best.seconds
                      : 0.0);
        bench.add(study.id, "ppw_gain",
                  study.baseline.perfPerWatt > 0.0
                      ? study.best.perfPerWatt /
                            study.baseline.perfPerWatt
                      : 0.0);
    }
    return bench;
}

} // namespace polymath::dse
