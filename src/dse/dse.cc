#include "dse/dse.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/error.h"
#include "core/rng.h"
#include "core/strings.h"
#include "core/thread_pool.h"
#include "dse/pareto.h"
#include "report/report.h"
#include "targets/common/cost_ledger.h"

namespace polymath::dse {

SearchOptions::Driver
SearchOptions::driverFromString(const std::string &word)
{
    if (word == "auto") return Driver::Auto;
    if (word == "grid") return Driver::Grid;
    if (word == "random") return Driver::Random;
    fatal("dse: unknown search driver '" + word +
          "' (expected auto|grid|random)");
}

const char *
SearchOptions::toString(Driver driver)
{
    switch (driver) {
      case Driver::Auto: return "auto";
      case Driver::Grid: return "grid";
      case Driver::Random: return "random";
    }
    return "?";
}

double
WorkloadStudy::bestSpeedup() const
{
    const double b = best().seconds;
    return b > 0.0 ? baseline().seconds / b : 0.0;
}

double
WorkloadStudy::bestPpwGain() const
{
    const double b = baseline().perfPerWatt;
    return b > 0.0 ? best().perfPerWatt / b : 0.0;
}

namespace {

/** Simulates @p partitions at one space point and attributes phases. */
EvalPoint
evaluatePoint(const ConfigSpace &space, int64_t index,
              const std::vector<const lower::Partition *> &partitions,
              const target::WorkloadProfile &profile)
{
    const auto backend =
        target::makeBackend(space.backend(), space.machineAt(index));
    target::PerfReport total;
    bool first = true;
    for (const lower::Partition *partition : partitions) {
        auto report = backend->simulate(*partition, profile);
        if (first) {
            total = std::move(report);
            first = false;
        } else {
            total += report;
        }
    }

    EvalPoint point;
    point.index = index;
    point.label = space.label(index);
    point.seconds = total.seconds;
    point.joules = total.joules;
    point.perfPerWatt = total.joules > 0.0
                            ? static_cast<double>(total.flops) /
                                  total.joules
                            : 0.0;
    if (total.ledger) {
        const target::CostEntry *top = nullptr;
        for (const auto &entry : total.ledger->entries) {
            if (entry.phase == "compute")
                point.computeSeconds += entry.seconds;
            else if (entry.phase == "dma")
                point.dmaSeconds += entry.seconds;
            else
                point.overheadSeconds += entry.seconds;
            if (!top || entry.seconds > top->seconds)
                top = &entry;
        }
        // Fixed comparison order makes phase ties deterministic.
        point.dominantPhase = "compute";
        double dominant = point.computeSeconds;
        if (point.dmaSeconds > dominant) {
            point.dominantPhase = "dma";
            dominant = point.dmaSeconds;
        }
        if (point.overheadSeconds > dominant)
            point.dominantPhase = "overhead";
        if (top)
            point.topCost = top->label;
    }
    return point;
}

/** Survivor ranking score for successive halving: the energy-delay
 *  product balances both objectives so neither extreme monopolizes the
 *  refinement budget. Ties break on the index for determinism. */
bool
scoreLess(const EvalPoint &a, const EvalPoint &b)
{
    const double sa = a.seconds * a.joules;
    const double sb = b.seconds * b.joules;
    if (sa != sb)
        return sa < sb;
    return a.index < b.index;
}

/** First random-driver round: @p count distinct indices drawn from a
 *  seeded Rng, always containing the base (factory) index. */
std::vector<int64_t>
sampleIndices(const ConfigSpace &space, int64_t count, uint64_t seed)
{
    std::set<int64_t> picked;
    picked.insert(space.baseIndex());
    Rng rng(seed);
    const int64_t n = space.size();
    const int64_t want = std::min(count, n);
    // Bounded rejection sampling: deterministic and cheap because the
    // budget is far below the space size in the regimes that use it.
    int64_t attempts = 0;
    while (static_cast<int64_t>(picked.size()) < want &&
           attempts < 64 * count)
    {
        picked.insert(rng.uniformInt(n));
        ++attempts;
    }
    return {picked.begin(), picked.end()};
}

} // namespace

std::vector<const lower::Partition *>
partitionsFor(const lower::CompiledProgram &program,
              const std::string &backend)
{
    std::vector<const lower::Partition *> out;
    for (const auto &partition : program.partitions) {
        if (partition.accel == backend)
            out.push_back(&partition);
    }
    return out;
}

WorkloadStudy
explore(const std::string &workload_id, const std::string &backend,
        const std::vector<const lower::Partition *> &partitions,
        const target::WorkloadProfile &profile,
        const SearchOptions &options)
{
    if (partitions.empty())
        fatal("dse: workload '" + workload_id +
              "' has no partitions compiled for backend '" + backend +
              "'");
    const ConfigSpace space =
        ConfigSpace::forBackend(backend, options.space);
    if (options.samples < 1)
        fatal("dse: samples must be positive");
    if (options.rounds < 1)
        fatal("dse: rounds must be positive");

    // Phase attribution needs cost ledgers; the switch is sticky and
    // process-wide, and all reports are byte-identical either way.
    target::setProfilingEnabled(true);

    auto driver = options.driver;
    if (driver == SearchOptions::Driver::Auto) {
        // Grid when the sampling budget would cover the space anyway.
        driver = space.size() <= options.samples
                     ? SearchOptions::Driver::Grid
                     : SearchOptions::Driver::Random;
    }

    WorkloadStudy study;
    study.workload = workload_id;
    study.backend = backend;
    study.spaceSize = space.size();

    std::set<int64_t> seen;
    std::map<int64_t, EvalPoint> evaluated;
    const auto evaluateRound = [&](const std::vector<int64_t> &indices) {
        auto results = core::parallelMap(
            options.jobs, static_cast<int64_t>(indices.size()),
            [&](int64_t i) {
                return evaluatePoint(space,
                                     indices[static_cast<size_t>(i)],
                                     partitions, profile);
            });
        for (auto &point : results) {
            seen.insert(point.index);
            evaluated.emplace(point.index, std::move(point));
        }
    };

    if (driver == SearchOptions::Driver::Grid) {
        std::vector<int64_t> all(static_cast<size_t>(space.size()));
        for (size_t i = 0; i < all.size(); ++i)
            all[i] = static_cast<int64_t>(i);
        evaluateRound(all);
    } else {
        // Seeded sampling, then successive halving: each round keeps
        // the best half (by energy-delay product) of everything seen so
        // far and explores the unvisited neighbors of the survivors.
        auto frontier =
            sampleIndices(space, options.samples, options.seed);
        for (int64_t round = 0; round < options.rounds; ++round) {
            if (frontier.empty())
                break;
            evaluateRound(frontier);
            if (round + 1 >= options.rounds)
                break;
            std::vector<const EvalPoint *> ranked;
            ranked.reserve(evaluated.size());
            for (const auto &[index, point] : evaluated)
                ranked.push_back(&point);
            std::sort(ranked.begin(), ranked.end(),
                      [](const EvalPoint *a, const EvalPoint *b) {
                          return scoreLess(*a, *b);
                      });
            const auto keep = static_cast<size_t>(std::max<int64_t>(
                2, options.samples >> (round + 1)));
            std::set<int64_t> next;
            for (size_t i = 0; i < ranked.size() && i < keep; ++i) {
                for (const int64_t n :
                     space.neighbors(ranked[i]->index))
                {
                    if (!seen.count(n))
                        next.insert(n);
                }
            }
            frontier.assign(next.begin(), next.end());
        }
    }

    study.points.reserve(evaluated.size());
    for (auto &[index, point] : evaluated)
        study.points.push_back(std::move(point));

    std::vector<Objective> objectives;
    objectives.reserve(study.points.size());
    for (const auto &point : study.points)
        objectives.push_back({point.seconds, point.perfPerWatt});
    study.front = paretoFront(objectives);
    std::sort(study.front.begin(), study.front.end(),
              [&](size_t a, size_t b) {
                  const auto &pa = study.points[a];
                  const auto &pb = study.points[b];
                  if (pa.seconds != pb.seconds)
                      return pa.seconds < pb.seconds;
                  return pa.index < pb.index;
              });

    const int64_t base_index = space.baseIndex();
    for (size_t i = 0; i < study.points.size(); ++i) {
        if (study.points[i].index == base_index)
            study.baselinePos = i;
    }

    // Best = the front point with the largest combined gain over the
    // factory config (speedup x perf-per-watt improvement); the product
    // rewards balanced wins over one-objective extremes.
    const EvalPoint &base = study.points[study.baselinePos];
    study.bestPos = study.baselinePos;
    double best_gain = 1.0;
    for (const size_t pos : study.front) {
        const EvalPoint &p = study.points[pos];
        if (p.seconds <= 0.0 || base.perfPerWatt <= 0.0)
            continue;
        const double gain = (base.seconds / p.seconds) *
                            (p.perfPerWatt / base.perfPerWatt);
        const EvalPoint &cur = study.points[study.bestPos];
        if (gain > best_gain ||
            (gain == best_gain && p.index < cur.index))
        {
            best_gain = gain;
            study.bestPos = pos;
        }
    }
    return study;
}

std::string
frontTable(const WorkloadStudy &study)
{
    std::string out = format(
        "%s on %s: %lld of %lld configs evaluated, Pareto front %zu\n",
        study.workload.c_str(), study.backend.c_str(),
        static_cast<long long>(study.evaluated()),
        static_cast<long long>(study.spaceSize), study.front.size());
    report::Table table({"", "Config", "Seconds", "Joules", "Perf/W",
                         "Bound", "Top cost"});
    for (const size_t pos : study.front) {
        const EvalPoint &p = study.points[pos];
        std::string mark;
        if (pos == study.bestPos)
            mark += '*';
        if (pos == study.baselinePos)
            mark += '=';
        table.addRow({mark, p.label, formatG(p.seconds, 4),
                      formatG(p.joules, 4), formatG(p.perfPerWatt, 4),
                      p.dominantPhase, p.topCost});
    }
    out += table.str();
    return out;
}

std::string
bestTable(const std::vector<WorkloadStudy> &studies)
{
    report::Table table({"Workload", "Backend", "Best config", "Speedup",
                         "Perf/W gain", "Bound", "Front", "Evaluated"});
    for (const auto &study : studies) {
        table.addRow({study.workload, study.backend, study.best().label,
                      report::times(study.bestSpeedup()),
                      report::times(study.bestPpwGain()),
                      study.best().dominantPhase,
                      std::to_string(study.front.size()),
                      std::to_string(study.evaluated())});
    }
    return table.str();
}

} // namespace polymath::dse
