/**
 * @file
 * The schema-versioned `polymath-dse/1` artifact: the autotuner's
 * machine-readable output, carrying the same provenance fields as
 * `polymath-bench/1` (schema, producing tool, git describe, build
 * config) plus the search identity (space, driver, seed, budget) and,
 * per workload, the baseline point, the chosen best point, and the full
 * Pareto front with phase attribution.
 *
 * Deliberately absent: a jobs field. The search is deterministic at any
 * evaluation fan-out, artifacts from `-j1` and `-j4` runs must be
 * byte-identical, and recording the jobs count would break exactly that
 * guarantee (tests/test_dse.cc pins it).
 *
 * toBenchArtifact() flattens the studies into `polymath-bench/1` rows so
 * the existing compareArtifacts tolerance machinery — and therefore
 * tools/bench_compare and the check.sh gate — consumes DSE results
 * without a parallel diffing stack.
 */
#ifndef POLYMATH_DSE_ARTIFACT_H_
#define POLYMATH_DSE_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "report/artifact.h"

namespace polymath::dse {

/** One serialized configuration point. */
struct DsePoint
{
    int64_t index = -1;
    std::string label;
    double seconds = 0.0;
    double joules = 0.0;
    double perfPerWatt = 0.0;
    double computeSeconds = 0.0;
    double dmaSeconds = 0.0;
    double overheadSeconds = 0.0;
    std::string dominantPhase;
    std::string topCost;
};

/** One workload's serialized study. */
struct DseStudy
{
    std::string id;
    std::string backend;
    int64_t spaceSize = 0;
    int64_t evaluated = 0;
    DsePoint baseline;
    DsePoint best;
    std::vector<DsePoint> front; ///< ascending (seconds, index)
};

/** The whole artifact. */
struct DseArtifact
{
    static constexpr const char *kSchema = "polymath-dse/1";

    /** Producing tool ("pmdse", "pmc", "pmcd"). */
    std::string name;

    // Provenance, mirroring report::BenchArtifact (minus jobs — see the
    // file comment).
    std::string git;
    std::string config;

    // Search identity: everything needed to reproduce the artifact.
    std::string space;  ///< "small" | "full"
    std::string search; ///< "auto" | "grid" | "random"
    uint64_t seed = 0;
    int64_t samples = 0;
    int64_t rounds = 0;

    std::vector<DseStudy> workloads;

    /** Serializes (locale-independent; workloads in insertion order,
     *  which callers keep deterministic). */
    std::string json() const;

    /** @throws UserError on malformed input or a foreign schema. */
    static DseArtifact fromJson(const std::string &text);

    /** json() to @p path; @throws UserError when unwritable. */
    void write(const std::string &path) const;

    /** fromJson over @p path's contents; @throws UserError. */
    static DseArtifact read(const std::string &path);

    /** Flattens to `polymath-bench/1` rows per workload: front_size,
     *  evaluated, baseline_seconds, best_seconds, best_joules,
     *  best_perf_per_watt, speedup, ppw_gain. */
    report::BenchArtifact toBenchArtifact() const;
};

/** Converts an in-memory study to its serialized form. */
DseStudy toStudy(const WorkloadStudy &study);

} // namespace polymath::dse

#endif // POLYMATH_DSE_ARTIFACT_H_
