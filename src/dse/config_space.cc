#include "dse/config_space.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/json.h"
#include "core/strings.h"

namespace polymath::dse {

namespace {

/** Factory config of one searchable backend; UserError on others. */
target::MachineConfig
baseConfigFor(const std::string &backend)
{
    if (backend == "RoboX") return target::roboxConfig();
    if (backend == "Graphicionado") return target::graphicionadoConfig();
    if (backend == "TABLA") return target::tablaConfig();
    if (backend == "DECO") return target::decoConfig();
    if (backend == "TVM-VTA") return target::vtaConfig();
    if (backend == "HyperStreams") return target::hyperstreamsConfig();
    fatal("dse: no design space for backend '" + backend +
          "' (searchable: RoboX|Graphicionado|TABLA|DECO|TVM-VTA|"
          "HyperStreams)");
}

/** Scaled integer knob, floored at 1 so rounding can never produce a
 *  degenerate machine. scale == 1.0 returns @p base exactly. */
int64_t
scaleCount(int64_t base, double scale)
{
    const auto scaled = static_cast<int64_t>(
        std::llround(static_cast<double>(base) * scale));
    return scaled > 1 ? scaled : 1;
}

} // namespace

ConfigSpace::Kind
ConfigSpace::kindFromString(const std::string &word)
{
    if (word == "small") return Kind::Small;
    if (word == "full") return Kind::Full;
    fatal("dse: unknown space '" + word + "' (expected small|full)");
}

const char *
ConfigSpace::toString(Kind kind)
{
    return kind == Kind::Small ? "small" : "full";
}

bool
ConfigSpace::searchable(const std::string &backend)
{
    return backend == "RoboX" || backend == "Graphicionado" ||
           backend == "TABLA" || backend == "DECO" ||
           backend == "TVM-VTA" || backend == "HyperStreams";
}

ConfigSpace
ConfigSpace::forBackend(const std::string &backend, Kind kind)
{
    ConfigSpace space;
    space.backend_ = backend;
    space.kind_ = kind;
    space.base_ = baseConfigFor(backend);
    if (kind == Kind::Small) {
        // 6 points: cheap enough for an exhaustive CI grid while still
        // containing a real trade-off (wider array vs. faster clock).
        space.axes_ = {{"units", {0.5, 1.0, 2.0}},
                       {"freq", {1.0, 1.25}}};
        return space;
    }
    space.axes_ = {{"units", {0.25, 0.5, 1.0, 2.0, 4.0}},
                   {"freq", {0.5, 0.75, 1.0, 1.25, 1.5}},
                   {"dram", {0.5, 1.0, 2.0}}};
    // Backend-specific microarchitecture knob where the cost model has
    // one; the other backends search the three generic axes only.
    if (backend == "TABLA")
        space.axes_.push_back({"bus", {0.5, 1.0, 2.0}});
    else if (backend == "Graphicionado")
        space.axes_.push_back({"banks", {0.5, 1.0, 2.0}});
    return space;
}

int64_t
ConfigSpace::size() const
{
    int64_t n = 1;
    for (const auto &axis : axes_)
        n *= static_cast<int64_t>(axis.scales.size());
    return n;
}

int64_t
ConfigSpace::baseIndex() const
{
    int64_t index = 0;
    int64_t stride = 1;
    for (const auto &axis : axes_) {
        int digit = 0;
        for (size_t i = 0; i < axis.scales.size(); ++i) {
            if (axis.scales[i] == 1.0)
                digit = static_cast<int>(i);
        }
        index += digit * stride;
        stride *= static_cast<int64_t>(axis.scales.size());
    }
    return index;
}

std::vector<int>
ConfigSpace::coords(int64_t index) const
{
    if (index < 0 || index >= size())
        fatal(format("dse: config index %lld out of range [0, %lld)",
                     static_cast<long long>(index),
                     static_cast<long long>(size())));
    std::vector<int> digits;
    digits.reserve(axes_.size());
    for (const auto &axis : axes_) {
        const auto radix = static_cast<int64_t>(axis.scales.size());
        digits.push_back(static_cast<int>(index % radix));
        index /= radix;
    }
    return digits;
}

target::MachineConfig
ConfigSpace::machineAt(int64_t index) const
{
    const auto digits = coords(index);
    target::MachineConfig m = base_;
    double su = 1.0, sf = 1.0, sd = 1.0, sk = 1.0;
    for (size_t a = 0; a < axes_.size(); ++a) {
        const Axis &axis = axes_[a];
        const double scale = axis.scales[static_cast<size_t>(digits[a])];
        if (axis.name == "units") {
            m.computeUnits = scaleCount(base_.computeUnits, scale);
            su = scale;
        } else if (axis.name == "freq") {
            m.freqGhz = base_.freqGhz * scale;
            sf = scale;
        } else if (axis.name == "dram") {
            m.dramGBs = base_.dramGBs * scale;
            sd = scale;
        } else if (axis.name == "bus") {
            m.busWordsPerCycle =
                scaleCount(base_.busWordsPerCycle, scale);
            sk = scale;
        } else if (axis.name == "banks") {
            m.banksPerPipe = scaleCount(base_.banksPerPipe, scale);
            sk = scale;
        } else {
            panic("dse: unknown axis '" + axis.name + "'");
        }
    }
    // Derived power model: active (and idle) watts follow area (unit
    // count, knob resources) linearly and voltage-frequency scaling
    // quadratically, with a small bandwidth (PHY/IO) term. Every factor
    // is exactly 1.0 at scale 1.0, so the base point's watts are the
    // factory value bit-for-bit.
    const double watts_scale = (1.0 + 0.65 * (su - 1.0)) * (sf * sf) *
                               (1.0 + 0.1 * (sd - 1.0)) *
                               (1.0 + 0.15 * (sk - 1.0));
    m.watts = base_.watts * watts_scale;
    m.idleWatts = base_.idleWatts * watts_scale;
    m.validate();
    return m;
}

std::string
ConfigSpace::label(int64_t index) const
{
    const auto digits = coords(index);
    std::string text;
    for (size_t a = 0; a < axes_.size(); ++a) {
        if (!text.empty())
            text += ' ';
        text += axes_[a].name;
        text += 'x';
        text += json::numberToJson(
            axes_[a].scales[static_cast<size_t>(digits[a])]);
    }
    return text;
}

std::vector<int64_t>
ConfigSpace::neighbors(int64_t index) const
{
    const auto digits = coords(index);
    std::vector<int64_t> out;
    int64_t stride = 1;
    for (size_t a = 0; a < axes_.size(); ++a) {
        const auto radix = static_cast<int64_t>(axes_[a].scales.size());
        if (digits[a] > 0)
            out.push_back(index - stride);
        if (digits[a] + 1 < radix)
            out.push_back(index + stride);
        stride *= radix;
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace polymath::dse
