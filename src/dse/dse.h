/**
 * @file
 * The design-space autotuner (docs/DSE.md).
 *
 * explore() evaluates points of a backend's ConfigSpace against one
 * compiled workload: each point instantiates the backend under that
 * machine config (target::makeBackend), simulates the workload's
 * partitions, and records runtime, energy, performance per watt, and a
 * CostLedger phase attribution explaining *why* the point performs as
 * it does ("DMA-bound past 512 PEs" is visible as dominantPhase
 * flipping from compute to dma along the units axis).
 *
 * Search is deterministic by construction: the grid driver enumerates
 * indices in order; the random driver draws from a seeded core::Rng and
 * refines survivors by ascending neighbor index; evaluation fans out
 * through core::parallelMap, whose results are index-ordered regardless
 * of the jobs count. Same seed => same evaluations => byte-identical
 * artifacts at any -jN.
 */
#ifndef POLYMATH_DSE_DSE_H_
#define POLYMATH_DSE_DSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dse/config_space.h"
#include "lower/compile.h"
#include "targets/common/backend.h"

namespace polymath::dse {

/** Search configuration (defaults match the pmcd `dse` verb). */
struct SearchOptions
{
    enum class Driver
    {
        Auto,   ///< grid when the budget covers the space, else random
        Grid,   ///< exhaustive enumeration
        Random, ///< seeded sampling + successive halving + refinement
    };

    /** @throws UserError on anything but "auto"|"grid"|"random". */
    static Driver driverFromString(const std::string &word);
    static const char *toString(Driver driver);

    ConfigSpace::Kind space = ConfigSpace::Kind::Small;
    Driver driver = Driver::Auto;
    int64_t samples = 48; ///< random driver: first-round sample budget
    int64_t rounds = 3;   ///< random driver: halving/refinement rounds
    uint64_t seed = 0x5eed;
    int jobs = 1; ///< evaluation fan-out (deterministic at any value)
};

/** One evaluated configuration. */
struct EvalPoint
{
    int64_t index = -1;  ///< position in the ConfigSpace
    std::string label;   ///< ConfigSpace::label(index)
    double seconds = 0.0;
    double joules = 0.0;
    double perfPerWatt = 0.0; ///< flops / joules

    // CostLedger phase attribution (why this point wins or loses).
    double computeSeconds = 0.0;
    double dmaSeconds = 0.0;
    double overheadSeconds = 0.0;
    std::string dominantPhase; ///< "compute" | "dma" | "overhead"
    std::string topCost;       ///< heaviest ledger entry's label
};

/** The autotuning result for one (workload, backend) pair. */
struct WorkloadStudy
{
    std::string workload; ///< benchmark id (or file name)
    std::string backend;
    int64_t spaceSize = 0;

    /** Every evaluated point, ascending by index. */
    std::vector<EvalPoint> points;

    /** Positions (into points) of the Pareto front over seconds vs.
     *  perf-per-watt, ascending by (seconds, index). */
    std::vector<size_t> front;

    /** Position of the factory (Table VI) config — always evaluated. */
    size_t baselinePos = 0;

    /** Position of the chosen best config: the front point maximizing
     *  speedup x perf-per-watt gain over the baseline (ties break to
     *  the lowest index). */
    size_t bestPos = 0;

    int64_t evaluated() const
    {
        return static_cast<int64_t>(points.size());
    }
    const EvalPoint &baseline() const { return points[baselinePos]; }
    const EvalPoint &best() const { return points[bestPos]; }

    /** baseline.seconds / best.seconds (1.0 when baseline is best). */
    double bestSpeedup() const;
    /** best.perfPerWatt / baseline.perfPerWatt. */
    double bestPpwGain() const;
};

/**
 * Autotunes @p backend over its ConfigSpace for one workload: simulates
 * @p partitions (the workload's partitions compiled for that backend)
 * under @p profile at every searched point. Enables cost-ledger
 * profiling for the phase attribution (sticky process-wide switch;
 * reports are byte-identical either way).
 * @throws UserError when @p backend has no design space or
 * @p partitions is empty.
 */
WorkloadStudy explore(const std::string &workload_id,
                      const std::string &backend,
                      const std::vector<const lower::Partition *> &partitions,
                      const target::WorkloadProfile &profile,
                      const SearchOptions &options);

/** The partitions of @p program compiled for @p backend (schedule
 *  order). */
std::vector<const lower::Partition *> partitionsFor(
    const lower::CompiledProgram &program, const std::string &backend);

// ---------------------------------------------------------------------------
// Rendering (pmdse, `pmc --dse`, the pmcd `dse` verb).
// ---------------------------------------------------------------------------

/** Pareto-front table of one study ('*' = best, '=' = baseline). */
std::string frontTable(const WorkloadStudy &study);

/** "Best config per workload" summary across studies. */
std::string bestTable(const std::vector<WorkloadStudy> &studies);

} // namespace polymath::dse

#endif // POLYMATH_DSE_DSE_H_
