#include "dse/pareto.h"

namespace polymath::dse {

bool
dominates(const Objective &a, const Objective &b)
{
    return a.seconds <= b.seconds && a.perfPerWatt >= b.perfPerWatt &&
           (a.seconds < b.seconds || a.perfPerWatt > b.perfPerWatt);
}

std::vector<size_t>
paretoFront(const std::vector<Objective> &points)
{
    std::vector<size_t> front;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

} // namespace polymath::dse
