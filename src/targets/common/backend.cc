#include "targets/common/backend.h"

#include <map>

#include "core/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "targets/common/cost_ledger.h"
#include "targets/deco/deco.h"
#include "targets/graphicionado/graphicionado.h"
#include "targets/hyperstreams/hyperstreams.h"
#include "targets/robox/robox.h"
#include "targets/tabla/tabla.h"
#include "targets/vta/vta.h"

namespace polymath::target {

Backend::Backend(MachineConfig machine) : machine_(std::move(machine))
{
    machine_.validate();
}

PerfReport
Backend::simulate(const lower::Partition &partition,
                  const WorkloadProfile &profile) const
{
    obs::MetricsRegistry::global()
        .counter("backend." + name() + ".simulate_calls")
        .add(1);
    obs::Span span("backend:simulate", "backend");
    if (span.active()) {
        span.arg("accel", name());
        span.arg("fragments",
                 static_cast<int64_t>(partition.fragments.size()));
        span.arg("invocations", profile.invocations);
    }
    PerfReport report = simulateImpl(partition, profile);
    // Every profiled simulation must hand back a ledger whose column sums
    // reproduce the report totals — catch attribution bugs loudly here,
    // at the one point all six backends pass through.
    verifyLedger(report);
    return report;
}

int64_t
fragmentWork(const lower::IrFragment &frag)
{
    int64_t work = frag.flops;
    auto it = frag.attrs.find("move_elems");
    if (it != frag.attrs.end())
        work += it->second;
    return work;
}

DmaBreakdown
dmaBreakdown(const lower::Partition &partition)
{
    DmaBreakdown out;
    auto account = [&](const lower::TensorArg &t) {
        if (t.kind == ir::EdgeKind::Param || t.kind == ir::EdgeKind::State)
            out.oneTimeBytes += t.accelBytes();
        else
            out.perRunBytes += t.accelBytes();
    };
    for (const auto &t : partition.loads)
        account(t);
    for (const auto &t : partition.stores)
        account(t);
    return out;
}

WorkloadCost
hostPartitionCost(const lower::Partition &partition,
                  const WorkloadProfile &profile)
{
    WorkloadCost cost;
    cost.domain = partition.domain;
    cost.kernels = static_cast<int64_t>(partition.fragments.size());
    cost.invocations = profile.invocations;
    cost.parallelWidth = profile.parallelWidth;
    cost.irregular = profile.edges > 0;
    cost.bytes = partition.loadBytes() + partition.storeBytes();
    double flops =
        static_cast<double>(partition.flops()) * profile.scale;
    if (profile.edges > 0) {
        // Per-edge/per-vertex op rates from the compiled instance,
        // applied to the deployed dataset — the same derivation the
        // Graphicionado model uses (graphicionado.cc).
        double per_edge = 0.0;
        double per_vertex = 0.0;
        for (const auto &frag : partition.fragments) {
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            double points = 1.0;
            for (const auto &[key, v] : frag.attrs) {
                if (key.rfind("dim", 0) == 0)
                    points *= static_cast<double>(v);
            }
            const double ops =
                points > 0
                    ? static_cast<double>(frag.flops) / points
                    : 0.0;
            const bool edge_domain =
                frag.attrs.count("dim1") > 0 ||
                frag.attrs.count("reduce_extent") > 0;
            if (edge_domain)
                per_edge += ops;
            else
                per_vertex += ops;
        }
        const double edges = static_cast<double>(profile.edges);
        const double vertices = static_cast<double>(profile.vertices);
        flops = per_edge * edges + per_vertex * vertices;
        // 8 B per edge streamed each sweep, 16 B of properties per vertex.
        cost.bytes =
            static_cast<int64_t>(edges * 8.0 + vertices * 16.0);
    }
    cost.flops = static_cast<int64_t>(flops);
    return cost;
}

std::vector<bool>
invariantFragments(const lower::Partition &partition)
{
    // A tensor name is invariant when it is a read-only param or is
    // written only by invariant fragments. State is on-chip resident but
    // mutable across invocations, so it does not seed invariance.
    std::set<std::string> invariant_names;
    for (const auto &t : partition.loads) {
        if (t.kind == ir::EdgeKind::Param)
            invariant_names.insert(t.name);
    }
    std::vector<bool> out(partition.fragments.size(), false);
    for (size_t i = 0; i < partition.fragments.size(); ++i) {
        const auto &frag = partition.fragments[i];
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        bool invariant = true;
        for (const auto &in : frag.inputs)
            invariant = invariant && invariant_names.count(in.name) > 0;
        // Constants have no inputs but also no work; mark them invariant.
        out[i] = invariant;
        if (invariant) {
            for (const auto &o : frag.outputs)
                invariant_names.insert(o.name);
        }
    }
    return out;
}

std::vector<std::vector<const lower::IrFragment *>>
fragmentLevels(const lower::Partition &partition)
{
    // Dataflow by tensor name: a fragment depends on the latest earlier
    // fragment writing any of its inputs.
    std::map<std::string, size_t> last_writer_level;
    std::vector<std::vector<const lower::IrFragment *>> levels;
    for (const auto &frag : partition.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        size_t level = 0;
        for (const auto &in : frag.inputs) {
            auto it = last_writer_level.find(in.name);
            if (it != last_writer_level.end())
                level = std::max(level, it->second + 1);
        }
        if (levels.size() <= level)
            levels.resize(level + 1);
        levels[level].push_back(&frag);
        for (const auto &out : frag.outputs) {
            auto [it, inserted] = last_writer_level.emplace(out.name, level);
            if (!inserted)
                it->second = std::max(it->second, level);
        }
    }
    return levels;
}

std::vector<std::unique_ptr<Backend>>
standardBackends()
{
    std::vector<std::unique_ptr<Backend>> out;
    out.push_back(std::make_unique<RoboxBackend>());
    out.push_back(std::make_unique<GraphicionadoBackend>());
    out.push_back(std::make_unique<TablaBackend>());
    out.push_back(std::make_unique<DecoBackend>());
    out.push_back(std::make_unique<VtaBackend>());
    out.push_back(std::make_unique<HyperstreamsBackend>());
    return out;
}

std::unique_ptr<Backend>
makeBackend(const std::string &name, MachineConfig config)
{
    if (name == "RoboX")
        return std::make_unique<RoboxBackend>(std::move(config));
    if (name == "Graphicionado")
        return std::make_unique<GraphicionadoBackend>(std::move(config));
    if (name == "TABLA")
        return std::make_unique<TablaBackend>(std::move(config));
    if (name == "DECO")
        return std::make_unique<DecoBackend>(std::move(config));
    if (name == "TVM-VTA")
        return std::make_unique<VtaBackend>(std::move(config));
    if (name == "HyperStreams")
        return std::make_unique<HyperstreamsBackend>(std::move(config));
    fatal("makeBackend: unknown backend '" + name +
          "' (expected RoboX|Graphicionado|TABLA|DECO|TVM-VTA|"
          "HyperStreams)");
}

lower::AcceleratorRegistry
standardRegistry()
{
    lower::AcceleratorRegistry registry;
    for (const auto &backend : standardBackends())
        registry.add(backend->spec());
    return registry;
}

const Backend *
findBackend(const std::vector<std::unique_ptr<Backend>> &backends,
            const std::string &name)
{
    for (const auto &b : backends) {
        if (b->name() == name)
            return b.get();
    }
    return nullptr;
}

} // namespace polymath::target
