#include "targets/common/machine_config.h"

#include <cmath>

#include "core/error.h"
#include "core/json.h"
#include "core/strings.h"

namespace polymath::target {

void
MachineConfig::validate() const
{
    auto positive = [this](const char *field, double value) {
        if (!(value > 0.0) || !std::isfinite(value)) {
            fatal(format("MachineConfig(%s).%s must be positive (got %g)",
                         name.c_str(), field, value));
        }
    };
    auto non_negative = [this](const char *field, double value) {
        if (!(value >= 0.0) || !std::isfinite(value)) {
            fatal(format("MachineConfig(%s).%s must be non-negative "
                         "(got %g)",
                         name.c_str(), field, value));
        }
    };
    positive("computeUnits", static_cast<double>(computeUnits));
    positive("freqGhz", freqGhz);
    positive("watts", watts);
    positive("dramGBs", dramGBs);
    positive("flopsPerUnitCycle", flopsPerUnitCycle);
    positive("busWordsPerCycle", static_cast<double>(busWordsPerCycle));
    positive("banksPerPipe", static_cast<double>(banksPerPipe));
    non_negative("idleWatts", idleWatts);
    non_negative("onChipBytes", static_cast<double>(onChipBytes));
    non_negative("launchOverheadUs", launchOverheadUs);
}

std::string
MachineConfig::signature() const
{
    // '\x1f' separators, same convention as lower::compileCacheKey: no
    // field can run into its neighbor and alias another signature.
    std::string sig = name;
    auto num = [&sig](double value) {
        sig += '\x1f';
        sig += json::numberToJson(value);
    };
    num(freqGhz);
    num(watts);
    num(idleWatts);
    num(static_cast<double>(computeUnits));
    num(flopsPerUnitCycle);
    num(dramGBs);
    num(static_cast<double>(onChipBytes));
    num(launchOverheadUs);
    num(static_cast<double>(busWordsPerCycle));
    num(static_cast<double>(banksPerPipe));
    return sig;
}

double
cyclesToSeconds(double cycles, double freq_ghz)
{
    if (!(freq_ghz > 0.0) || !std::isfinite(freq_ghz)) {
        fatal(format("cyclesToSeconds: frequency must be positive and "
                     "finite (got %g GHz)",
                     freq_ghz));
    }
    return cycles / (freq_ghz * 1e9);
}

void
SocConfig::validate() const
{
    auto positive = [](const char *field, double value) {
        if (!(value > 0.0)) {
            fatal(format("SocConfig.%s must be positive (got %g)", field,
                         value));
        }
    };
    auto non_negative = [](const char *field, double value) {
        if (value < 0.0) {
            fatal(format("SocConfig.%s must be non-negative (got %g)",
                         field, value));
        }
    };
    positive("dmaGBs", dmaGBs);
    positive("perTransferUs", perTransferUs);
    positive("hostWatts", hostWatts);
    non_negative("dramPjPerByte", dramPjPerByte);
    non_negative("glueOffloadWatts", glueOffloadWatts);
    non_negative("glueCpuWatts", glueCpuWatts);
    if (!(hostFallbackEff > 0.0) || hostFallbackEff > 1.0) {
        fatal(format("SocConfig.hostFallbackEff must be in (0, 1] "
                     "(got %g)",
                     hostFallbackEff));
    }
    if (streamMaxPending <= 0) {
        fatal(format("SocConfig.streamMaxPending must be positive "
                     "(got %d)",
                     streamMaxPending));
    }
    non_negative("streamDispatchUs", streamDispatchUs);
    non_negative("streamOutageSeconds", streamOutageSeconds);
}

MachineConfig
xeonConfig()
{
    MachineConfig m;
    m.name = "Xeon E-2176G";
    m.freqGhz = 3.7;
    m.watts = 80.0;
    m.computeUnits = 6;       // cores
    m.flopsPerUnitCycle = 16; // AVX2 FMA peak per core
    m.dramGBs = 41.6;         // dual-channel DDR4-2666
    m.launchOverheadUs = 0.0;
    return m;
}

MachineConfig
titanXpConfig()
{
    MachineConfig m;
    m.name = "Titan Xp";
    m.freqGhz = 1.58;
    m.watts = 250.0;
    m.idleWatts = 15.0;
    m.computeUnits = 3840;
    m.flopsPerUnitCycle = 2; // FMA
    m.dramGBs = 547.0;
    m.launchOverheadUs = 6.0;
    return m;
}

MachineConfig
jetsonConfig()
{
    MachineConfig m;
    m.name = "Jetson Xavier";
    m.freqGhz = 1.3;
    m.watts = 30.0;
    m.idleWatts = 5.0;
    m.computeUnits = 512;
    m.flopsPerUnitCycle = 2;
    m.dramGBs = 137.0;
    m.launchOverheadUs = 9.0;
    return m;
}

MachineConfig
roboxConfig()
{
    MachineConfig m;
    m.name = "RoboX";
    m.freqGhz = 1.0;
    m.watts = 3.4;
    m.computeUnits = 256;
    m.flopsPerUnitCycle = 1;
    m.dramGBs = 12.8;
    m.onChipBytes = 512 * 1024;
    m.launchOverheadUs = 0.2; // task dispatch in the macro-DFG sequencer
    return m;
}

MachineConfig
graphicionadoConfig()
{
    MachineConfig m;
    m.name = "Graphicionado";
    m.freqGhz = 1.0;
    m.watts = 7.0;
    m.computeUnits = 8; // parallel vertex/edge pipelines
    m.flopsPerUnitCycle = 1;
    m.dramGBs = 68.0;   // 4x HMC-ish links in the paper's config
    m.onChipBytes = 64ll * 1024 * 1024;
    m.launchOverheadUs = 1.0;
    m.banksPerPipe = 32; // destination-interleaved atomic-update banks
    return m;
}

MachineConfig
tablaConfig()
{
    MachineConfig m;
    m.name = "TABLA";
    m.freqGhz = 0.15;
    m.watts = 18.0;     // measured-design share of the 35 W board envelope
    m.computeUnits = 2048; // PEs synthesized from the 5520 DSP slices
    m.flopsPerUnitCycle = 1;
    m.dramGBs = 19.2;   // two DDR4 channels on the KCU1500
    m.onChipBytes = 64ll * 1024 * 1024; // Table VI: 75 MB FPGA memory
    m.launchOverheadUs = 2.0;
    m.busWordsPerCycle = 64; // shared operand bus between PE groups
    return m;
}

MachineConfig
decoConfig()
{
    MachineConfig m;
    m.name = "DECO";
    m.freqGhz = 0.15;
    m.watts = 16.0;
    m.computeUnits = 1024; // DSP-block columns in the overlay
    m.flopsPerUnitCycle = 1;
    m.dramGBs = 19.2;
    m.onChipBytes = 8ll * 1024 * 1024;
    m.launchOverheadUs = 2.0;
    return m;
}

MachineConfig
vtaConfig()
{
    MachineConfig m;
    m.name = "TVM-VTA";
    m.freqGhz = 0.15;
    m.watts = 3.0;      // PYNQ-class power envelope
    m.computeUnits = 256; // 16x16 GEMM core MACs
    m.flopsPerUnitCycle = 2;
    m.dramGBs = 19.2;
    m.onChipBytes = 1ll * 1024 * 1024;
    m.launchOverheadUs = 8.0; // per-layer instruction fetch + sync
    return m;
}

MachineConfig
hyperstreamsConfig()
{
    MachineConfig m;
    m.name = "HyperStreams";
    m.freqGhz = 0.15;
    m.watts = 14.0;
    m.computeUnits = 512; // pipeline stages able to retire 1 op/cycle
    m.flopsPerUnitCycle = 1;
    m.dramGBs = 19.2;
    m.onChipBytes = 4ll * 1024 * 1024;
    m.launchOverheadUs = 2.0;
    return m;
}

SocConfig
socConfig()
{
    SocConfig c;
    c.dmaGBs = 16.0;
    c.perTransferUs = 2.0;
    c.hostWatts = 1.5;
    c.dramPjPerByte = 20.0;
    return c;
}

} // namespace polymath::target
