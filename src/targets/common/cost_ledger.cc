#include "targets/common/cost_ledger.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "core/error.h"
#include "core/json.h"
#include "core/strings.h"
#include "report/report.h"

namespace polymath::target {

namespace {

std::atomic<bool> g_profiling{false};

} // namespace

bool
profilingEnabled()
{
    return g_profiling.load(std::memory_order_relaxed);
}

void
setProfilingEnabled(bool on)
{
    g_profiling.store(on, std::memory_order_relaxed);
}

const char *
toString(BoundClass bound)
{
    switch (bound) {
      case BoundClass::Compute: return "compute";
      case BoundClass::Memory: return "memory";
      case BoundClass::Overhead: return "overhead";
    }
    return "?";
}

double
CostEntry::intensity() const
{
    if (touchedBytes <= 0) {
        return flops > 0 ? std::numeric_limits<double>::infinity() : 0.0;
    }
    return flops / touchedBytes;
}

CostEntry &
CostLedger::add(std::string label, std::string phase, int fragment)
{
    CostEntry entry;
    entry.label = std::move(label);
    entry.phase = std::move(phase);
    entry.fragment = fragment;
    entries.push_back(std::move(entry));
    return entries.back();
}

CostEntry &
CostLedger::addFragment(int index, const lower::IrFragment &frag,
                        double raw_seconds)
{
    std::string label = frag.opcode;
    if (!frag.outputs.empty())
        label += "(" + frag.outputs.front().name + ")";
    CostEntry &entry = add(std::move(label), "compute", index);
    entry.seconds = raw_seconds;
    entry.flops = static_cast<double>(frag.flops);
    for (const auto &in : frag.inputs)
        entry.touchedBytes += static_cast<double>(in.accelBytes());
    for (const auto &out : frag.outputs)
        entry.touchedBytes += static_cast<double>(out.accelBytes());
    return entry;
}

void
CostLedger::addComputeResidual(const char *label, double raw_seconds)
{
    // Tiny negative residues from floating-point cancellation are normal;
    // only record a real scheduling cost.
    if (raw_seconds <= 0)
        return;
    CostEntry &entry = add(label, "compute");
    entry.seconds = raw_seconds;
    entry.bound = BoundClass::Overhead;
}

void
CostLedger::addDma(double one_time_bytes, double per_run_bytes,
                   double dram_gbs)
{
    const double bw = dram_gbs * 1e9;
    if (one_time_bytes > 0) {
        CostEntry &once = add("dma:param/state placement", "dma");
        once.dramBytes = one_time_bytes;
        once.seconds = bw > 0 ? one_time_bytes / bw : 0.0;
        once.bound = BoundClass::Memory;
    }
    if (per_run_bytes > 0) {
        CostEntry &stream = add("dma:per-run streams", "dma");
        stream.dramBytes = per_run_bytes;
        stream.seconds = bw > 0 ? per_run_bytes / bw : 0.0;
        stream.bound = BoundClass::Memory;
    }
}

void
CostLedger::addOverhead(double raw_seconds)
{
    if (raw_seconds <= 0)
        return;
    CostEntry &entry = add("launch/dispatch", "overhead");
    entry.seconds = raw_seconds;
    entry.bound = BoundClass::Overhead;
}

CostLedger::Totals
CostLedger::totals() const
{
    Totals t;
    for (const auto &e : entries) {
        t.seconds += e.seconds;
        t.joules += e.joules;
        t.dramBytes += e.dramBytes;
        t.flops += e.flops;
    }
    return t;
}

void
CostLedger::append(const CostLedger &other)
{
    const int base = partitionCount;
    for (CostEntry entry : other.entries) {
        entry.partition = base + std::max(0, entry.partition);
        entries.push_back(std::move(entry));
    }
    partitionCount += std::max(1, other.partitionCount);
}

CostLedger *
beginLedger(PerfReport &report, const std::string &machine)
{
    if (!profilingEnabled())
        return nullptr;
    report.ledger = std::make_shared<CostLedger>();
    report.ledger->machine = machine;
    return report.ledger.get();
}

namespace {

/** Rescales one metric column so it sums exactly to @p total; when the
 *  raw weights are all zero but the total is not, the whole total lands
 *  on @p fallback (so nothing is silently dropped). */
template <class Get>
void
distribute(std::vector<CostEntry> &entries, double total, Get get,
           CostEntry *fallback)
{
    double raw = 0.0;
    for (auto &e : entries)
        raw += *get(e);
    if (raw > 0) {
        const double scale = total / raw;
        for (auto &e : entries)
            *get(e) *= scale;
    } else if (total != 0 && fallback) {
        *get(*fallback) = total;
    }
}

} // namespace

void
finalizeLedger(PerfReport &report, const MachineConfig &machine)
{
    if (!report.ledger)
        return;
    CostLedger &ledger = *report.ledger;
    ledger.peakFlops = machine.peakFlops();
    ledger.dramGBs = machine.dramGBs;

    // A backend that found nothing to attribute (empty partition) still
    // satisfies the invariant via one catch-all entry.
    if (ledger.entries.empty()) {
        CostEntry &all = ledger.add("partition", "compute");
        all.seconds = 1.0; // raw weight; rescaled below
    }
    CostEntry *first = &ledger.entries.front();

    distribute(
        ledger.entries, report.seconds,
        [](CostEntry &e) { return &e.seconds; }, first);
    double raw_flops = 0.0;
    for (const auto &e : ledger.entries)
        raw_flops += e.flops;
    distribute(
        ledger.entries, static_cast<double>(report.flops),
        [](CostEntry &e) { return &e.flops; }, first);
    // touchedBytes stays outside the invariant, but it must scale with
    // the same factor as the flops it divides: arithmetic intensity is a
    // per-execution property and cannot drift with the invocation count.
    if (raw_flops > 0) {
        const double scale = static_cast<double>(report.flops) / raw_flops;
        for (auto &e : ledger.entries)
            e.touchedBytes *= scale;
    }
    distribute(
        ledger.entries, static_cast<double>(report.dramBytes),
        [](CostEntry &e) { return &e.dramBytes; }, first);

    // Energy follows time: every backend prices the partition at a flat
    // active power, so joules are attributed proportionally to seconds.
    if (report.seconds > 0) {
        for (auto &e : ledger.entries)
            e.joules = report.joules * (e.seconds / report.seconds);
    } else if (report.joules != 0) {
        first->joules = report.joules;
    }

    // Roofline classification of the compute entries: a fragment whose
    // arithmetic intensity (flops per accelerator-side operand byte)
    // falls left of the machine ridge point is bandwidth-limited even
    // when the schedule is busy. DMA/overhead entries keep the class
    // their population site assigned.
    const double bw = machine.dramGBs * 1e9;
    const double ridge = bw > 0 ? ledger.peakFlops / bw : 0.0;
    for (auto &e : ledger.entries) {
        if (e.fragment < 0)
            continue;
        if (e.flops <= 0)
            e.bound = BoundClass::Overhead; // identity moves, constants
        else
            e.bound = e.intensity() < ridge ? BoundClass::Memory
                                            : BoundClass::Compute;
    }
}

void
verifyLedger(const PerfReport &report)
{
    if (!report.ledger)
        return;
    const CostLedger::Totals sums = report.ledger->totals();
    constexpr double kRelTol = 1e-9;
    auto check = [&](const char *metric, double sum, double total) {
        const double scale = std::max(std::abs(sum), std::abs(total));
        const double diff = std::abs(sum - total);
        if (diff > kRelTol * std::max(scale, 1.0)) {
            panic(format("cost ledger for %s violates the sums-to-totals "
                         "invariant: %s entries sum to %.17g but the "
                         "report total is %.17g (rel err %.3g)",
                         report.machine.c_str(), metric, sum, total,
                         scale > 0 ? diff / scale : diff));
        }
    };
    check("seconds", sums.seconds, report.seconds);
    check("joules", sums.joules, report.joules);
    check("dramBytes", sums.dramBytes,
          static_cast<double>(report.dramBytes));
    check("flops", sums.flops, static_cast<double>(report.flops));
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

namespace {

/** Achieved fraction of the roofline-attainable rate at this entry's
 *  intensity; 0 when unknowable (no time attributed / no roofline). */
double
rooflinePosition(const CostEntry &e, const CostLedger &ledger)
{
    if (e.seconds <= 0 || e.flops <= 0 || ledger.peakFlops <= 0)
        return 0.0;
    const double achieved = e.flops / e.seconds;
    const double attainable = std::min(
        ledger.peakFlops,
        std::isinf(e.intensity())
            ? ledger.peakFlops
            : e.intensity() * ledger.dramGBs * 1e9);
    // Clamped: proportional attribution of overlapped (max(compute,
    // memory)) time can leave a fragment less wall time than its raw
    // issue cost, pushing the apparent rate past the roof.
    return attainable > 0 ? std::min(1.0, achieved / attainable) : 0.0;
}

std::string
entryLabel(const CostEntry &e, const CostLedger &ledger)
{
    std::string label;
    if (ledger.partitionCount > 0 && e.partition >= 0)
        label += "p" + std::to_string(e.partition) + ":";
    if (e.fragment >= 0)
        label += "#" + std::to_string(e.fragment) + " ";
    return label + e.label;
}

} // namespace

std::string
profileTable(const PerfReport &report, int top_n)
{
    if (!report.ledger)
        return "(no cost ledger: profiling was disabled)\n";
    const CostLedger &ledger = *report.ledger;

    std::vector<const CostEntry *> ranked;
    ranked.reserve(ledger.entries.size());
    for (const auto &e : ledger.entries)
        ranked.push_back(&e);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const CostEntry *a, const CostEntry *b) {
                         return a->seconds > b->seconds;
                     });
    if (top_n > 0 && ranked.size() > static_cast<size_t>(top_n))
        ranked.resize(static_cast<size_t>(top_n));

    report::Table table({"hotspot", "phase", "time%", "energy%", "flops",
                         "AI(flop/B)", "bound", "roofline%"});
    for (const CostEntry *e : ranked) {
        const double tpct =
            report.seconds > 0 ? e->seconds / report.seconds : 0.0;
        const double epct =
            report.joules > 0 ? e->joules / report.joules : 0.0;
        const double ai = e->intensity();
        table.addRow({entryLabel(*e, ledger), e->phase,
                      report::percent(tpct), report::percent(epct),
                      formatG(e->flops, 4),
                      std::isinf(ai) ? "-" : formatG(ai, 3),
                      toString(e->bound),
                      report::percent(rooflinePosition(*e, ledger))});
    }
    std::string out = report.machine + " profile (" +
                      std::to_string(ledger.entries.size()) +
                      " ledger entries, top " +
                      std::to_string(ranked.size()) + "):\n";
    out += "  " + report.str() + "\n";
    out += table.str();
    return out;
}

std::string
profileJson(const PerfReport &report)
{
    std::string out = "{\"schema\":\"polymath-profile/1\"";
    out += ",\"machine\":" + json::quote(report.machine);
    out += ",\"report\":{";
    out += "\"seconds\":" + json::numberToJson(report.seconds);
    out += ",\"joules\":" + json::numberToJson(report.joules);
    out += ",\"computeSeconds\":" + json::numberToJson(report.computeSeconds);
    out += ",\"memorySeconds\":" + json::numberToJson(report.memorySeconds);
    out +=
        ",\"overheadSeconds\":" + json::numberToJson(report.overheadSeconds);
    out += ",\"flops\":" + std::to_string(report.flops);
    out += ",\"dramBytes\":" + std::to_string(report.dramBytes);
    out += ",\"utilization\":" + json::numberToJson(report.utilization);
    out += "}";
    if (report.ledger) {
        const CostLedger &ledger = *report.ledger;
        out += ",\"roofline\":{\"peakFlops\":" +
               json::numberToJson(ledger.peakFlops) +
               ",\"dramGBs\":" + json::numberToJson(ledger.dramGBs) + "}";
        out += ",\"entries\":[";
        for (size_t i = 0; i < ledger.entries.size(); ++i) {
            const CostEntry &e = ledger.entries[i];
            if (i)
                out += ",";
            out += "{\"label\":" + json::quote(e.label);
            out += ",\"phase\":" + json::quote(e.phase);
            out += ",\"fragment\":" + std::to_string(e.fragment);
            if (ledger.partitionCount > 0)
                out += ",\"partition\":" + std::to_string(e.partition);
            out += ",\"bound\":" + json::quote(toString(e.bound));
            out += ",\"seconds\":" + json::numberToJson(e.seconds);
            out += ",\"joules\":" + json::numberToJson(e.joules);
            out += ",\"dramBytes\":" + json::numberToJson(e.dramBytes);
            out += ",\"flops\":" + json::numberToJson(e.flops);
            out += ",\"touchedBytes\":" + json::numberToJson(e.touchedBytes);
            out += "}";
        }
        out += "]";
    }
    return out + "}";
}

} // namespace polymath::target
