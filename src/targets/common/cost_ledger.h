/**
 * @file
 * Per-fragment cost attribution for the backend simulators
 * (docs/OBSERVABILITY.md §"Cost ledgers").
 *
 * A PerfReport answers "how long / how much energy"; a CostLedger answers
 * *why*: which srDFG fragments dominate the backend's schedule, how much
 * of the wall time is DMA or launch overhead, and where each fragment sits
 * against the machine's roofline. Backends populate raw entries inside
 * simulateImpl() at the points where they already compute cycles, bytes,
 * and flops; finalizeLedger() then distributes the report's *totals*
 * across the entries proportionally to those raw weights, so the ledger
 * always satisfies the invariant
 *
 *     sum(entry.seconds)   == report.seconds
 *     sum(entry.joules)    == report.joules
 *     sum(entry.dramBytes) == report.dramBytes
 *     sum(entry.flops)     == report.flops
 *
 * within 1e-9 relative tolerance — checked loudly at the non-virtual
 * Backend::simulate choke point (verifyLedger panics on violation).
 *
 * Profiling is off by default, exactly like obs::TraceRecorder: when
 * disabled, beginLedger() reads one relaxed atomic and returns nullptr,
 * every instrumentation site is behind one `if (ledger)` branch, and all
 * reports are byte-identical to a build without the subsystem.
 */
#ifndef POLYMATH_TARGETS_COMMON_COST_LEDGER_H_
#define POLYMATH_TARGETS_COMMON_COST_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lower/accel_spec.h"
#include "targets/common/machine_config.h"
#include "targets/common/perf_report.h"

namespace polymath::target {

/** Global profiling switch (off by default; one relaxed atomic read on
 *  the hot path, mirroring obs::TraceRecorder::enabled). */
bool profilingEnabled();
void setProfilingEnabled(bool on);

/** Roofline classification of one ledger entry. */
enum class BoundClass
{
    Compute,  ///< arithmetic intensity above the machine ridge point
    Memory,   ///< below the ridge point (or pure data movement)
    Overhead, ///< launch / scheduling / pipeline-fill cost, no flops
};

const char *toString(BoundClass bound);

/** One attributed slice of a partition's simulated cost. */
struct CostEntry
{
    /** Human-readable source: "mul(y_next)" for fragments, or the phase
     *  cost it represents ("dma:per-run", "launch", "reduce-tree+bus"). */
    std::string label;

    /** Attribution phase: "compute", "dma", or "overhead". */
    std::string phase;

    /** Index into the partition's fragments; -1 for phase-level costs. */
    int fragment = -1;

    /** Schedule position when ledgers of several partitions are merged
     *  via PerfReport::operator+= ; -1 inside a single partition. */
    int partition = -1;

    BoundClass bound = BoundClass::Compute;

    // Attributed shares of the report totals (post-finalize). Before
    // finalizeLedger() runs they hold the backend's *raw* weights.
    double seconds = 0.0;
    double joules = 0.0;
    double dramBytes = 0.0;
    double flops = 0.0;

    /** Accelerator-side tensor footprint this entry touches (operands +
     *  results), the denominator of arithmetic intensity. Not part of
     *  the sums-to-totals invariant: on-chip reuse means touched bytes
     *  legitimately exceed DRAM traffic. */
    double touchedBytes = 0.0;

    /** Arithmetic intensity in flops/byte (infinity when no bytes). */
    double intensity() const;
};

/** The per-partition (or merged per-program) cost breakdown. */
struct CostLedger
{
    std::string machine;

    /** Machine roofline constants, captured by finalizeLedger() so
     *  renderers need no backend handle. */
    double peakFlops = 0.0;
    double dramGBs = 0.0;

    /** Number of partitions merged into this ledger; 0 for a leaf ledger
     *  straight out of one simulateImpl(). */
    int partitionCount = 0;

    std::vector<CostEntry> entries;

    /** Appends a raw entry (backend population API). */
    CostEntry &add(std::string label, std::string phase, int fragment = -1);

    /** Raw-entry helper for one IR fragment: labels it opcode(first
     *  output), seeds the flop weight from the fragment, and sums the
     *  accelerator-side operand/result footprint into touchedBytes. */
    CostEntry &addFragment(int index, const lower::IrFragment &frag,
                           double raw_seconds);

    /** Adds a phase="compute" overhead entry (scheduler/pipeline cost not
     *  attributable to a single fragment) when @p raw_seconds > 0. */
    void addComputeResidual(const char *label, double raw_seconds);

    /** Adds phase="dma" entries for a partition's one-time (param/state
     *  placement) and per-run streams at @p dram_gbs bandwidth. */
    void addDma(double one_time_bytes, double per_run_bytes,
                double dram_gbs);

    /** Adds the phase="overhead" launch/dispatch entry when > 0. */
    void addOverhead(double raw_seconds);

    struct Totals
    {
        double seconds = 0.0;
        double joules = 0.0;
        double dramBytes = 0.0;
        double flops = 0.0;
    };

    /** Column sums over all entries. */
    Totals totals() const;

    /** Merges @p other (used by PerfReport::operator+= for sequential
     *  composition): entries are copied with partition tags offset so a
     *  merged ledger still identifies which schedule slot each entry
     *  came from, and the sums-to-totals invariant is preserved. */
    void append(const CostLedger &other);
};

/**
 * Attaches a fresh ledger to @p report when profiling is enabled and
 * returns it; returns nullptr (and leaves the report untouched) when
 * disabled. The single hot-path branch of the subsystem.
 */
CostLedger *beginLedger(PerfReport &report, const std::string &machine);

/**
 * Distributes @p report's totals across the ledger's raw entries
 * (proportionally per metric), classifies each entry against the
 * machine roofline, and captures the roofline constants. No-op when the
 * report carries no ledger. Every simulateImpl() must call this last.
 */
void finalizeLedger(PerfReport &report, const MachineConfig &machine);

/**
 * Checks the sums-to-totals invariant at 1e-9 relative tolerance;
 * panics (InternalError) with the offending metric on violation. Called
 * from the Backend::simulate choke point on every profiled simulation.
 */
void verifyLedger(const PerfReport &report);

// ---------------------------------------------------------------------------
// Rendering (`pmc --profile`).
// ---------------------------------------------------------------------------

/**
 * Top-N hotspot table for one profiled partition: % time, % energy,
 * attributed flops, arithmetic intensity, bound class, and roofline
 * position (achieved fraction of the attainable rate at that
 * intensity). Entries are ranked by attributed seconds.
 */
std::string profileTable(const PerfReport &report, int top_n = 10);

/**
 * The same breakdown as schema-versioned JSON
 * (`"schema": "polymath-profile/1"`): report totals plus every entry,
 * unranked and untruncated. Locale-independent (core/json emission).
 */
std::string profileJson(const PerfReport &report);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_COST_LEDGER_H_
