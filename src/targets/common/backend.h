/**
 * @file
 * Backend interface: each domain-specific accelerator pairs its
 * AcceleratorSpec (how PolyMath translates to its IR) with a simulator
 * (how its scheduler/mapper would execute the translated program).
 *
 * The simulators are analytical cost models driven by the *actual compiled
 * IR* — fragment op mix, iteration extents, tensor footprints, and
 * dependency structure — with machine constants from Table VI. They stand
 * in for the physical FPGAs/ASICs of the paper's testbed (see DESIGN.md §1).
 */
#ifndef POLYMATH_TARGETS_COMMON_BACKEND_H_
#define POLYMATH_TARGETS_COMMON_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "lower/compile.h"
#include "targets/common/machine_config.h"
#include "targets/common/perf_report.h"
#include "targets/common/workload_cost.h"

namespace polymath::target {

/**
 * Runtime-scale characteristics of a workload that are not visible in the
 * compiled IR: how many times the entry component is invoked, how much
 * larger the deployed problem is than the compiled instance, and dataset
 * statistics for irregular domains.
 */
struct WorkloadProfile
{
    /** Invocations of the entry component (MPC steps, training epochs,
     *  BFS/K-means iterations). */
    int64_t invocations = 1;

    /** Deployed-problem flops divided by compiled-instance flops (1 when
     *  the graph is compiled at full scale). */
    double scale = 1.0;

    /** Graph analytics: dataset size (0 for non-graph workloads). */
    int64_t vertices = 0;
    int64_t edges = 0;

    /** Typical per-kernel parallel width at deployed scale, for GPU
     *  occupancy modeling. 0 = derive from the IR. */
    double parallelWidth = 0.0;

    /** Per-invocation host-side glue (sensor I/O, marshaling, logging)
     *  that no accelerator absorbs — the Amdahl residual of end-to-end
     *  applications. Ignored by kernel backends. */
    double hostGlueSeconds = 0.0;
};

/**
 * One accelerator backend: spec + simulator.
 *
 * The machine configuration is constructor-injected data, not a
 * hard-coded constant (DESIGN.md §"Configs are data"): every backend
 * default-constructs from its Table VI factory but accepts any
 * MachineConfig, which is what the design-space autotuner (src/dse/)
 * sweeps. The constructor is the single config-ingest point — it
 * validates, so a degenerate config (zero frequency, no compute units)
 * fails loudly before any cost model divides by it.
 */
class Backend
{
  public:
    /** @throws UserError when @p machine fails MachineConfig::validate().*/
    explicit Backend(MachineConfig machine);

    virtual ~Backend() = default;

    virtual std::string name() const = 0;
    virtual lang::Domain domain() const = 0;

    /** The machine configuration this instance simulates. */
    const MachineConfig &machine() const { return machine_; }

    /** Registration for the compilation algorithms (Ot, md, +d). */
    virtual lower::AcceleratorSpec spec() const = 0;

    /**
     * Simulates one compiled partition under @p profile. Non-virtual so
     * every scheduler/estimator invocation — from the SoC runtime, the
     * benches, or tests — passes one choke point that feeds the
     * observability layer (a `backend:simulate` span and per-accelerator
     * call counter); backends implement simulateImpl().
     */
    PerfReport simulate(const lower::Partition &partition,
                        const WorkloadProfile &profile) const;

  protected:
    /** The backend's scheduler/cost model (docs/ADDING_A_BACKEND.md). */
    virtual PerfReport simulateImpl(const lower::Partition &partition,
                                    const WorkloadProfile &profile)
        const = 0;

  private:
    MachineConfig machine_;
};

/** DMA traffic of a partition split by type modifier: `param`/`state`
 *  tensors are placed on-chip once (the language-level data semantics the
 *  accelerators exploit — Section II-A), everything else moves every
 *  invocation. */
struct DmaBreakdown
{
    int64_t oneTimeBytes = 0; ///< param + state placement
    int64_t perRunBytes = 0;  ///< input/output/intermediate traffic
};

DmaBreakdown dmaBreakdown(const lower::Partition &partition);

/**
 * Host-CPU view of one partition's deployed-scale cost, for partitions
 * the SoC keeps (or degrades onto) the host. Dense domains scale the
 * compiled-instance flops by profile.scale; graph analytics compiles the
 * per-vertex program, so deployed work scales with the dataset's V/E
 * exactly as the Graphicionado model derives it, and the edge stream
 * dominates DRAM traffic. cpuEff is left at 0 (domain default) — callers
 * overlay their calibrated native-library efficiencies.
 */
WorkloadCost hostPartitionCost(const lower::Partition &partition,
                               const WorkloadProfile &profile);

/** Cycle-relevant work of a fragment: scalar flops plus identity-move
 *  elements (copies/concats occupy lanes even though they are not
 *  arithmetic — part of PolyMath's overhead vs. hand-tuned code). */
int64_t fragmentWork(const lower::IrFragment &frag);

/** Marks fragments whose results derive only from read-only `param`
 *  data (transitively): accelerators compute those once and keep the
 *  result in local memory across invocations, like the operands
 *  themselves. Indexed like partition.fragments. */
std::vector<bool> invariantFragments(const lower::Partition &partition);

/** Dependency levels of a partition's fragments: fragments in the same
 *  level are independent (by tensor-name dataflow) and can run
 *  concurrently; levels run in order. tload/tstore fragments are skipped.*/
std::vector<std::vector<const lower::IrFragment *>> fragmentLevels(
    const lower::Partition &partition);

/** All six DSA backends, in registration order matching Table V. */
std::vector<std::unique_ptr<Backend>> standardBackends();

/**
 * One DSA backend by Table V name ("RoboX", "Graphicionado", "TABLA",
 * "DECO", "TVM-VTA", "HyperStreams") under a caller-chosen machine
 * configuration — the instantiation point of the design-space autotuner.
 * @throws UserError on an unknown name or an invalid config.
 */
std::unique_ptr<Backend> makeBackend(const std::string &name,
                                     MachineConfig config);

/** AcceleratorRegistry assembled from standardBackends(). */
lower::AcceleratorRegistry standardRegistry();

/** Finds a backend by name in @p backends; nullptr when absent. */
const Backend *findBackend(
    const std::vector<std::unique_ptr<Backend>> &backends,
    const std::string &name);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_BACKEND_H_
