/**
 * @file
 * Shared operation vocabularies for backend Ot sets.
 */
#ifndef POLYMATH_TARGETS_COMMON_OP_SETS_H_
#define POLYMATH_TARGETS_COMMON_OP_SETS_H_

#include <set>
#include <string>

namespace polymath::target {

/** ALU-level ops every dataflow-style accelerator supports. */
inline std::set<std::string>
scalarAluOps()
{
    return {"const", "identity", "add",  "sub", "mul", "div", "mod",
            "neg",   "lt",       "le",   "gt",  "ge",  "eq",  "ne",
            "and",   "or",       "not",  "select", "abs", "sign",
            "min",   "max",      "floor", "ceil"};
}

/** Built-in group reductions. */
inline std::set<std::string>
groupOps()
{
    return {"sum", "prod", "max", "min"};
}

/** Merges op sets. */
inline std::set<std::string>
opsUnion(std::set<std::string> a, const std::set<std::string> &b)
{
    a.insert(b.begin(), b.end());
    return a;
}

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_OP_SETS_H_
