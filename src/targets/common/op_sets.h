/**
 * @file
 * Shared operation vocabularies for backend Ot sets.
 *
 * The sets are interned-op bitsets built once per process (static locals);
 * spec construction and Ot merging never re-render operation names.
 */
#ifndef POLYMATH_TARGETS_COMMON_OP_SETS_H_
#define POLYMATH_TARGETS_COMMON_OP_SETS_H_

#include "srdfg/op.h"

namespace polymath::target {

/** ALU-level ops every dataflow-style accelerator supports. */
inline const ir::OpSet &
scalarAluOps()
{
    using ir::OpCode;
    static const ir::OpSet ops = {
        OpCode::Const, OpCode::Identity, OpCode::Add,    OpCode::Sub,
        OpCode::Mul,   OpCode::Div,      OpCode::Mod,    OpCode::Neg,
        OpCode::Lt,    OpCode::Le,       OpCode::Gt,     OpCode::Ge,
        OpCode::Eq,    OpCode::Ne,       OpCode::And,    OpCode::Or,
        OpCode::Not,   OpCode::Select,   OpCode::Abs,    OpCode::Sign,
        OpCode::Min,   OpCode::Max,      OpCode::Floor,  OpCode::Ceil,
    };
    return ops;
}

/** Built-in group reductions. */
inline const ir::OpSet &
groupOps()
{
    using ir::OpCode;
    static const ir::OpSet ops = {OpCode::Sum, OpCode::Prod, OpCode::Max,
                                  OpCode::Min};
    return ops;
}

/** Merges op sets. */
inline ir::OpSet
opsUnion(ir::OpSet a, const ir::OpSet &b)
{
    a.merge(b);
    return a;
}

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_OP_SETS_H_
