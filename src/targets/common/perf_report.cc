#include "targets/common/perf_report.h"

#include "core/strings.h"

namespace polymath::target {

PerfReport &
PerfReport::operator+=(const PerfReport &other)
{
    if (machine.empty())
        machine = other.machine;
    seconds += other.seconds;
    joules += other.joules;
    computeSeconds += other.computeSeconds;
    memorySeconds += other.memorySeconds;
    overheadSeconds += other.overheadSeconds;
    flops += other.flops;
    dramBytes += other.dramBytes;
    // Utilization of a sequential composition: flop-weighted is the useful
    // summary; recompute from totals when both present.
    if (seconds > 0 && flops > 0 && other.seconds > 0)
        utilization = (utilization + other.utilization) / 2.0;
    return *this;
}

std::string
PerfReport::str() const
{
    return format("%s: %.4g ms, %.4g mJ, %.3g W, %lld flops, %lld B dram, "
                  "util %.1f%%",
                  machine.c_str(), seconds * 1e3, joules * 1e3, watts(),
                  static_cast<long long>(flops),
                  static_cast<long long>(dramBytes), utilization * 100.0);
}

double
speedup(const PerfReport &baseline, const PerfReport &candidate)
{
    return candidate.seconds > 0 ? baseline.seconds / candidate.seconds
                                 : 0.0;
}

double
energyReduction(const PerfReport &baseline, const PerfReport &candidate)
{
    return candidate.joules > 0 ? baseline.joules / candidate.joules : 0.0;
}

double
ppwImprovement(const PerfReport &baseline, const PerfReport &candidate)
{
    // perf-per-watt = (1/t)/W = 1/(t*W); improvement = (t_b*W_b)/(t_c*W_c).
    const double b = baseline.seconds * baseline.watts();
    const double c = candidate.seconds * candidate.watts();
    return c > 0 ? b / c : 0.0;
}

} // namespace polymath::target
