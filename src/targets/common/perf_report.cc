#include "targets/common/perf_report.h"

#include <cmath>
#include <limits>

#include "core/strings.h"
#include "targets/common/cost_ledger.h"

namespace polymath::target {

PerfReport &
PerfReport::operator+=(const PerfReport &other)
{
    if (machine.empty())
        machine = other.machine;
    const double prior_seconds = seconds;
    seconds += other.seconds;
    joules += other.joules;
    computeSeconds += other.computeSeconds;
    memorySeconds += other.memorySeconds;
    overheadSeconds += other.overheadSeconds;
    flops += other.flops;
    dramBytes += other.dramBytes;
    // Utilization of a sequential composition: time-weighted from the
    // accumulated totals, so chaining any number of partitions is
    // associative and order-independent (a pairwise average is neither).
    if (seconds > 0) {
        utilization = (utilization * prior_seconds +
                       other.utilization * other.seconds) /
                      seconds;
    }
    if (other.ledger) {
        // Merge into a fresh ledger: `ledger` may be aliased by earlier
        // copies of this report (and `other`'s is immutable by contract).
        auto merged = std::make_shared<CostLedger>();
        merged->machine = machine;
        if (ledger)
            merged->append(*ledger);
        else
            merged->partitionCount = 0;
        merged->append(*other.ledger);
        merged->peakFlops = other.ledger->peakFlops;
        merged->dramGBs = other.ledger->dramGBs;
        if (ledger) {
            merged->peakFlops =
                std::max(merged->peakFlops, ledger->peakFlops);
            merged->dramGBs = std::max(merged->dramGBs, ledger->dramGBs);
        }
        ledger = std::move(merged);
    }
    return *this;
}

std::string
PerfReport::str() const
{
    // formatG, not printf %g: report lines must render identically under
    // every locale (the bench tables embed them verbatim).
    return machine + ": " + formatG(seconds * 1e3, 4) + " ms, " +
           formatG(joules * 1e3, 4) + " mJ, " + formatG(watts(), 3) +
           " W, " + std::to_string(flops) + " flops, " +
           std::to_string(dramBytes) + " B dram, util " +
           formatF(utilization * 100.0, 1) + "%";
}

namespace {

/** Shared zero-candidate convention of the improvement ratios: +inf for
 *  a free candidate against a costly baseline, 1.0 for free vs. free. */
double
improvement(double baseline, double candidate)
{
    if (candidate > 0)
        return baseline / candidate;
    return baseline > 0 ? std::numeric_limits<double>::infinity() : 1.0;
}

} // namespace

double
speedup(const PerfReport &baseline, const PerfReport &candidate)
{
    return improvement(baseline.seconds, candidate.seconds);
}

double
energyReduction(const PerfReport &baseline, const PerfReport &candidate)
{
    return improvement(baseline.joules, candidate.joules);
}

double
ppwImprovement(const PerfReport &baseline, const PerfReport &candidate)
{
    // perf-per-watt = (1/t)/W = 1/(t*W); improvement = (t_b*W_b)/(t_c*W_c).
    return improvement(baseline.seconds * baseline.watts(),
                       candidate.seconds * candidate.watts());
}

} // namespace polymath::target
