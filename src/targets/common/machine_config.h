/**
 * @file
 * Machine configurations for every platform in the evaluation (Table VI of
 * the paper plus public spec-sheet rates for the GPUs). All backend cost
 * models read their constants from here so the calibration surface is one
 * file.
 */
#ifndef POLYMATH_TARGETS_COMMON_MACHINE_CONFIG_H_
#define POLYMATH_TARGETS_COMMON_MACHINE_CONFIG_H_

#include <cstdint>
#include <string>

namespace polymath::target {

/** Generic machine parameters. */
struct MachineConfig
{
    std::string name;
    double freqGhz = 1.0;
    double watts = 1.0;         ///< board/chip power while active
    double idleWatts = 0.0;     ///< consumed even when this unit waits
    int64_t computeUnits = 1;   ///< lanes / PEs / DSP slices / CUDA cores
    double flopsPerUnitCycle = 1.0;
    double dramGBs = 10.0;      ///< off-chip bandwidth
    int64_t onChipBytes = 0;    ///< scratchpad / BRAM capacity
    double launchOverheadUs = 0.0; ///< per-kernel/fragment dispatch cost

    // Backend-specific microarchitecture knobs. Backends that do not use
    // a knob ignore it; the defaults reproduce the Table VI constants the
    // cost models were calibrated with, so a default-constructed config
    // is byte-identical to the pre-knob models.

    /** TABLA: words per cycle of the shared operand bus between PE
     *  groups. The inter-level bus turnaround shrinks as the bus widens
     *  (4 cycles at the synthesized 64-word bus). */
    int64_t busWordsPerCycle = 64;

    /** Graphicionado: atomic-update banks per pipeline. More banks mean
     *  fewer same-cycle reduce conflicts (the calibrated 1.3x conflict
     *  factor corresponds to 32 banks/pipe). */
    int64_t banksPerPipe = 32;

    double peakFlops() const
    {
        return freqGhz * 1e9 * static_cast<double>(computeUnits) *
               flopsPerUnitCycle;
    }

    /**
     * Rejects configurations the cost models would divide by zero on or
     * produce NaN/negative seconds from: non-positive (or non-finite)
     * computeUnits, freqGhz, watts, dramGBs, flopsPerUnitCycle,
     * busWordsPerCycle, or banksPerPipe, and negative idleWatts,
     * onChipBytes, or launchOverheadUs.
     * @throws UserError naming the offending field.
     */
    void validate() const;

    /**
     * Canonical one-line rendering of every field (shortest round-trip
     * number emission, '\x1f'-separated). Two configs with equal
     * signatures are behaviorally identical to every cost model, which
     * is what makes the signature usable as a cache-key salt for
     * machine-config-dependent results (the DSE evaluation memo; see
     * lower::compileCacheKey for the compile-side convention).
     */
    std::string signature() const;
};

/**
 * Shared cycles -> seconds conversion for every cycle-accurate engine
 * (the Graphicionado trace pipeline, the VTA tiler). One guard lives
 * here: a zero, negative, or non-finite frequency is rejected with a
 * UserError instead of silently producing inf/NaN seconds.
 */
double cyclesToSeconds(double cycles, double freq_ghz);

// ---------------------------------------------------------------------------
// Baselines (Table VI).
// ---------------------------------------------------------------------------

/** Xeon E-2176G: 6 cores, 3.7 GHz, 80 W, 128 GB. The per-domain SIMD
 *  efficiency of the optimized native libraries is modeled in CpuModel. */
MachineConfig xeonConfig();

/** Titan Xp: 3840 CUDA cores @ 1.5 GHz, 250 W, 547 GB/s. */
MachineConfig titanXpConfig();

/** Jetson AGX Xavier: 512 CUDA cores @ 1.3 GHz, 30 W, 137 GB/s. */
MachineConfig jetsonConfig();

// ---------------------------------------------------------------------------
// Accelerators (Table V/VI).
// ---------------------------------------------------------------------------

/** RoboX programmable ASIC: 256 compute units @ 1 GHz, 3.4 W, 512 KB. */
MachineConfig roboxConfig();

/** Graphicionado ASIC: 8 pipelines @ 1 GHz, 7 W, 64 MB eDRAM scratchpad. */
MachineConfig graphicionadoConfig();

/** TABLA on KCU1500: template-based ML accelerator, 150 MHz FPGA fabric. */
MachineConfig tablaConfig();

/** DECO DSP-block overlay on KCU1500: 150 MHz pipelined DSP chains. */
MachineConfig decoConfig();

/** TVM-VTA on KCU1500: 16x16 GEMM core, 150 MHz. */
MachineConfig vtaConfig();

/** HyperStreams on KCU1500: deep arithmetic pipelines, 150 MHz. */
MachineConfig hyperstreamsConfig();

/** SoC interconnect: DMA bandwidth and per-transfer latency used by the
 *  host manager when cascading accelerators. */
struct SocConfig
{
    double dmaGBs = 8.0;          ///< DRAM <-> accelerator local memory
    double perTransferUs = 4.0;   ///< DMA setup + host manager dispatch
    double hostWatts = 5.0;       ///< light-weight host manager core
    double dramPjPerByte = 20.0;  ///< DRAM access energy

    /** Host CPU power while running per-invocation glue: the marshaling
     *  share when kernels are offloaded vs. the full CPU package power
     *  when the whole application stays on the CPU. */
    double glueOffloadWatts = 15.0;
    double glueCpuWatts = 80.0;

    /** Fraction of the tuned native-library efficiency the host achieves
     *  when a partition *degrades* onto it at runtime: a fault-triggered
     *  fallback runs the compiler's portable host lowering, not the
     *  Table II hand-optimized library the cpuEff calibrations assume.
     *  In (0, 1]; 1 models fallback into the native library itself. */
    double hostFallbackEff = 0.25;

    // Streaming orchestrator knobs (soc::StreamScheduler).

    /** Admission bound: jobs admitted but not yet finished. Arrivals
     *  beyond this are load-shed (rejected with accounting, never
     *  silently dropped). */
    int streamMaxPending = 64;

    /** Host-manager admission + dispatch latency per admitted job. It is
     *  queueing delay, charged to the job's stream latency and deadline —
     *  never to its PerfReport, which stays bit-identical to a sequential
     *  SocRuntime::execute. */
    double streamDispatchUs = 2.0;

    /** Virtual-time length of an AcceleratorUnavailable outage in the
     *  stream: the backend rejects placements until it repairs, and
     *  queued/in-flight partitions migrate to the host or a compatible
     *  accelerator meanwhile. */
    double streamOutageSeconds = 0.05;

    /** Rejects configurations the DMA/energy model would divide by zero
     *  on or produce negative costs from.
     *  @throws UserError on non-positive dmaGBs/perTransferUs/hostWatts,
     *  negative energy/glue coefficients, or stream knobs the scheduler
     *  cannot honor (non-positive streamMaxPending, negative dispatch or
     *  outage latencies). */
    void validate() const;
};

SocConfig socConfig();

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_MACHINE_CONFIG_H_
