/**
 * @file
 * Machine-independent cost summary of a workload, consumed by the CPU/GPU
 * baseline models. Produced by the workload suite from the srDFG's exact
 * scalar-op counts and tensor footprints at deployed scale.
 */
#ifndef POLYMATH_TARGETS_COMMON_WORKLOAD_COST_H_
#define POLYMATH_TARGETS_COMMON_WORKLOAD_COST_H_

#include <cstdint>

#include "pmlang/ast.h"

namespace polymath::target {

/** Per-invocation cost characteristics at deployed scale. */
struct WorkloadCost
{
    lang::Domain domain = lang::Domain::None;

    int64_t flops = 0;        ///< scalar ops per invocation
    int64_t bytes = 0;        ///< DRAM traffic per invocation
    int64_t kernels = 1;      ///< kernel/fragment launches per invocation
    int64_t invocations = 1;  ///< outer iterations

    /** Typical per-kernel parallel width (elements processable
     *  concurrently); drives GPU occupancy. */
    double parallelWidth = 1.0;

    /** Graph-analytics style data-dependent random access. */
    bool irregular = false;

    /** Achieved fraction of CPU peak for this workload's tuned native
     *  library (0 = use the domain default). Table V names the library
     *  per domain; per-benchmark values calibrate to its published
     *  throughput on kernels of this size. */
    double cpuEff = 0.0;

    /** Same, for the tuned CUDA library at full occupancy. */
    double gpuEff = 0.0;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_WORKLOAD_COST_H_
