/**
 * @file
 * Performance/energy accounting shared by every backend simulator.
 */
#ifndef POLYMATH_TARGETS_COMMON_PERF_REPORT_H_
#define POLYMATH_TARGETS_COMMON_PERF_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>

namespace polymath::target {

struct CostLedger;

/** Result of simulating one partition (or whole program) on a machine. */
struct PerfReport
{
    std::string machine;

    double seconds = 0.0;     ///< wall-clock execution time
    double joules = 0.0;      ///< energy over that time
    double computeSeconds = 0.0; ///< compute-bound component
    double memorySeconds = 0.0;  ///< memory-bound component
    double overheadSeconds = 0.0; ///< launch / host / pipeline-fill

    int64_t flops = 0;        ///< scalar operations executed
    int64_t dramBytes = 0;    ///< off-chip traffic
    double utilization = 0.0; ///< achieved / peak compute

    /** Per-fragment cost attribution (cost_ledger.h); null unless
     *  profiling was enabled during simulation. Copies of a report alias
     *  one ledger, which is treated as immutable once simulate()
     *  returns; operator+= always builds a fresh merged ledger rather
     *  than mutating either side's. */
    std::shared_ptr<CostLedger> ledger;

    double watts() const { return seconds > 0 ? joules / seconds : 0.0; }

    /** Accumulates another report (sequential composition). */
    PerfReport &operator+=(const PerfReport &other);

    std::string str() const;
};

/**
 * Runtime improvement of candidate over baseline: time_b / time_c.
 * Edge cases are explicit: a zero-second candidate is infinitely faster
 * (+inf) when the baseline took time, and 1.0 (a tie) when both are
 * zero-second — never a silent 0.0, which would read as a slowdown.
 */
double speedup(const PerfReport &baseline, const PerfReport &candidate);

/** Energy improvement of candidate over baseline: joules_b / joules_c,
 *  with the same explicit zero-candidate convention as speedup(). */
double energyReduction(const PerfReport &baseline,
                       const PerfReport &candidate);

/** Performance-per-watt improvement of candidate over baseline, with
 *  the same explicit zero-candidate convention as speedup(). */
double ppwImprovement(const PerfReport &baseline,
                      const PerfReport &candidate);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_PERF_REPORT_H_
