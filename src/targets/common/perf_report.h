/**
 * @file
 * Performance/energy accounting shared by every backend simulator.
 */
#ifndef POLYMATH_TARGETS_COMMON_PERF_REPORT_H_
#define POLYMATH_TARGETS_COMMON_PERF_REPORT_H_

#include <cstdint>
#include <string>

namespace polymath::target {

/** Result of simulating one partition (or whole program) on a machine. */
struct PerfReport
{
    std::string machine;

    double seconds = 0.0;     ///< wall-clock execution time
    double joules = 0.0;      ///< energy over that time
    double computeSeconds = 0.0; ///< compute-bound component
    double memorySeconds = 0.0;  ///< memory-bound component
    double overheadSeconds = 0.0; ///< launch / host / pipeline-fill

    int64_t flops = 0;        ///< scalar operations executed
    int64_t dramBytes = 0;    ///< off-chip traffic
    double utilization = 0.0; ///< achieved / peak compute

    double watts() const { return seconds > 0 ? joules / seconds : 0.0; }

    /** Accumulates another report (sequential composition). */
    PerfReport &operator+=(const PerfReport &other);

    std::string str() const;
};

/** runtime improvement of b over a: time_a / time_b. */
double speedup(const PerfReport &baseline, const PerfReport &candidate);

/** energy improvement of b over a: joules_a / joules_b. */
double energyReduction(const PerfReport &baseline,
                       const PerfReport &candidate);

/** performance-per-watt improvement of candidate over baseline. */
double ppwImprovement(const PerfReport &baseline,
                      const PerfReport &candidate);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_COMMON_PERF_REPORT_H_
