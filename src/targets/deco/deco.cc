#include "targets/deco/deco.h"

#include <algorithm>
#include <cmath>

#include "targets/common/cost_ledger.h"
#include "targets/common/op_sets.h"

namespace polymath::target {

lower::AcceleratorSpec
DecoBackend::spec() const
{
    lower::AcceleratorSpec s;
    s.name = name();
    s.domain = domain();
    using ir::OpCode;
    ir::OpSet extra = {OpCode::Sin,  OpCode::Cos, OpCode::Tan,
                       OpCode::Sqrt, OpCode::Exp, OpCode::Ln,
                       OpCode::Log,  OpCode::Pow, OpCode::Re,
                       OpCode::Im,   OpCode::Conj, OpCode::Sum,
                       OpCode::Prod};
    extra.insert("@custom_reduce");
    s.supportedOps = opsUnion(scalarAluOps(), extra);
    s.supportedOps.merge(groupOps());
    return s;
}

double
DecoBackend::stageImbalance(const lower::Partition &partition)
{
    const auto levels = fragmentLevels(partition);
    double max_work = 0.0;
    double total = 0.0;
    int64_t stages = 0;
    for (const auto &level : levels) {
        double w = 0.0;
        for (const auto *frag : level)
            w += static_cast<double>(fragmentWork(*frag));
        if (w <= 0)
            continue;
        max_work = std::max(max_work, w);
        total += w;
        ++stages;
    }
    if (stages == 0 || total <= 0)
        return 1.0;
    return max_work / (total / static_cast<double>(stages));
}

PerfReport
DecoBackend::simulateImpl(const lower::Partition &partition,
                      const WorkloadProfile &profile) const
{
    const MachineConfig m = machine();
    PerfReport r;
    r.machine = name();

    constexpr double kPipelineDepth = 24.0; // DSP chain fill latency

    // Stage-based execution: every dependence level streams its elements
    // through the DSP columns; the slowest stage bounds the pipeline, so
    // imbalance stretches total cycles.
    const auto levels = fragmentLevels(partition);
    const auto invariant = invariantFragments(partition);
    std::map<const lower::IrFragment *, bool> invariant_of;
    {
        size_t i = 0;
        for (const auto &frag : partition.fragments)
            invariant_of[&frag] = invariant[i++];
    }
    const double lanes = static_cast<double>(m.computeUnits);
    double cycles = 0.0;
    double fill_cycles = 0.0;
    for (const auto &level : levels) {
        double level_flops = 0.0;
        for (const auto *frag : level) {
            if (invariant_of[frag])
                fill_cycles += std::ceil(
                    static_cast<double>(fragmentWork(*frag)) / lanes);
            else
                level_flops += static_cast<double>(fragmentWork(*frag));
        }
        if (level_flops <= 0)
            continue;
        cycles += std::ceil(level_flops / lanes);
        fill_cycles += kPipelineDepth;
    }
    const double imbalance = stageImbalance(partition);
    // Stalls from unbalanced stages: linear penalty above balanced.
    cycles *= 1.0 + 0.3 * (std::min(imbalance, 3.0) - 1.0);
    cycles *= profile.scale;

    const double hz = m.freqGhz * 1e9;
    const double invocations = static_cast<double>(profile.invocations);
    // Streaming execution: the chain fills once; back-to-back frames keep
    // the pipelines primed.
    r.computeSeconds = (cycles * invocations + fill_cycles) / hz;

    const auto dma = dmaBreakdown(partition);
    r.dramBytes = dma.oneTimeBytes +
                  static_cast<int64_t>(dma.perRunBytes * invocations);
    r.memorySeconds = static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);
    r.overheadSeconds = m.launchOverheadUs * 1e-6 * invocations;

    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.overheadSeconds;
    r.flops = static_cast<int64_t>(
        static_cast<double>(partition.flops()) * profile.scale *
        invocations);
    r.utilization =
        r.seconds > 0
            ? static_cast<double>(r.flops) / (m.peakFlops() * r.seconds)
            : 0.0;
    r.joules = m.watts * r.seconds;

    if (CostLedger *ledger = beginLedger(r, r.machine)) {
        // Raw fragment weight: its DSP-column issue slots. The stage
        // imbalance penalty, the per-level ceil() rounding, and the
        // chain-fill latency are schedule-level costs -> one residual.
        double attributed = 0.0;
        size_t i = 0;
        for (const auto &frag : partition.fragments) {
            const size_t index = i++;
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            const double slots =
                static_cast<double>(fragmentWork(frag)) / lanes / hz;
            const double raw =
                invariant[index] ? slots
                                 : slots * profile.scale * invocations;
            ledger->addFragment(static_cast<int>(index), frag, raw);
            attributed += raw;
        }
        ledger->addComputeResidual("stage-imbalance+pipeline-fill",
                                   r.computeSeconds - attributed);
        ledger->addDma(static_cast<double>(dma.oneTimeBytes),
                       static_cast<double>(dma.perRunBytes) * invocations,
                       m.dramGBs);
        ledger->addOverhead(r.overheadSeconds);
        finalizeLedger(r, m);
    }
    return r;
}

} // namespace polymath::target
