#include "targets/deco/chain_mapper.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/error.h"
#include "core/strings.h"
#include "targets/common/backend.h"

namespace polymath::target {

double
ChainMap::avgChainLength() const
{
    if (chains.empty())
        return 0.0;
    size_t total = 0;
    for (const auto &chain : chains)
        total += chain.ops.size();
    return static_cast<double>(total) /
           static_cast<double>(chains.size());
}

std::string
ChainMap::str() const
{
    std::string out =
        format("%zu chains over %lld waves, %lld cycles (+%lld fill), DSP "
               "utilization ",
               chains.size(), static_cast<long long>(waves),
               static_cast<long long>(cycles),
               static_cast<long long>(fillCycles)) +
        formatF(dspUtilization * 100.0, 1) + "%\n";
    for (const auto &chain : chains) {
        out += format("  wave %lld, %lld elems:",
                      static_cast<long long>(chain.wave),
                      static_cast<long long>(chain.elements));
        for (const auto *op : chain.ops)
            out += " " + op->opcode;
        out += "\n";
    }
    return out;
}

ChainMap
mapChains(const lower::Partition &partition, const ChainConfig &config)
{
    if (config.dspBlocks <= 0)
        panic("mapChains(): bad configuration");

    // Compute fragments, their producers/consumers by tensor name.
    struct Item
    {
        const lower::IrFragment *frag = nullptr;
        int64_t elements = 1;
        std::vector<size_t> producers;
        int consumers = 0;
        int chain = -1;
    };
    std::vector<Item> items;
    std::map<std::string, size_t> writer;
    for (const auto &frag : partition.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        if (frag.flops <= 0 && !frag.attrs.count("move_elems"))
            continue;
        Item item;
        item.frag = &frag;
        int64_t elements = 1;
        for (const auto &[key, value] : frag.attrs) {
            if (key.rfind("dim", 0) == 0)
                elements *= value;
        }
        item.elements = std::max<int64_t>(elements, 1);
        for (const auto &in : frag.inputs) {
            auto it = writer.find(in.name);
            if (it != writer.end())
                item.producers.push_back(it->second);
        }
        const size_t index = items.size();
        items.push_back(std::move(item));
        for (const auto &out : frag.outputs)
            writer[out.name] = index;
    }
    for (const auto &item : items) {
        for (size_t p : item.producers)
            ++items[p].consumers;
    }

    ChainMap result;
    if (items.empty())
        return result;

    // Greedy chain formation: extend a chain through its unique consumer
    // while the element count matches (II=1 fusion is only legal when the
    // stages stream the same index space).
    std::vector<int> chain_of(items.size(), -1);
    for (size_t i = 0; i < items.size(); ++i) {
        if (chain_of[i] >= 0)
            continue;
        // Only start a chain at a fragment that is not the fusable
        // continuation of another (its single producer would claim it).
        bool is_continuation = false;
        if (items[i].producers.size() == 1) {
            const size_t p = items[i].producers.front();
            is_continuation = items[p].consumers == 1 &&
                              items[p].elements == items[i].elements;
        }
        if (is_continuation)
            continue;
        MappedChain chain;
        size_t cur = i;
        while (true) {
            chain_of[cur] = static_cast<int>(result.chains.size());
            chain.ops.push_back(items[cur].frag);
            chain.elements =
                std::max(chain.elements, items[cur].elements);
            // Find the unique fusable consumer.
            size_t next = items.size();
            int found = 0;
            for (size_t j = 0; j < items.size(); ++j) {
                if (chain_of[j] >= 0)
                    continue;
                for (size_t p : items[j].producers) {
                    if (p == cur && items[cur].consumers == 1 &&
                        items[j].elements == items[cur].elements &&
                        items[j].producers.size() == 1) {
                        next = j;
                        ++found;
                    }
                }
            }
            if (found != 1)
                break;
            cur = next;
        }
        result.chains.push_back(std::move(chain));
    }
    // Any fragment skipped as a "continuation" whose producer chain ended
    // elsewhere becomes its own chain.
    for (size_t i = 0; i < items.size(); ++i) {
        if (chain_of[i] >= 0)
            continue;
        MappedChain chain;
        chain.ops.push_back(items[i].frag);
        chain.elements = items[i].elements;
        chain_of[i] = static_cast<int>(result.chains.size());
        result.chains.push_back(std::move(chain));
    }

    // Chain DAG waves: a chain waits for every producer chain.
    std::vector<int64_t> wave(result.chains.size(), 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < items.size(); ++i) {
            for (size_t p : items[i].producers) {
                if (chain_of[p] == chain_of[i])
                    continue;
                const auto ci = static_cast<size_t>(chain_of[i]);
                const auto cp = static_cast<size_t>(chain_of[p]);
                if (wave[ci] < wave[cp] + 1) {
                    wave[ci] = wave[cp] + 1;
                    changed = true;
                }
            }
        }
    }
    for (size_t c = 0; c < result.chains.size(); ++c)
        result.chains[c].wave = wave[c];

    // Execute wave by wave: concurrent chains share the DSP blocks.
    int64_t max_wave = 0;
    for (int64_t w : wave)
        max_wave = std::max(max_wave, w);
    result.waves = max_wave + 1;
    double busy_blocks = 0.0;
    for (int64_t w = 0; w <= max_wave; ++w) {
        int64_t depth_sum = 0;
        for (const auto &chain : result.chains) {
            if (chain.wave == w)
                depth_sum += static_cast<int64_t>(chain.ops.size());
        }
        if (depth_sum == 0)
            continue;
        // Lanes replicate whole chains; each lane consumes `depth` blocks
        // and retires one element per cycle.
        int64_t wave_cycles = 0;
        for (const auto &chain : result.chains) {
            if (chain.wave != w)
                continue;
            const int64_t depth =
                static_cast<int64_t>(chain.ops.size());
            const int64_t lanes = std::max<int64_t>(
                1, (config.dspBlocks * depth / depth_sum) / depth);
            wave_cycles = std::max(
                wave_cycles, (chain.elements + lanes - 1) / lanes);
            result.fillCycles +=
                depth * config.fillPerStage;
            busy_blocks += static_cast<double>(depth * lanes);
        }
        result.cycles += wave_cycles;
    }
    result.dspUtilization =
        result.waves > 0
            ? busy_blocks / (static_cast<double>(config.dspBlocks) *
                             static_cast<double>(result.waves))
            : 0.0;
    result.dspUtilization = std::min(result.dspUtilization, 1.0);
    return result;
}

} // namespace polymath::target
