/**
 * @file
 * DECO chain mapper.
 *
 * DECO organizes computation as pipelined chains of DSP blocks behind a
 * low-overhead interconnect. This engine performs the mapping step a
 * DECO compiler would: it groups the translated fragments into maximal
 * fusable chains (single-consumer dataflow paths over equal element
 * counts), allocates lanes of DSP blocks to concurrent chains, and walks
 * the chain DAG in waves — each wave streaming its elements at II=1 plus
 * the chain-depth fill. It reports the chain structure and DSP
 * utilization the analytic model (deco.h) abstracts as dependence levels.
 *
 * bench_deco_chains cross-checks it on the DSP workloads.
 */
#ifndef POLYMATH_TARGETS_DECO_CHAIN_MAPPER_H_
#define POLYMATH_TARGETS_DECO_CHAIN_MAPPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lower/compile.h"

namespace polymath::target {

/** Overlay geometry for the mapper. */
struct ChainConfig
{
    int64_t dspBlocks = 1024;  ///< total DSP blocks in the overlay
    int64_t fillPerStage = 3;  ///< pipeline registers per chained op
    double freqGhz = 0.15;
};

/** One mapped chain of fused fragments. */
struct MappedChain
{
    std::vector<const lower::IrFragment *> ops; ///< in dataflow order
    int64_t elements = 0; ///< streamed elements (per invocation)
    int64_t wave = 0;     ///< DAG wave this chain executes in
};

/** Result of mapping one partition. */
struct ChainMap
{
    std::vector<MappedChain> chains;
    int64_t waves = 0;
    int64_t cycles = 0;       ///< per-invocation steady-state cycles
    int64_t fillCycles = 0;   ///< one-time pipeline fill
    double dspUtilization = 0.0;

    double avgChainLength() const;
    std::string str() const;
};

/** Maps @p partition's compute fragments onto the overlay. */
ChainMap mapChains(const lower::Partition &partition,
                   const ChainConfig &config);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_DECO_CHAIN_MAPPER_H_
