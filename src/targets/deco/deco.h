/**
 * @file
 * DECO backend: a DSP-block-based FPGA overlay with low-overhead
 * interconnect (Jain et al., FCCM'16). Computation is organized as
 * stage-based pipelines of DSP columns; throughput is one result per lane
 * per cycle when the dataflow graph is balanced, degrading with stage
 * imbalance — which is exactly the overhead PolyMath-translated graphs
 * exhibit relative to hand-balanced implementations (Fig. 9).
 */
#ifndef POLYMATH_TARGETS_DECO_DECO_H_
#define POLYMATH_TARGETS_DECO_DECO_H_

#include <utility>

#include "targets/common/backend.h"

namespace polymath::target {

class DecoBackend : public Backend
{
  public:
    DecoBackend() : Backend(decoConfig()) {}
    explicit DecoBackend(MachineConfig machine)
        : Backend(std::move(machine))
    {
    }

    std::string name() const override { return "DECO"; }
    lang::Domain domain() const override { return lang::Domain::DSP; }
    lower::AcceleratorSpec spec() const override;
    PerfReport simulateImpl(const lower::Partition &partition,
                        const WorkloadProfile &profile) const override;

    /** Stage imbalance of the compiled pipeline: max/mean level work
     *  (1.0 = perfectly balanced). Exposed for the Fig. 9 analysis. */
    static double stageImbalance(const lower::Partition &partition);
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_DECO_DECO_H_
