/**
 * @file
 * Xeon-class baseline model. Represents the paper's optimized native CPU
 * implementations (Table V: ACADO, GraphMat, mlpack/OpenBLAS, FFTW,
 * TensorFlow): achieved efficiency relative to peak differs per domain and
 * is the model's calibration surface.
 */
#ifndef POLYMATH_TARGETS_CPU_CPU_MODEL_H_
#define POLYMATH_TARGETS_CPU_CPU_MODEL_H_

#include <utility>

#include "targets/common/machine_config.h"
#include "targets/common/perf_report.h"
#include "targets/common/workload_cost.h"

namespace polymath::target {

class CpuModel
{
  public:
    CpuModel() : config_(xeonConfig()) {}
    explicit CpuModel(MachineConfig config) : config_(std::move(config))
    {
        config_.validate();
    }

    const MachineConfig &config() const { return config_; }

    /** Fraction of peak flops the tuned native stack achieves for
     *  @p domain's kernels. */
    static double domainEfficiency(lang::Domain domain, bool irregular);

    PerfReport simulate(const WorkloadCost &cost) const;

  private:
    MachineConfig config_;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_CPU_CPU_MODEL_H_
