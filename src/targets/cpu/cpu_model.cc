#include "targets/cpu/cpu_model.h"

#include <algorithm>

namespace polymath::target {

double
CpuModel::domainEfficiency(lang::Domain domain, bool irregular)
{
    if (irregular)
        return 0.01; // pointer-chasing graph kernels: ~2 ops/cycle chip-wide
    switch (domain) {
      case lang::Domain::RBT:
        // ACADO-generated C for small dense matrices: single-core, scalar.
        return 0.035;
      case lang::Domain::GA:
        return 0.01;
      case lang::Domain::DSP:
        // FFTW3 / filter kernels: SIMD but butterfly-strided.
        return 0.16;
      case lang::Domain::DA:
        // mlpack on OpenBLAS: GEMV/GEMM-heavy.
        return 0.28;
      case lang::Domain::DL:
        // TensorFlow + MKL-DNN convolutions.
        return 0.45;
      case lang::Domain::None:
        return 0.10;
    }
    return 0.10;
}

PerfReport
CpuModel::simulate(const WorkloadCost &cost) const
{
    PerfReport r;
    r.machine = config_.name;

    const double eff = cost.cpuEff > 0
                           ? cost.cpuEff
                           : domainEfficiency(cost.domain, cost.irregular);
    const double inv = static_cast<double>(cost.invocations);
    const double flops = static_cast<double>(cost.flops) * inv;
    const double bytes = static_cast<double>(cost.bytes) * inv;

    r.computeSeconds = flops / (config_.peakFlops() * eff);
    const double bw =
        cost.irregular ? config_.dramGBs * 0.35 : config_.dramGBs;
    r.memorySeconds = bytes / (bw * 1e9);
    r.overheadSeconds = 0.0;

    r.seconds = std::max(r.computeSeconds, r.memorySeconds);
    r.flops = static_cast<int64_t>(flops);
    r.dramBytes = static_cast<int64_t>(bytes);
    r.utilization =
        r.seconds > 0 ? flops / (config_.peakFlops() * r.seconds) : 0.0;
    r.joules = config_.watts * r.seconds;
    return r;
}

} // namespace polymath::target
