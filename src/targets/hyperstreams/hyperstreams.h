/**
 * @file
 * HyperStreams backend: deeply pipelined FPGA arithmetic for option
 * pricing (Morris & Aubury, FPL'07). The whole Black-Scholes formula is
 * compiled into one initiation-interval-1 pipeline; PolyMath keeps the
 * `black_scholes` component at its coarsest granularity and hands it over
 * whole, the way a hand-written HyperStreams design would consume it.
 */
#ifndef POLYMATH_TARGETS_HYPERSTREAMS_HYPERSTREAMS_H_
#define POLYMATH_TARGETS_HYPERSTREAMS_HYPERSTREAMS_H_

#include <utility>

#include "targets/common/backend.h"

namespace polymath::target {

class HyperstreamsBackend : public Backend
{
  public:
    HyperstreamsBackend() : Backend(hyperstreamsConfig()) {}
    explicit HyperstreamsBackend(MachineConfig machine)
        : Backend(std::move(machine))
    {
    }

    std::string name() const override { return "HyperStreams"; }
    lang::Domain domain() const override { return lang::Domain::DA; }
    lower::AcceleratorSpec spec() const override;
    PerfReport simulateImpl(const lower::Partition &partition,
                        const WorkloadProfile &profile) const override;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_HYPERSTREAMS_HYPERSTREAMS_H_
