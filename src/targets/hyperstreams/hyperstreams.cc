#include "targets/hyperstreams/hyperstreams.h"

#include <algorithm>
#include <cmath>

#include "targets/common/cost_ledger.h"
#include "targets/common/op_sets.h"

namespace polymath::target {

lower::AcceleratorSpec
HyperstreamsBackend::spec() const
{
    lower::AcceleratorSpec s;
    s.name = name();
    s.domain = domain();
    // Registered after TABLA for DA: only chosen for its preferred
    // component, which it accepts whole (coarsest granularity).
    const ir::Op bs = ir::Op::intern("black_scholes");
    s.supportedOps = {bs};
    s.preferredComponents = {bs};
    s.translators[bs] =
        [](const ir::Graph &g, const ir::Node &n) {
            auto frag = lower::genericTranslate(g, n);
            frag.opcode = "pipeline/black_scholes";
            // Elements streamed = extent of the option batch.
            int64_t options = 0;
            for (const auto &in : frag.inputs) {
                if (in.shape.rank() >= 1)
                    options = std::max(options, in.shape.dim(0));
            }
            frag.attrs["elements"] = options;
            return frag;
        };
    return s;
}

PerfReport
HyperstreamsBackend::simulateImpl(const lower::Partition &partition,
                              const WorkloadProfile &profile) const
{
    const MachineConfig m = machine();
    PerfReport r;
    r.machine = name();

    constexpr double kPipelineDepth = 180.0; // exp/ln/sqrt/erf chain

    double cycles = 0.0;
    for (const auto &frag : partition.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        auto it = frag.attrs.find("elements");
        if (it != frag.attrs.end() && it->second > 0) {
            // II = 1: one option per cycle once the pipeline fills.
            cycles += static_cast<double>(it->second) + kPipelineDepth;
        } else {
            // Anything else retires over the pipeline stages.
            cycles += std::ceil(
                static_cast<double>(frag.flops) /
                static_cast<double>(m.computeUnits));
        }
    }
    cycles *= profile.scale;

    const double hz = m.freqGhz * 1e9;
    const double invocations = static_cast<double>(profile.invocations);
    r.computeSeconds = cycles / hz * invocations;

    const auto dma = dmaBreakdown(partition);
    r.dramBytes = dma.oneTimeBytes +
                  static_cast<int64_t>(dma.perRunBytes * invocations);
    r.memorySeconds = static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);
    r.overheadSeconds = m.launchOverheadUs * 1e-6 * invocations;

    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.overheadSeconds;
    r.flops = static_cast<int64_t>(
        static_cast<double>(partition.flops()) * profile.scale *
        invocations);
    r.utilization =
        r.seconds > 0
            ? static_cast<double>(r.flops) / (m.peakFlops() * r.seconds)
            : 0.0;
    r.joules = m.watts * r.seconds;

    if (CostLedger *ledger = beginLedger(r, r.machine)) {
        // Per-fragment cycles (elements + fill, or flops over stages)
        // are computed independently and summed, so attribution is exact.
        size_t i = 0;
        for (const auto &frag : partition.fragments) {
            const size_t index = i++;
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            double frag_cycles = 0.0;
            auto it = frag.attrs.find("elements");
            if (it != frag.attrs.end() && it->second > 0) {
                frag_cycles =
                    static_cast<double>(it->second) + kPipelineDepth;
            } else {
                frag_cycles = std::ceil(
                    static_cast<double>(frag.flops) /
                    static_cast<double>(m.computeUnits));
            }
            const double raw =
                frag_cycles * profile.scale * invocations / hz;
            ledger->addFragment(static_cast<int>(index), frag, raw);
        }
        ledger->addDma(static_cast<double>(dma.oneTimeBytes),
                       static_cast<double>(dma.perRunBytes) * invocations,
                       m.dramGBs);
        ledger->addOverhead(r.overheadSeconds);
        finalizeLedger(r, m);
    }
    return r;
}

} // namespace polymath::target
