#include "targets/graphicionado/graphicionado.h"

#include <algorithm>
#include <cmath>

#include "targets/common/cost_ledger.h"
#include "targets/common/op_sets.h"

namespace polymath::target {

namespace {

/** Edge-domain fragments iterate a (dst x src) domain or fold neighbors;
 *  vertex-domain fragments iterate one vertex axis. */
bool
isEdgeDomain(const lower::IrFragment &frag)
{
    return frag.attrs.count("dim1") > 0 ||
           frag.attrs.count("reduce_extent") > 0;
}

/** Scalar ops per domain point of a fragment. */
double
opsPerPoint(const lower::IrFragment &frag)
{
    double points = 1.0;
    for (const auto &[key, v] : frag.attrs) {
        if (key.rfind("dim", 0) == 0)
            points *= static_cast<double>(v);
    }
    if (points <= 0)
        return 0.0;
    return static_cast<double>(frag.flops) / points;
}

} // namespace

lower::AcceleratorSpec
GraphicionadoBackend::spec() const
{
    lower::AcceleratorSpec s;
    s.name = name();
    s.domain = domain();
    using ir::OpCode;
    ir::OpSet extra = {OpCode::Sum, OpCode::Prod};
    extra.insert("@custom_reduce");
    s.supportedOps = opsUnion(scalarAluOps(), extra);
    s.supportedOps.merge(groupOps());

    // Vertex-program rendering: neighbor folds become Process/Reduce
    // pipeline blocks, vertex-wide maps become Apply blocks (Fig. 6c).
    s.translators[OpCode::Sum] = s.translators[OpCode::Min] =
        s.translators[OpCode::Max] =
        [](const ir::Graph &g, const ir::Node &n) {
            auto frag = lower::genericTranslate(g, n);
            frag.opcode = "process_edges/" + n.op.str();
            return frag;
        };
    return s;
}

PerfReport
GraphicionadoBackend::simulateImpl(const lower::Partition &partition,
                               const WorkloadProfile &profile) const
{
    const MachineConfig m = machine();
    PerfReport r;
    r.machine = name();

    // Derive per-edge and per-vertex op counts from the compiled instance;
    // apply them to the deployed dataset's V/E.
    double ops_per_edge = 0.0;
    double ops_per_vertex = 0.0;
    for (const auto &frag : partition.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        if (isEdgeDomain(frag))
            ops_per_edge += opsPerPoint(frag);
        else
            ops_per_vertex += opsPerPoint(frag);
    }
    const double vertices = static_cast<double>(
        std::max<int64_t>(profile.vertices, 1));
    const double edges =
        static_cast<double>(std::max<int64_t>(profile.edges, 1));
    const double iters = static_cast<double>(profile.invocations);

    // Eight pipelines; each retires one edge per cycle while the per-edge
    // op chain fits its stage depth (the pipeline executes the chain in a
    // spatially unrolled fashion).
    constexpr double kStageDepth = 8.0;
    // Atomic-update serialization on skewed degree distributions,
    // calibrated against the trace-driven simulator (pipeline_sim.h) on
    // the Table III R-MAT graphs at the baseline 32 banks per pipe.
    // Conflicts thin out as banks are added (sqrt birthday-bound
    // scaling); exactly 1.3 at the Table VI default.
    const double conflict_factor =
        1.3 * std::sqrt(32.0 / static_cast<double>(m.banksPerPipe));
    const double pipes = static_cast<double>(m.computeUnits);
    const double edge_cycles =
        edges * std::ceil(std::max(ops_per_edge, 1.0) / kStageDepth) *
        conflict_factor / pipes;
    const double vertex_cycles =
        vertices * std::ceil(std::max(ops_per_vertex, 1.0) / kStageDepth) /
        pipes;

    // Vertex properties resident on-chip? (16 B per vertex: prop + temp.)
    const double vertex_bytes = vertices * 16.0;
    const bool resident =
        vertex_bytes <= static_cast<double>(m.onChipBytes);
    // Off-chip random vertex accesses throttle the pipelines.
    const double random_penalty = resident ? 1.0 : 3.5;

    const double hz = m.freqGhz * 1e9;
    double cycles = (edge_cycles * random_penalty + vertex_cycles) * iters;
    r.computeSeconds = cycles / hz;

    // Edge stream from DRAM every iteration (8 B per edge), vertex
    // properties once.
    r.dramBytes = static_cast<int64_t>(edges * 8.0 * iters +
                                       vertex_bytes);
    r.memorySeconds = static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);
    r.overheadSeconds = m.launchOverheadUs * 1e-6 * iters;

    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.overheadSeconds;
    r.flops = static_cast<int64_t>(
        (edges * ops_per_edge + vertices * ops_per_vertex) * iters);
    // Pipelines retire several ops per edge per cycle; report utilization
    // against that effective capability, capped at 1.
    r.utilization =
        r.seconds > 0
            ? std::min(1.0, static_cast<double>(r.flops) /
                                (m.peakFlops() * kStageDepth * r.seconds))
            : 0.0;
    r.joules = m.watts * r.seconds;

    if (CostLedger *ledger = beginLedger(r, r.machine)) {
        // The model prices two phase pools (edge pipeline, vertex apply);
        // each fragment's raw weight is its ops-per-point share of its
        // phase's pool. Flop weights are re-derived on the deployed
        // dataset so edge- and vertex-domain fragments scale by E and V
        // respectively, matching r.flops.
        const double edge_pool = edge_cycles * random_penalty * iters / hz;
        const double vertex_pool = vertex_cycles * iters / hz;
        double edge_attr = 0.0;
        double vertex_attr = 0.0;
        size_t i = 0;
        for (const auto &frag : partition.fragments) {
            const size_t index = i++;
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            const double ops = opsPerPoint(frag);
            const bool edge_domain = isEdgeDomain(frag);
            double raw = 0.0;
            if (edge_domain && ops_per_edge > 0)
                raw = edge_pool * ops / ops_per_edge;
            else if (!edge_domain && ops_per_vertex > 0)
                raw = vertex_pool * ops / ops_per_vertex;
            CostEntry &e =
                ledger->addFragment(static_cast<int>(index), frag, raw);
            e.flops = ops * (edge_domain ? edges : vertices) * iters;
            (edge_domain ? edge_attr : vertex_attr) += raw;
        }
        // The max(ops, 1) pipeline floor leaves pool time no fragment
        // claims (pure traversal with no per-point arithmetic).
        ledger->addComputeResidual("edge-pipeline traversal floor",
                                   edge_pool - edge_attr);
        ledger->addComputeResidual("vertex-apply traversal floor",
                                   vertex_pool - vertex_attr);
        ledger->addDma(vertex_bytes, edges * 8.0 * iters, m.dramGBs);
        ledger->addOverhead(r.overheadSeconds);
        finalizeLedger(r, m);
    }
    return r;
}

} // namespace polymath::target
