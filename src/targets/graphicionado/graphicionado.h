/**
 * @file
 * Graphicionado backend: a pipelined vertex-programming ASIC for graph
 * analytics (Ham et al., MICRO'16). Translated programs take the
 * process/reduce/apply pipeline-block form of Fig. 6 in the PolyMath
 * paper; the simulator streams the dataset's edges through the parallel
 * pipelines, with vertex properties held in the eDRAM scratchpad when
 * they fit.
 */
#ifndef POLYMATH_TARGETS_GRAPHICIONADO_GRAPHICIONADO_H_
#define POLYMATH_TARGETS_GRAPHICIONADO_GRAPHICIONADO_H_

#include <utility>

#include "targets/common/backend.h"

namespace polymath::target {

class GraphicionadoBackend : public Backend
{
  public:
    GraphicionadoBackend() : Backend(graphicionadoConfig()) {}
    explicit GraphicionadoBackend(MachineConfig machine)
        : Backend(std::move(machine))
    {
    }

    std::string name() const override { return "Graphicionado"; }
    lang::Domain domain() const override { return lang::Domain::GA; }
    lower::AcceleratorSpec spec() const override;
    PerfReport simulateImpl(const lower::Partition &partition,
                        const WorkloadProfile &profile) const override;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_GRAPHICIONADO_GRAPHICIONADO_H_
