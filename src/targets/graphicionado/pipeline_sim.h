/**
 * @file
 * Trace-driven Graphicionado pipeline simulator.
 *
 * The backend's analytic model (graphicionado.h) costs a workload from
 * aggregate V/E counts. This simulator instead streams a concrete edge
 * list through the modeled microarchitecture: P parallel edge pipelines,
 * destination-interleaved atomic-update banks (same-bank updates in the
 * same cycle serialize — the reduce stage's read-modify-write hazard),
 * and an eDRAM scratchpad that either holds the vertex property array or
 * forces off-chip vertex accesses with a fixed miss penalty.
 *
 * It exists both as a higher-fidelity cross-check of the analytic model
 * (bench_trace_graphicionado compares them on the Table III graphs) and
 * as the piece a user would extend toward a full Graphicionado study.
 */
#ifndef POLYMATH_TARGETS_GRAPHICIONADO_PIPELINE_SIM_H_
#define POLYMATH_TARGETS_GRAPHICIONADO_PIPELINE_SIM_H_

#include <cstdint>
#include <span>
#include <utility>

#include "targets/common/machine_config.h"
#include "targets/common/perf_report.h"

namespace polymath::target {

/** Microarchitecture parameters of the traced pipeline. */
struct TraceConfig
{
    int pipes = 8;             ///< parallel edge pipelines
    int banksPerPipe = 32;     ///< atomic-update banks = pipes * this
    int stageDepth = 8;        ///< ops retired per edge per cycle
    int missPenalty = 12;      ///< cycles per off-chip vertex access
    int vertexBytes = 16;      ///< property + temp footprint per vertex
    int64_t scratchpadBytes = 64ll * 1024 * 1024;
    double opsPerEdge = 4.0;   ///< from the compiled vertex program
    double opsPerVertex = 2.0; ///< apply-phase ops
    double freqGhz = 1.0;
    double watts = 7.0;
    double dramGBs = 68.0;

    /** Populates the per-edge/per-vertex op counts and machine constants
     *  from a machine config (Table VI row). */
    static TraceConfig fromMachine(const MachineConfig &machine);
};

/** Outcome of streaming the trace. */
struct TraceResult
{
    int64_t cycles = 0;
    int64_t edgesProcessed = 0;
    int64_t bankConflicts = 0; ///< serialized same-bank atomic updates
    int64_t vertexMisses = 0;  ///< off-chip vertex accesses
    int64_t dramBytes = 0;
    bool scratchpadResident = false;

    double seconds(double freq_ghz) const
    {
        return cyclesToSeconds(static_cast<double>(cycles), freq_ghz);
    }

    /** Converts to the common report shape. */
    PerfReport toReport(const TraceConfig &config) const;
};

/**
 * Streams @p edges through the pipeline @p iterations times (one sweep
 * per vertex-program iteration, as in bulk-synchronous BFS/SSSP).
 * Deterministic: no randomness, results depend only on the trace order.
 */
TraceResult simulateEdgeStream(
    std::span<const std::pair<int32_t, int32_t>> edges, int64_t vertices,
    int64_t iterations, const TraceConfig &config);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_GRAPHICIONADO_PIPELINE_SIM_H_
