#include "targets/graphicionado/pipeline_sim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.h"

namespace polymath::target {

TraceConfig
TraceConfig::fromMachine(const MachineConfig &machine)
{
    TraceConfig config;
    config.pipes = static_cast<int>(machine.computeUnits);
    config.banksPerPipe = static_cast<int>(machine.banksPerPipe);
    config.scratchpadBytes = machine.onChipBytes;
    config.freqGhz = machine.freqGhz;
    config.watts = machine.watts;
    config.dramGBs = machine.dramGBs;
    return config;
}

PerfReport
TraceResult::toReport(const TraceConfig &config) const
{
    PerfReport r;
    r.machine = "Graphicionado(trace)";
    r.computeSeconds = seconds(config.freqGhz);
    r.dramBytes = dramBytes;
    r.memorySeconds = static_cast<double>(dramBytes) /
                      (config.dramGBs * 1e9);
    r.seconds = std::max(r.computeSeconds, r.memorySeconds);
    r.flops = static_cast<int64_t>(
        static_cast<double>(edgesProcessed) * config.opsPerEdge);
    r.joules = config.watts * r.seconds;
    r.utilization =
        cycles > 0 ? static_cast<double>(edgesProcessed) /
                         (static_cast<double>(cycles) * config.pipes)
                   : 0.0;
    return r;
}

TraceResult
simulateEdgeStream(std::span<const std::pair<int32_t, int32_t>> edges,
                   int64_t vertices, int64_t iterations,
                   const TraceConfig &config)
{
    if (config.pipes <= 0 || config.banksPerPipe <= 0)
        panic("trace simulator: bad pipeline configuration");

    TraceResult result;
    result.scratchpadResident =
        vertices * config.vertexBytes <= config.scratchpadBytes;

    const int banks = config.pipes * config.banksPerPipe;
    // One edge-stage issue per cycle per pipe; deeper op chains retire an
    // edge only every `issue_interval` cycles.
    const int64_t issue_interval = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::ceil(config.opsPerEdge /
                         static_cast<double>(config.stageDepth))));

    // Per-sweep pipeline walk: take `pipes` edges per cycle group and
    // serialize same-bank destination updates within the group. Updates
    // to the *same vertex* coalesce in the atomic-update unit (hub
    // traffic — the common case in skewed graphs); only distinct-vertex
    // same-bank collisions serialize.
    std::vector<int32_t> bank_busy(static_cast<size_t>(banks), -1);
    std::vector<int32_t> bank_vertex(static_cast<size_t>(banks), -1);
    int64_t cycles_per_sweep = 0;
    int64_t conflicts_per_sweep = 0;
    int64_t misses_per_sweep = 0;
    int32_t group_id = 0;

    for (size_t base = 0; base < edges.size();
         base += static_cast<size_t>(config.pipes)) {
        const size_t end =
            std::min(edges.size(), base + static_cast<size_t>(config.pipes));
        int64_t serialized = 0;
        ++group_id;
        for (size_t e = base; e < end; ++e) {
            const int32_t dst = edges[e].second;
            const auto bank = static_cast<size_t>(dst % banks);
            if (bank_busy[bank] == group_id) {
                if (bank_vertex[bank] == dst)
                    continue; // coalesced same-vertex update
                ++serialized; // distinct vertices, same bank: retry
            } else {
                bank_busy[bank] = group_id;
                bank_vertex[bank] = dst;
            }
        }
        conflicts_per_sweep += serialized;
        cycles_per_sweep += issue_interval + serialized;
        if (!result.scratchpadResident) {
            // Source-property reads go off-chip; one miss per edge in the
            // group, overlapped across pipes (charge the penalty once per
            // group, amortized by MLP of the vertex-read units).
            misses_per_sweep += static_cast<int64_t>(end - base);
            cycles_per_sweep += config.missPenalty;
        }
    }

    // Apply phase: vertices swept once per iteration.
    const int64_t apply_cycles =
        static_cast<int64_t>(std::ceil(
            static_cast<double>(vertices) *
            std::max(1.0, config.opsPerVertex /
                              static_cast<double>(config.stageDepth)) /
            static_cast<double>(config.pipes)));

    result.cycles = (cycles_per_sweep + apply_cycles) * iterations;
    result.edgesProcessed =
        static_cast<int64_t>(edges.size()) * iterations;
    result.bankConflicts = conflicts_per_sweep * iterations;
    result.vertexMisses = misses_per_sweep * iterations;

    // Edge stream from DRAM every sweep; vertex array once if resident,
    // every sweep otherwise.
    const int64_t vertex_bytes = vertices * config.vertexBytes;
    result.dramBytes =
        static_cast<int64_t>(edges.size()) * 8 * iterations +
        (result.scratchpadResident ? vertex_bytes
                                   : vertex_bytes * iterations +
                                         result.vertexMisses * 8);
    return result;
}

} // namespace polymath::target
