/**
 * @file
 * GPU baseline models (Titan Xp and Jetson Xavier AGX). Kernel time is a
 * roofline of achieved-compute vs. memory, where achieved compute scales
 * with occupancy: small kernels cannot fill thousands of CUDA cores, which
 * is what lets the low-power accelerators win perf-per-watt (and sometimes
 * runtime) on small-batch workloads in Figs. 8/11.
 */
#ifndef POLYMATH_TARGETS_GPU_GPU_MODEL_H_
#define POLYMATH_TARGETS_GPU_GPU_MODEL_H_

#include <utility>

#include "targets/common/machine_config.h"
#include "targets/common/perf_report.h"
#include "targets/common/workload_cost.h"

namespace polymath::target {

class GpuModel
{
  public:
    explicit GpuModel(MachineConfig config) : config_(std::move(config))
    {
        config_.validate();
    }

    static GpuModel titanXp() { return GpuModel(titanXpConfig()); }
    static GpuModel jetson() { return GpuModel(jetsonConfig()); }

    const MachineConfig &config() const { return config_; }

    /** Fraction of peak the tuned CUDA library reaches at full occupancy
     *  for @p domain. */
    static double domainEfficiency(lang::Domain domain, bool irregular);

    PerfReport simulate(const WorkloadCost &cost) const;

  private:
    MachineConfig config_;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_GPU_GPU_MODEL_H_
