#include "targets/gpu/gpu_model.h"

#include <algorithm>

namespace polymath::target {

double
GpuModel::domainEfficiency(lang::Domain domain, bool irregular)
{
    if (irregular)
        return 0.04; // Enterprise-style BFS: frontier-dependent divergence
    switch (domain) {
      case lang::Domain::RBT:
        // cuBLAS on tiny matrices: dominated by per-call latency.
        return 0.08;
      case lang::Domain::GA:
        return 0.04;
      case lang::Domain::DSP:
        return 0.45; // cuFFT / NPP DCT
      case lang::Domain::DA:
        return 0.40; // NVBLAS / CUDA analytics
      case lang::Domain::DL:
        return 0.55; // cuDNN convolutions, batch 1
      case lang::Domain::None:
        return 0.30;
    }
    return 0.30;
}

PerfReport
GpuModel::simulate(const WorkloadCost &cost) const
{
    PerfReport r;
    r.machine = config_.name;

    const double inv = static_cast<double>(cost.invocations);
    const double flops = static_cast<double>(cost.flops) * inv;
    const double bytes = static_cast<double>(cost.bytes) * inv;

    // Occupancy: a kernel needs roughly 8 resident threads per CUDA core
    // before the chip saturates.
    const double full_width =
        static_cast<double>(config_.computeUnits) * 8.0;
    const double occupancy =
        std::min(1.0, std::max(cost.parallelWidth, 1.0) / full_width);
    const double base_eff =
        cost.gpuEff > 0 ? cost.gpuEff
                        : domainEfficiency(cost.domain, cost.irregular);
    const double eff = base_eff * occupancy;

    r.computeSeconds = flops / (config_.peakFlops() * std::max(eff, 1e-6));
    const double bw =
        cost.irregular ? config_.dramGBs * 0.25 : config_.dramGBs;
    r.memorySeconds = bytes / (bw * 1e9);
    r.overheadSeconds = config_.launchOverheadUs * 1e-6 *
                        static_cast<double>(cost.kernels) * inv;

    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.overheadSeconds;
    r.flops = static_cast<int64_t>(flops);
    r.dramBytes = static_cast<int64_t>(bytes);
    r.utilization =
        r.seconds > 0 ? flops / (config_.peakFlops() * r.seconds) : 0.0;
    // Power scales between idle and TDP with utilization-ish activity.
    const double active =
        std::min(1.0, std::max(occupancy, r.utilization * 4));
    const double watts =
        config_.idleWatts + (config_.watts - config_.idleWatts) * active;
    r.joules = watts * r.seconds;
    return r;
}

} // namespace polymath::target
