/**
 * @file
 * RoboX backend: an end-to-end programmable ASIC for MPC-based autonomous
 * control (Sacks et al., ISCA'18). Its macro dataflow graph organizes the
 * robot program as System -> Task -> vector/scalar/group operations; the
 * simulator sequences the translated fragments through the 256-lane
 * compute array, one control step per invocation.
 */
#ifndef POLYMATH_TARGETS_ROBOX_ROBOX_H_
#define POLYMATH_TARGETS_ROBOX_ROBOX_H_

#include <utility>

#include "targets/common/backend.h"

namespace polymath::target {

class RoboxBackend : public Backend
{
  public:
    RoboxBackend() : Backend(roboxConfig()) {}
    explicit RoboxBackend(MachineConfig machine)
        : Backend(std::move(machine))
    {
    }

    std::string name() const override { return "RoboX"; }
    lang::Domain domain() const override { return lang::Domain::RBT; }
    lower::AcceleratorSpec spec() const override;
    PerfReport simulateImpl(const lower::Partition &partition,
                        const WorkloadProfile &profile) const override;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_ROBOX_ROBOX_H_
