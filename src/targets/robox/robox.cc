#include "targets/robox/robox.h"

#include <algorithm>
#include <cmath>

#include "targets/common/cost_ledger.h"
#include "targets/common/op_sets.h"

namespace polymath::target {

lower::AcceleratorSpec
RoboxBackend::spec() const
{
    lower::AcceleratorSpec s;
    s.name = name();
    s.domain = domain();
    using ir::OpCode;
    ir::OpSet extra = {OpCode::Sin,     OpCode::Cos,  OpCode::Tan,
                       OpCode::Sqrt,    OpCode::Exp,  OpCode::Ln,
                       OpCode::Log,     OpCode::Pow,  OpCode::Sigmoid,
                       OpCode::Tanh,    OpCode::Gauss, OpCode::Sum};
    extra.insert("@custom_reduce");
    s.supportedOps = opsUnion(scalarAluOps(), extra);
    s.supportedOps.merge(groupOps());

    // RoboX consumes vector/group macro-ops; tag them for its sequencer.
    s.combine = [](lower::AccelProgram &prog, lower::IrFragment frag) {
        if (frag.attrs.count("reduce_extent"))
            frag.opcode = "group/" + frag.opcode;
        else if (frag.attrs.count("dim0"))
            frag.opcode = "vector/" + frag.opcode;
        else if (frag.opcode != "tload" && frag.opcode != "tstore" &&
                 frag.opcode != "const") {
            frag.opcode = "scalar/" + frag.opcode;
        }
        prog.fragments.push_back(std::move(frag));
    };
    return s;
}

PerfReport
RoboxBackend::simulateImpl(const lower::Partition &partition,
                       const WorkloadProfile &profile) const
{
    const MachineConfig m = machine();
    PerfReport r;
    r.machine = name();

    // The macro-DFG sequencer issues one fragment (task op) at a time;
    // each spreads its elements across the 256 lanes.
    const double lanes = static_cast<double>(m.computeUnits);
    const auto invariant = invariantFragments(partition);
    double cycles = 0.0;
    double once_cycles = 0.0;
    for (size_t i = 0; i < partition.fragments.size(); ++i) {
        const auto &frag = partition.fragments[i];
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        const int64_t work = fragmentWork(frag);
        if (work <= 0)
            continue;
        const double c =
            std::ceil(static_cast<double>(work) / lanes) + 8.0;
        // Param/state-derived fragments (e.g. hoisted concatenations of
        // cost matrices) run once and stay in local memory.
        if (invariant[i])
            once_cycles += c;
        else
            cycles += c;
    }
    cycles *= profile.scale;

    const double hz = m.freqGhz * 1e9;
    const double invocations = static_cast<double>(profile.invocations);
    r.computeSeconds = (cycles * invocations + once_cycles) / hz;

    const auto dma = dmaBreakdown(partition);
    r.dramBytes = dma.oneTimeBytes +
                  static_cast<int64_t>(dma.perRunBytes * invocations);
    r.memorySeconds = static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);
    r.overheadSeconds = m.launchOverheadUs * 1e-6 * invocations;

    // Control loops are latency-critical: sensor I/O and compute serialize.
    r.seconds = r.computeSeconds + r.memorySeconds + r.overheadSeconds;
    r.flops = static_cast<int64_t>(
        static_cast<double>(partition.flops()) * profile.scale *
        invocations);
    r.utilization =
        r.seconds > 0
            ? static_cast<double>(r.flops) / (m.peakFlops() * r.seconds)
            : 0.0;
    r.joules = m.watts * r.seconds;

    if (CostLedger *ledger = beginLedger(r, r.machine)) {
        // The sequencer is serial, so the per-fragment issue cost
        // (ceil(work/lanes) + 8 sequencer cycles) is exact — no residual.
        for (size_t i = 0; i < partition.fragments.size(); ++i) {
            const auto &frag = partition.fragments[i];
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            const int64_t work = fragmentWork(frag);
            if (work <= 0)
                continue;
            const double c =
                std::ceil(static_cast<double>(work) / lanes) + 8.0;
            const double raw =
                (invariant[i] ? c : c * profile.scale * invocations) / hz;
            ledger->addFragment(static_cast<int>(i), frag, raw);
        }
        ledger->addDma(static_cast<double>(dma.oneTimeBytes),
                       static_cast<double>(dma.perRunBytes) * invocations,
                       m.dramGBs);
        ledger->addOverhead(r.overheadSeconds);
        finalizeLedger(r, m);
    }
    return r;
}

} // namespace polymath::target
