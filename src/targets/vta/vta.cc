#include "targets/vta/vta.h"

#include <algorithm>
#include <cmath>

#include "targets/common/cost_ledger.h"

namespace polymath::target {

namespace {

/** Layer-granularity operators VTA's instruction set covers. These are
 *  component names in the DNN PMLang programs. */
const char *const kLayerOps[] = {
    "conv2d", "conv2d_dw", "dense", "maxpool", "avgpool",
    "batchnorm", "relu_layer", "add_layer", "flatten",
};

bool
isGemmLayer(const std::string &opcode)
{
    return opcode == "conv2d" || opcode == "conv2d_dw" ||
           opcode == "dense";
}

} // namespace

lower::AcceleratorSpec
VtaBackend::spec() const
{
    lower::AcceleratorSpec s;
    s.name = name();
    s.domain = domain();
    for (const char *op : kLayerOps)
        s.supportedOps.insert(op);
    // Residual adds and activation maps appear between layers.
    using ir::OpCode;
    s.supportedOps.merge({OpCode::Add, OpCode::Relu, OpCode::Identity,
                          OpCode::Const, OpCode::Max, OpCode::Sum,
                          OpCode::Mul, OpCode::Sub, OpCode::Div,
                          OpCode::Sqrt, OpCode::Exp});
    return s;
}

PerfReport
VtaBackend::simulateImpl(const lower::Partition &partition,
                     const WorkloadProfile &profile) const
{
    const MachineConfig m = machine();
    PerfReport r;
    r.machine = name();

    const double peak = m.peakFlops(); // 256 MACs * 2 * freq
    const double hz = m.freqGhz * 1e9;

    double compute_s = 0.0;
    double weight_bytes = 0.0;
    double act_bytes = 0.0;
    int64_t layers = 0;
    for (const auto &frag : partition.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        // GEMM-core layers run at high efficiency; vector ops (pool,
        // activation, residual) retire one lane-row per cycle.
        const double eff = isGemmLayer(frag.opcode) ? 0.35 : 0.10;
        compute_s += static_cast<double>(frag.flops) / (peak * eff);
        ++layers;
        for (const auto &in : frag.inputs) {
            if (in.kind == ir::EdgeKind::Param)
                weight_bytes += static_cast<double>(in.shape.numel()) * 1.0;
            else
                act_bytes += static_cast<double>(in.shape.numel()) * 1.0;
        }
        for (const auto &out : frag.outputs)
            act_bytes += static_cast<double>(out.shape.numel()) * 1.0;
    }
    // int8 datapath: one byte per element (already counted as numel*1).
    const double invocations = static_cast<double>(profile.invocations);
    compute_s *= profile.scale * invocations;

    // Weights exceed the on-chip buffer for real CNNs: streamed per run.
    const bool weights_resident =
        weight_bytes <= static_cast<double>(m.onChipBytes) * 0.5;
    const double weight_stream =
        weights_resident ? weight_bytes
                         : weight_bytes * invocations;
    r.dramBytes = static_cast<int64_t>(
        (weight_stream + act_bytes * invocations) * profile.scale);
    r.memorySeconds = static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);

    r.computeSeconds = compute_s;
    r.overheadSeconds = m.launchOverheadUs * 1e-6 *
                        static_cast<double>(layers) * invocations;
    // Per-layer: load -> compute -> store with double buffering.
    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.overheadSeconds;
    r.flops = static_cast<int64_t>(
        static_cast<double>(partition.flops()) * profile.scale *
        invocations);
    r.utilization =
        r.seconds > 0
            ? static_cast<double>(r.flops) / (peak * r.seconds)
            : 0.0;
    r.joules = m.watts * r.seconds;
    (void)hz;

    if (CostLedger *ledger = beginLedger(r, r.machine)) {
        // Layer time is a plain sum of flops/(peak*eff) terms, so the
        // per-layer attribution is exact. DMA splits by traffic class:
        // weights (resident or re-streamed) vs. activations.
        size_t i = 0;
        for (const auto &frag : partition.fragments) {
            const size_t index = i++;
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            const double eff = isGemmLayer(frag.opcode) ? 0.35 : 0.10;
            const double raw = static_cast<double>(frag.flops) /
                               (peak * eff) * profile.scale * invocations;
            ledger->addFragment(static_cast<int>(index), frag, raw);
        }
        const double bw = m.dramGBs * 1e9;
        if (weight_stream > 0) {
            CostEntry &w = ledger->add(weights_resident
                                           ? "dma:weights (resident)"
                                           : "dma:weights (streamed)",
                                       "dma");
            w.dramBytes = weight_stream * profile.scale;
            w.seconds = w.dramBytes / bw;
            w.bound = BoundClass::Memory;
        }
        if (act_bytes > 0) {
            CostEntry &a = ledger->add("dma:activations", "dma");
            a.dramBytes = act_bytes * invocations * profile.scale;
            a.seconds = a.dramBytes / bw;
            a.bound = BoundClass::Memory;
        }
        ledger->addOverhead(r.overheadSeconds);
        finalizeLedger(r, m);
    }
    return r;
}

} // namespace polymath::target
