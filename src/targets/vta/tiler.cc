#include "targets/vta/tiler.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/strings.h"

namespace polymath::target {

int64_t
LayerShape::macs() const
{
    const int64_t per_pixel = depthwise
                                  ? kernel * kernel
                                  : inChannels * kernel * kernel;
    return outChannels * outHeight * outWidth * per_pixel;
}

TilePlan
planLayer(const LayerShape &layer, const VtaTileConfig &config)
{
    TilePlan plan;
    plan.layer = layer.name;

    const int64_t pixels = layer.outHeight * layer.outWidth;
    const int64_t reduce = layer.depthwise
                               ? layer.kernel * layer.kernel
                               : layer.inChannels * layer.kernel *
                                     layer.kernel;

    // Grow the output tile (rows = output pixels, cols = output channels)
    // in GEMM-core quanta while the int8 working set fits the buffers:
    //   input  : rows * reduce bytes
    //   weights: cols * reduce bytes
    //   accum  : rows * cols * 4 bytes (int32 accumulators)
    int64_t rows = std::min<int64_t>(config.gemmRows, pixels);
    int64_t cols = std::min<int64_t>(config.gemmCols, layer.outChannels);
    auto fits = [&](int64_t r, int64_t c) {
        return r * reduce <= config.inputBufBytes &&
               c * reduce <= config.weightBufBytes &&
               r * c * 4 <= config.accumBufBytes;
    };
    if (!fits(rows, cols))
        fatal("VTA tiler: layer '" + layer.name +
              "' does not fit the on-chip buffers at minimum tile size");
    while (true) {
        if (rows < pixels && fits(rows * 2, cols)) {
            rows = std::min(rows * 2, pixels);
            continue;
        }
        if (cols < layer.outChannels && fits(rows, cols * 2)) {
            cols = std::min(cols * 2, layer.outChannels);
            continue;
        }
        break;
    }
    plan.tileRows = rows;
    plan.tileCols = cols;

    const int64_t row_tiles = (pixels + rows - 1) / rows;
    const int64_t col_tiles =
        (layer.outChannels + cols - 1) / cols;
    plan.tiles = row_tiles * col_tiles;

    // Cycle accounting per tile, walking the real remainder geometry.
    const double bytes_per_cycle =
        config.dramGBs * 1e9 / (config.freqGhz * 1e9);
    int64_t gemm_cycles = 0;
    int64_t exposed_load = 0;
    double macs_done = 0;
    for (int64_t rt = 0; rt < row_tiles; ++rt) {
        const int64_t r = std::min(rows, pixels - rt * rows);
        for (int64_t ct = 0; ct < col_tiles; ++ct) {
            const int64_t c =
                std::min(cols, layer.outChannels - ct * cols);
            // The GEMM core retires gemmRows x gemmCols MACs per cycle;
            // partial tiles still occupy full core issue slots.
            const int64_t tile_gemm =
                ((r + config.gemmRows - 1) / config.gemmRows) *
                ((c + config.gemmCols - 1) / config.gemmCols) * reduce;
            // Load bytes for this tile (int8 input + weights).
            const int64_t tile_load_bytes = r * reduce + c * reduce;
            const auto tile_load = static_cast<int64_t>(
                std::ceil(static_cast<double>(tile_load_bytes) /
                          bytes_per_cycle));
            // Double buffering: loads overlap the previous tile's GEMM.
            exposed_load += std::max<int64_t>(0, tile_load - tile_gemm);
            // Accumulator drain: one output row per cycle to the store
            // unit, plus the fixed per-tile instruction overhead.
            exposed_load += r * c / config.gemmCols +
                            config.tileOverheadCycles;
            gemm_cycles += tile_gemm;
            macs_done += static_cast<double>(r) * static_cast<double>(c) *
                         static_cast<double>(reduce);
        }
    }
    // First tile's load is never hidden.
    const int64_t first_load = static_cast<int64_t>(
        std::ceil(static_cast<double>(rows * reduce + cols * reduce) /
                  bytes_per_cycle));
    plan.gemmCycles = gemm_cycles;
    plan.loadCycles = exposed_load + first_load;
    plan.totalCycles = gemm_cycles + plan.loadCycles;
    const double capacity =
        static_cast<double>(config.gemmRows * config.gemmCols) *
        static_cast<double>(plan.gemmCycles);
    plan.utilization = capacity > 0 ? macs_done / capacity : 0.0;
    return plan;
}

std::vector<LayerShape>
resnet18Layers()
{
    std::vector<LayerShape> layers;
    auto conv = [&](std::string name, int64_t cin, int64_t cout,
                    int64_t out_hw, int64_t k, int64_t stride) {
        LayerShape l;
        l.name = std::move(name);
        l.inChannels = cin;
        l.outChannels = cout;
        l.outHeight = out_hw;
        l.outWidth = out_hw;
        l.kernel = k;
        l.stride = stride;
        layers.push_back(l);
    };
    conv("conv1", 3, 64, 112, 7, 2);
    const int64_t channels[4] = {64, 128, 256, 512};
    const int64_t sizes[4] = {56, 28, 14, 7};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < 2; ++block) {
            const int64_t c = channels[stage];
            const int64_t hw = sizes[stage];
            const int64_t cin =
                (block == 0 && stage > 0) ? channels[stage - 1] : c;
            auto label = [&](int which) {
                return format("layer%d.%d.conv%d", stage + 1, block,
                              which + 1);
            };
            conv(label(0), cin, c, hw, 3,
                 (block == 0 && stage > 0) ? 2 : 1);
            conv(label(1), c, c, hw, 3, 1);
            if (block == 0 && stage > 0)
                conv(label(2), cin, c, hw, 1, 2);
        }
    }
    LayerShape fc;
    fc.name = "fc";
    fc.inChannels = 512;
    fc.outChannels = 1000;
    fc.outHeight = 1;
    fc.outWidth = 1;
    fc.kernel = 1;
    layers.push_back(fc);
    return layers;
}

std::vector<LayerShape>
mobilenetLayers()
{
    std::vector<LayerShape> layers;
    auto layer = [&](std::string name, int64_t cin, int64_t cout,
                     int64_t out_hw, int64_t k, bool depthwise) {
        LayerShape l;
        l.name = std::move(name);
        l.inChannels = cin;
        l.outChannels = cout;
        l.outHeight = out_hw;
        l.outWidth = out_hw;
        l.kernel = k;
        l.depthwise = depthwise;
        layers.push_back(l);
    };
    layer("conv1", 3, 32, 112, 3, false);
    const struct
    {
        int64_t stride;
        int64_t out;
    } blocks[] = {
        {1, 64},  {2, 128}, {1, 128}, {2, 256}, {1, 256},
        {2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
        {1, 512}, {2, 1024}, {1, 1024},
    };
    int64_t c = 32;
    int64_t hw = 112;
    int index = 0;
    for (const auto &b : blocks) {
        if (b.stride == 2)
            hw /= 2;
        layer(format("dw%d", index), c, c, hw, 3, true);
        layer(format("pw%d", index), c, b.out, hw, 1, false);
        c = b.out;
        ++index;
    }
    LayerShape fc;
    fc.name = "fc";
    fc.inChannels = 1024;
    fc.outChannels = 1000;
    fc.outHeight = 1;
    fc.outWidth = 1;
    fc.kernel = 1;
    layers.push_back(fc);
    return layers;
}

} // namespace polymath::target
