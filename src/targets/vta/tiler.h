/**
 * @file
 * Tile-level VTA simulator.
 *
 * The backend's analytic model (vta.h) costs a layer from its MAC count
 * and byte footprint. This engine plans the actual execution the VTA
 * runtime performs: it picks an output tile that fits the on-chip
 * input/weight/accumulator buffers, walks the tile grid, and accounts
 * load / GEMM / store phases with double buffering (compute overlaps the
 * next tile's loads once the pipeline is primed). Edge tiles run
 * partially full, which is where the utilization loss of real layers
 * comes from.
 *
 * bench_vta_tiling cross-checks it against the analytic model per
 * ResNet-18 layer.
 */
#ifndef POLYMATH_TARGETS_VTA_TILER_H_
#define POLYMATH_TARGETS_VTA_TILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "targets/common/machine_config.h"

namespace polymath::target {

/** One convolution/dense layer to tile (pre-padded geometry). */
struct LayerShape
{
    std::string name;
    int64_t inChannels = 1;
    int64_t outChannels = 1;
    int64_t outHeight = 1;
    int64_t outWidth = 1;
    int64_t kernel = 1;
    int64_t stride = 1;
    bool depthwise = false;

    int64_t macs() const;
};

/** VTA core geometry. */
struct VtaTileConfig
{
    int64_t gemmRows = 16;       ///< batch/row dimension of the GEMM core
    int64_t gemmCols = 16;       ///< output-channel dimension
    int64_t inputBufBytes = 256 * 1024;
    int64_t weightBufBytes = 256 * 1024;
    int64_t accumBufBytes = 128 * 1024;
    double freqGhz = 0.15;
    double dramGBs = 19.2;

    /** Per-tile fixed cost: instruction + micro-op fetch, dependence-queue
     *  sync, accumulator drain setup. */
    int64_t tileOverheadCycles = 512;
};

/** Planned execution of one layer. */
struct TilePlan
{
    std::string layer;
    int64_t tileRows = 0;    ///< output pixels per tile
    int64_t tileCols = 0;    ///< output channels per tile
    int64_t tiles = 0;
    int64_t gemmCycles = 0;
    int64_t loadCycles = 0;  ///< DRAM cycles not hidden by compute
    int64_t totalCycles = 0;
    double utilization = 0.0; ///< MACs / (gemm capacity * gemmCycles)

    double seconds(double freq_ghz) const
    {
        return cyclesToSeconds(static_cast<double>(totalCycles), freq_ghz);
    }
};

/** Plans one layer. @throws UserError when no tile fits the buffers. */
TilePlan planLayer(const LayerShape &layer, const VtaTileConfig &config);

/** The ResNet-18 convolution/dense layers (post-padding geometry). */
std::vector<LayerShape> resnet18Layers();

/** The MobileNet-V1 layers (depthwise/pointwise pairs). */
std::vector<LayerShape> mobilenetLayers();

} // namespace polymath::target

#endif // POLYMATH_TARGETS_VTA_TILER_H_
