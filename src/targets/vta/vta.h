/**
 * @file
 * TVM-VTA backend: the open deep-learning FPGA accelerator behind TVM
 * (Moreau et al., IEEE Micro'19). It consumes layer-granularity operators
 * — PolyMath lowers DNN srDFGs only to the component level, the coarsest
 * granularity any backend uses, demonstrating the multi-granular IR. The
 * simulator models the 16x16 GEMM core with explicit weight/activation
 * streaming and per-layer instruction overhead.
 */
#ifndef POLYMATH_TARGETS_VTA_VTA_H_
#define POLYMATH_TARGETS_VTA_VTA_H_

#include <utility>

#include "targets/common/backend.h"

namespace polymath::target {

class VtaBackend : public Backend
{
  public:
    VtaBackend() : Backend(vtaConfig()) {}
    explicit VtaBackend(MachineConfig machine)
        : Backend(std::move(machine))
    {
    }

    std::string name() const override { return "TVM-VTA"; }
    lang::Domain domain() const override { return lang::Domain::DL; }
    lower::AcceleratorSpec spec() const override;
    PerfReport simulateImpl(const lower::Partition &partition,
                        const WorkloadProfile &profile) const override;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_VTA_VTA_H_
