#include "targets/tabla/scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "core/error.h"
#include "core/strings.h"
#include "targets/common/backend.h"

namespace polymath::target {

std::string
ScheduleResult::str() const
{
    std::string out = format("makespan %lld cycles, bus %lld, occupancy ",
                             static_cast<long long>(cycles),
                             static_cast<long long>(busCycles)) +
                      formatF(peOccupancy * 100.0, 1) + "%\n";
    for (const auto &sf : fragments) {
        out += format("  [%6lld, %6lld) %s\n",
                      static_cast<long long>(sf.startCycle),
                      static_cast<long long>(sf.finishCycle),
                      sf.fragment->opcode.c_str());
    }
    return out;
}

ScheduleResult
listSchedule(const lower::Partition &partition, const ScheduleConfig &config)
{
    if (config.pes <= 0 || config.busWordsPerCycle <= 0)
        panic("listSchedule(): bad configuration");

    // Collect compute fragments and their dependence structure (by
    // tensor-name dataflow, matching fragmentLevels()).
    struct Item
    {
        const lower::IrFragment *frag = nullptr;
        int64_t work = 0;       ///< remaining work units
        int64_t busWords = 0;   ///< operand words fetched before start
        std::vector<size_t> deps;
        int pendingDeps = 0;
        int64_t readyCycle = 0;
        int64_t startCycle = -1;
        int64_t finishCycle = -1;
        bool fetched = false;
        bool done = false;
    };
    std::vector<Item> items;
    std::map<std::string, size_t> last_writer;
    std::set<std::string> buffered; // tensors already on-chip
    for (const auto &frag : partition.fragments) {
        if (frag.opcode == "tload" || frag.opcode == "tstore")
            continue;
        Item item;
        item.frag = &frag;
        item.work = std::max<int64_t>(fragmentWork(frag), 1);
        for (const auto &in : frag.inputs) {
            auto it = last_writer.find(in.name);
            if (it != last_writer.end()) {
                // Produced on the array: forwarded, no bus traffic.
                item.deps.push_back(it->second);
                ++item.pendingDeps;
            } else if (buffered.insert(in.name).second) {
                // First consumer streams the tensor in; later consumers
                // read the on-chip buffer.
                item.busWords += in.shape.numel();
            }
        }
        const size_t index = items.size();
        items.push_back(std::move(item));
        for (const auto &out : frag.outputs)
            last_writer[out.name] = index;
    }

    ScheduleResult result;
    if (items.empty())
        return result;

    // Consumers, for wakeups.
    std::vector<std::vector<size_t>> consumers(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
        for (size_t d : items[i].deps)
            consumers[d].push_back(i);
    }

    int64_t now = 0;
    int64_t bus_free = 0;
    int64_t total_work = 0;
    size_t remaining = items.size();
    for (const auto &item : items)
        total_work += item.work;

    while (remaining > 0) {
        // Start every ready, unfetched item: serialize its operand fetch
        // on the shared bus, then dispatch.
        std::vector<size_t> running;
        for (size_t i = 0; i < items.size(); ++i) {
            auto &item = items[i];
            if (item.done || item.pendingDeps > 0)
                continue;
            if (!item.fetched) {
                const int64_t fetch =
                    (item.busWords + config.busWordsPerCycle - 1) /
                    config.busWordsPerCycle;
                const int64_t begin =
                    std::max({now, bus_free, item.readyCycle});
                bus_free = begin + fetch;
                result.busCycles += fetch;
                item.startCycle = bus_free + config.issueLatency;
                item.fetched = true;
            }
            if (item.startCycle <= now)
                running.push_back(i);
        }

        if (running.empty()) {
            // Jump to the next start event.
            int64_t next = std::numeric_limits<int64_t>::max();
            for (const auto &item : items) {
                if (!item.done && item.pendingDeps == 0 && item.fetched)
                    next = std::min(next, item.startCycle);
            }
            if (next == std::numeric_limits<int64_t>::max())
                panic("listSchedule(): deadlock (cyclic fragments?)");
            now = next;
            continue;
        }

        // Fair-share the PE array among running fragments; advance to the
        // earliest finish at the current allocation.
        const int64_t share = std::max<int64_t>(
            1, config.pes / static_cast<int64_t>(running.size()));
        int64_t step = std::numeric_limits<int64_t>::max();
        for (size_t i : running) {
            const int64_t need =
                (items[i].work + share - 1) / share;
            step = std::min(step, need);
        }
        // Also stop at the next fetched-but-not-started fragment.
        for (const auto &item : items) {
            if (!item.done && item.fetched && item.startCycle > now)
                step = std::min(step, item.startCycle - now);
        }
        step = std::max<int64_t>(step, 1);

        for (size_t i : running) {
            auto &item = items[i];
            item.work -= share * step;
            if (item.work <= 0) {
                item.done = true;
                item.finishCycle = now + step;
                if (item.frag->attrs.count("reduce_extent"))
                    item.finishCycle += config.reduceTreeLatency;
                --remaining;
                for (size_t c : consumers[i]) {
                    if (--items[c].pendingDeps == 0)
                        items[c].readyCycle = item.finishCycle;
                }
            }
        }
        now += step;
        // Account deferred reduce-tree latencies in the clock.
        for (size_t i : running) {
            if (items[i].done)
                now = std::max(now, items[i].finishCycle);
        }
    }

    int64_t makespan = 0;
    for (const auto &item : items) {
        makespan = std::max(makespan, item.finishCycle);
        ScheduledFragment sf;
        sf.fragment = item.frag;
        sf.readyCycle = item.readyCycle;
        sf.startCycle = item.startCycle;
        sf.finishCycle = item.finishCycle;
        result.fragments.push_back(sf);
    }
    result.cycles = makespan;
    result.peOccupancy =
        makespan > 0 ? static_cast<double>(total_work) /
                           (static_cast<double>(config.pes) *
                            static_cast<double>(makespan))
                     : 0.0;
    return result;
}

} // namespace polymath::target
