#include "targets/tabla/tabla.h"

#include <algorithm>
#include <cmath>

#include "targets/common/cost_ledger.h"
#include "targets/common/op_sets.h"

namespace polymath::target {

lower::AcceleratorSpec
TablaBackend::spec() const
{
    lower::AcceleratorSpec s;
    s.name = name();
    s.domain = domain();
    using ir::OpCode;
    ir::OpSet extra = {OpCode::Sigmoid, OpCode::Gauss, OpCode::Sqrt,
                       OpCode::Exp,     OpCode::Ln,    OpCode::Log,
                       OpCode::Relu,    OpCode::Tanh,  OpCode::Pow,
                       OpCode::Sum};
    extra.insert("@custom_reduce");
    s.supportedOps = opsUnion(scalarAluOps(), extra);
    s.supportedOps.merge(groupOps());
    return s;
}

PerfReport
TablaBackend::simulateImpl(const lower::Partition &partition,
                       const WorkloadProfile &profile) const
{
    const MachineConfig m = machine();
    PerfReport r;
    r.machine = name();

    // List schedule: each dependency level spreads its scalar work over
    // the PE array; group reductions pay a log-depth tree latency.
    double cycles = 0.0;
    double once_cycles = 0.0;
    const auto invariant = invariantFragments(partition);
    std::map<const lower::IrFragment *, bool> invariant_of;
    {
        size_t i = 0;
        for (const auto &frag : partition.fragments)
            invariant_of[&frag] = invariant[i++];
    }
    const auto levels = fragmentLevels(partition);
    const double pes = static_cast<double>(m.computeUnits);
    for (const auto &level : levels) {
        double level_flops = 0.0;
        double level_once = 0.0;
        bool has_reduce = false;
        for (const auto *frag : level) {
            // Param/state-derived fragments run once; their results stay
            // in the PEs' register files / on-chip buffers.
            if (invariant_of[frag])
                level_once += static_cast<double>(fragmentWork(*frag));
            else
                level_flops += static_cast<double>(fragmentWork(*frag));
            has_reduce |= frag->attrs.count("reduce_extent") > 0;
        }
        once_cycles += std::ceil(level_once / pes);
        if (level_flops <= 0)
            continue;
        cycles += std::ceil(level_flops / pes);
        if (has_reduce)
            cycles += std::log2(pes); // PU reduction-tree latency
        // Bus turnaround between dependence levels: 4 cycles at the
        // baseline 64-words/cycle operand bus, scaling inversely with
        // bus width (exactly 4.0 at the Table VI default).
        cycles += 4.0 * (64.0 / static_cast<double>(m.busWordsPerCycle));
    }
    cycles *= profile.scale;

    const double hz = m.freqGhz * 1e9;
    const double invocations = static_cast<double>(profile.invocations);
    r.computeSeconds = (cycles * invocations + once_cycles) / hz;

    const auto dma = dmaBreakdown(partition);
    r.dramBytes = dma.oneTimeBytes +
                  static_cast<int64_t>(dma.perRunBytes * invocations);
    r.memorySeconds = static_cast<double>(r.dramBytes) / (m.dramGBs * 1e9);
    r.overheadSeconds = m.launchOverheadUs * 1e-6 * invocations;

    // FPGA execution overlaps AXI streaming with compute.
    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.overheadSeconds;
    r.flops = static_cast<int64_t>(
        static_cast<double>(partition.flops()) * profile.scale *
        invocations);
    r.utilization =
        r.seconds > 0
            ? static_cast<double>(r.flops) / (m.peakFlops() * r.seconds)
            : 0.0;
    r.joules = m.watts * r.seconds;

    if (CostLedger *ledger = beginLedger(r, r.machine)) {
        // Raw per-fragment weight: its share of the PE array's issue
        // slots, in (pre-overlap) seconds. The ceil() rounding, the PU
        // reduction trees, and the inter-level bus turnarounds are level
        // costs, not fragment costs — they land in one residual entry.
        double attributed = 0.0;
        size_t i = 0;
        for (const auto &frag : partition.fragments) {
            const size_t index = i++;
            if (frag.opcode == "tload" || frag.opcode == "tstore")
                continue;
            const double slots =
                static_cast<double>(fragmentWork(frag)) / pes / hz;
            const double raw =
                invariant[index] ? slots
                                 : slots * profile.scale * invocations;
            ledger->addFragment(static_cast<int>(index), frag, raw);
            attributed += raw;
        }
        ledger->addComputeResidual("reduce-tree+bus turnaround",
                                   r.computeSeconds - attributed);
        ledger->addDma(static_cast<double>(dma.oneTimeBytes),
                       static_cast<double>(dma.perRunBytes) * invocations,
                       m.dramGBs);
        ledger->addOverhead(r.overheadSeconds);
        finalizeLedger(r, m);
    }
    return r;
}

} // namespace polymath::target
