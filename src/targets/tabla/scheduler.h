/**
 * @file
 * Event-driven list scheduler for the TABLA PE array.
 *
 * The backend's analytic model (tabla.h) costs a partition by dependence
 * levels. This engine schedules the translated fragments explicitly: a
 * fragment becomes ready when its producers finish, ready fragments share
 * the PE array fair-share (each gets at least one PE), and every fragment
 * first fetches its non-resident operands over the shared bus, which
 * serializes. It reports cycle counts, bus stalls, and PE occupancy — the
 * quantities a real template-generated TABLA design exposes.
 *
 * bench_tabla_scheduler cross-checks it against the analytic model on the
 * data-analytics workloads.
 */
#ifndef POLYMATH_TARGETS_TABLA_SCHEDULER_H_
#define POLYMATH_TARGETS_TABLA_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lower/compile.h"

namespace polymath::target {

/** PE-array parameters for the scheduler. */
struct ScheduleConfig
{
    int64_t pes = 2048;          ///< processing engines
    int64_t busWordsPerCycle = 64; ///< shared operand bus width
    int64_t reduceTreeLatency = 11; ///< log2(pes): PU reduction tree
    int64_t issueLatency = 2;    ///< fragment dispatch cycles
};

/** One fragment's placement in the schedule. */
struct ScheduledFragment
{
    const lower::IrFragment *fragment = nullptr;
    int64_t readyCycle = 0;  ///< dependencies satisfied
    int64_t startCycle = 0;  ///< after bus fetch + dispatch
    int64_t finishCycle = 0;
};

/** Outcome of scheduling one partition. */
struct ScheduleResult
{
    int64_t cycles = 0;          ///< makespan
    int64_t busCycles = 0;       ///< serialized operand-fetch cycles
    double peOccupancy = 0.0;    ///< work / (pes * makespan)
    std::vector<ScheduledFragment> fragments;

    /** Renders a compact Gantt-style listing (for pmc / debugging). */
    std::string str() const;
};

/**
 * Schedules @p partition's compute fragments (tload/tstore excluded)
 * under @p config. Deterministic; fragment order ties break by position.
 */
ScheduleResult listSchedule(const lower::Partition &partition,
                            const ScheduleConfig &config);

} // namespace polymath::target

#endif // POLYMATH_TARGETS_TABLA_SCHEDULER_H_
