/**
 * @file
 * TABLA backend: a template-based FPGA accelerator for statistical machine
 * learning (Mahajan et al., HPCA'16). Its IR is a single-operation dataflow
 * graph executed by an array of processing engines (PEs) grouped into
 * processing units with a shared bus; group sums ride the PEs' reduction
 * tree. The simulator list-schedules the translated fragment DAG onto the
 * PE array.
 */
#ifndef POLYMATH_TARGETS_TABLA_TABLA_H_
#define POLYMATH_TARGETS_TABLA_TABLA_H_

#include <utility>

#include "targets/common/backend.h"

namespace polymath::target {

class TablaBackend : public Backend
{
  public:
    TablaBackend() : Backend(tablaConfig()) {}
    explicit TablaBackend(MachineConfig machine)
        : Backend(std::move(machine))
    {
    }

    std::string name() const override { return "TABLA"; }
    lang::Domain domain() const override { return lang::Domain::DA; }
    lower::AcceleratorSpec spec() const override;
    PerfReport simulateImpl(const lower::Partition &partition,
                        const WorkloadProfile &profile) const override;
};

} // namespace polymath::target

#endif // POLYMATH_TARGETS_TABLA_TABLA_H_
