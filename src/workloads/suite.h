/**
 * @file
 * The benchmark suite of Tables III and IV: each entry ties a PMLang
 * program to its deployed-scale characterization (profile for the
 * accelerator simulators, cost for the CPU/GPU baselines) and to the
 * hand-tuned optimal of Figs. 9/12.
 */
#ifndef POLYMATH_WORKLOADS_SUITE_H_
#define POLYMATH_WORKLOADS_SUITE_H_

#include <memory>
#include <string>
#include <vector>

#include "lower/compile.h"
#include "lower/compile_cache.h"
#include "srdfg/builder.h"
#include "targets/common/backend.h"
#include "targets/common/workload_cost.h"

namespace polymath::wl {

/** One Table III benchmark. */
struct Benchmark
{
    std::string id;        ///< e.g. "MobileRobot"
    std::string algorithm; ///< e.g. "Model Predictive Control"
    std::string config;    ///< Table III configuration string
    lang::Domain domain = lang::Domain::None;
    std::string accel;     ///< Table V target accelerator

    std::string source;    ///< PMLang program (program of record)
    ir::BuildOptions buildOpts;

    /** Deployed-scale profile for the accelerator simulators. */
    target::WorkloadProfile profile;

    /** Per-invocation deployed-scale cost for the CPU/GPU models. */
    int64_t deployedFlops = 0;
    int64_t deployedBytes = 0;
    int64_t kernels = 1;
    bool irregular = false;

    /** Calibrated achieved-efficiency of the Table V native libraries on
     *  this workload (0 = domain default); see WorkloadCost. */
    double cpuEff = 0.0;
    double gpuEff = 0.0;

    /** Hand-tuned native work per invocation, in srDFG scalar-op units. */
    int64_t optimalFlops = 0;

    /** Hand-tuned kernel count (fragments after expert fusion). */
    int64_t optimalFragments = 1;

    /** GA only: hand-tuned per-edge / per-vertex op counts. */
    double optimalOpsPerEdge = 0.0;
    double optimalOpsPerVertex = 0.0;

    /** Baseline cost view. */
    target::WorkloadCost cpuCost() const;
};

/** All fifteen single-domain workloads, Table III order. */
const std::vector<Benchmark> &tableIII();

/** Looks up a Table III benchmark by id. @throws UserError when absent. */
const Benchmark &benchmarkById(const std::string &id);

/** One kernel of an end-to-end application (Table IV). */
struct AppKernel
{
    std::string label;  ///< "FFT", "LR", "MPC", "BLKS"
    std::string accel;  ///< backend executing it when accelerated
    lang::Domain domain = lang::Domain::None;

    /** Host-library efficiency when this kernel stays on the CPU. */
    double cpuEff = 0.0;
};

/** One Table IV end-to-end application. */
struct EndToEndApp
{
    std::string id;
    std::string source;
    ir::BuildOptions buildOpts;
    std::vector<AppKernel> kernels;
    target::WorkloadProfile profile;

    /** Per-invocation CPU-view cost of the whole application. */
    int64_t deployedFlops = 0;
    int64_t deployedBytes = 0;
    int64_t kernelLaunches = 1;
    double parallelWidth = 1.0;

    target::WorkloadCost cpuCost() const;
};

/** BrainStimul and OptionPricing. */
const std::vector<EndToEndApp> &tableIV();

/** Parses, analyzes, and builds a benchmark/app program. */
std::unique_ptr<ir::Graph> buildGraph(const std::string &source,
                                      const ir::BuildOptions &opts = {});

/**
 * Full PolyMath compilation for one benchmark: srDFG build, standard
 * optimization pipeline, Algorithm-1 lowering against @p registry, and
 * Algorithm-2 translation. @p default_domain covers untagged nodes.
 */
lower::CompiledProgram compileBenchmark(
    const std::string &source, const ir::BuildOptions &opts,
    const lower::AcceleratorRegistry &registry, lang::Domain default_domain);

/**
 * compileBenchmark() through a content-addressed CompileCache: the first
 * request for a given (source, opts, registry, domain) compiles, later
 * identical requests (other figures over the same suite, fault-sweep
 * repetitions) return the memoized immutable program. Thread-safe.
 */
std::shared_ptr<const lower::CompiledProgram> compileBenchmarkCached(
    const std::string &source, const ir::BuildOptions &opts,
    const lower::AcceleratorRegistry &registry, lang::Domain default_domain,
    lower::CompileCache &cache);

/**
 * Synthesizes the "expert hand-tuned" partition of a benchmark for the
 * Fig. 9 comparison: the PolyMath partition's real boundary traffic with
 * the kernel structure an expert would write — no identity moves, the
 * optimal op count, @p optimalFragments balanced fragments.
 */
lower::Partition optimalPartition(const Benchmark &bench,
                                  const lower::Partition &compiled);

} // namespace polymath::wl

#endif // POLYMATH_WORKLOADS_SUITE_H_
