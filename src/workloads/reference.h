/**
 * @file
 * Hand-optimized native reference implementations.
 *
 * Two roles (DESIGN.md §1):
 *  1. Functional oracles — the test suite checks every PMLang workload's
 *     interpreter output against these, element-for-element.
 *  2. The "expert, hand-tuned" baseline of Figs. 9/12 — their analytic
 *     operation counts define the optimal work a native-stack
 *     implementation performs, against which PolyMath's generic lowering
 *     is compared.
 */
#ifndef POLYMATH_WORKLOADS_REFERENCE_H_
#define POLYMATH_WORKLOADS_REFERENCE_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace polymath::wl::ref {

/** In-place iterative radix-2 DIT FFT (FFTW-style butterfly order). */
void fft(std::vector<std::complex<double>> *data);

/** FFT of a complex tensor [n]; returns the spectrum [n]. */
Tensor fftTensor(const Tensor &signal);

/** 8x8 blocked DCT-II with basis @p c8 (both dims multiples of 8). */
Tensor dct8x8(const Tensor &img, const Tensor &c8);

/** One K-means step with the mask semantics of the PMLang program
 *  (ties contribute to every tied cluster). Returns new centroids; when
 *  @p assign_out is non-null it receives the summed-index assignment. */
Tensor kmeansStep(const Tensor &x, const Tensor &mu,
                  Tensor *assign_out = nullptr);

/** One full-batch LRMF gradient step (h update sees the new w). */
void lrmfStep(const Tensor &r, Tensor *w, Tensor *h, double lr);

/** One full-batch logistic-regression step. */
void logregStep(const Tensor &x, const Tensor &y, Tensor *w, double lr);

/** Logistic inference over one feature vector. */
double logregInfer(const Tensor &x, const Tensor &w);

/** Black-Scholes European call prices (erf-based closed form). */
Tensor blackScholes(const Tensor &s, const Tensor &k, const Tensor &t,
                    double rate, double vol);

/** One min-plus relaxation (matches the vertex program, INF = 1e9). */
Tensor graphRelax(const Tensor &adj, const Tensor &dist, bool weighted);

/** Exact hop distances by BFS over the dense adjacency (INF = 1e9). */
Tensor bfsDistances(const Tensor &adj, int64_t source);

/** One damped PageRank power iteration over the dense adjacency
 *  (dangling-free graphs; matches the PMLang program's arithmetic). */
Tensor pagerankIter(const Tensor &adj, const Tensor &outdeg,
                    const Tensor &rank, double damp);

/** One MPC step of the MobileRobot program (Fig. 4 semantics). */
struct MpcState
{
    Tensor ctrlMdl;  ///< [b]
    Tensor ctrlSgnl; ///< [s]
};
MpcState mpcStep(const Tensor &pos, const Tensor &ctrl_mdl,
                 const Tensor &pos_ref, const Tensor &p, const Tensor &hq_g,
                 const Tensor &h, const Tensor &r_g, int64_t hstep);

/** Direct convolution y[K][HO][WO] over pre-padded x (stride @p stride). */
Tensor conv2d(const Tensor &x, const Tensor &w, int64_t stride);

/** Dense layer y = Wx + b. */
Tensor dense(const Tensor &x, const Tensor &w, const Tensor &b);

// ---------------------------------------------------------------------------
// Analytic operation counts of the hand-tuned implementations (Fig. 9/12).
// ---------------------------------------------------------------------------

/** 5 n log2 n real flops: the standard complex radix-2 FFT count. */
int64_t fftOptimalFlops(int64_t n);

/** Row-column 8x8 DCT: 16 MACs per pixel. */
int64_t dctOptimalFlops(int64_t h, int64_t w);

/** Distances + argmin + centroid accumulation. */
int64_t kmeansOptimalFlops(int64_t n, int64_t d, int64_t k);

/** SGD over observed ratings only (what TABLA's native stack runs). */
int64_t lrmfOptimalFlops(int64_t ratings, int64_t rank);

/** Full-batch gradient: 4 flops per (sample, feature). */
int64_t logregOptimalFlops(int64_t n, int64_t d);

/** ~26 flops per option in a tuned pipeline. */
int64_t blackScholesOptimalFlops(int64_t options);

/** Native vertex program: one relax op per edge + one update per vertex.*/
int64_t graphOptimalFlops(int64_t vertices, int64_t edges);

/** Condensed MPC: the four mat-vecs plus vector updates. */
int64_t mpcOptimalFlops(int64_t a, int64_t b, int64_t c);

} // namespace polymath::wl::ref

#endif // POLYMATH_WORKLOADS_REFERENCE_H_
