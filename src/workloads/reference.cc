#include "workloads/reference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"

namespace polymath::wl::ref {

void
fft(std::vector<std::complex<double>> *data)
{
    auto &a = *data;
    const size_t n = a.size();
    if (n == 0 || (n & (n - 1)) != 0)
        fatal("reference fft: size must be a power of two");
    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    // Butterfly stages.
    for (size_t len = 2; len <= n; len <<= 1) {
        const double ang = -2.0 * std::acos(-1.0) / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        for (size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (size_t j = 0; j < len / 2; ++j) {
                const auto u = a[i + j];
                const auto v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

Tensor
fftTensor(const Tensor &signal)
{
    std::vector<std::complex<double>> data = signal.cplx();
    fft(&data);
    Tensor out(DType::Complex, signal.shape());
    out.cplx() = std::move(data);
    return out;
}

Tensor
dct8x8(const Tensor &img, const Tensor &c8)
{
    const int64_t h = img.shape().dim(0);
    const int64_t w = img.shape().dim(1);
    Tensor out(DType::Float, img.shape());
    for (int64_t bi = 0; bi < h / 8; ++bi) {
        for (int64_t bj = 0; bj < w / 8; ++bj) {
            double tmp[8][8];
            for (int64_t u = 0; u < 8; ++u) {
                for (int64_t j = 0; j < 8; ++j) {
                    double acc = 0.0;
                    for (int64_t i = 0; i < 8; ++i) {
                        acc += c8.at({u, i}) *
                               img.at({bi * 8 + i, bj * 8 + j});
                    }
                    tmp[u][j] = acc;
                }
            }
            for (int64_t u = 0; u < 8; ++u) {
                for (int64_t v = 0; v < 8; ++v) {
                    double acc = 0.0;
                    for (int64_t j = 0; j < 8; ++j)
                        acc += tmp[u][j] * c8.at({v, j});
                    out.at({bi * 8 + u, bj * 8 + v}) = acc;
                }
            }
        }
    }
    return out;
}

Tensor
kmeansStep(const Tensor &x, const Tensor &mu, Tensor *assign_out)
{
    const int64_t n = x.shape().dim(0);
    const int64_t d = x.shape().dim(1);
    const int64_t k = mu.shape().dim(0);

    std::vector<double> dist(static_cast<size_t>(n * k));
    std::vector<double> best(static_cast<size_t>(n),
                             std::numeric_limits<double>::infinity());
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t c = 0; c < k; ++c) {
            double acc = 0.0;
            for (int64_t j = 0; j < d; ++j) {
                const double diff = x.at({i, j}) - mu.at({c, j});
                acc += diff * diff;
            }
            dist[static_cast<size_t>(i * k + c)] = acc;
            best[static_cast<size_t>(i)] =
                std::min(best[static_cast<size_t>(i)], acc);
        }
    }
    Tensor next(DType::Float, mu.shape());
    std::vector<double> cnt(static_cast<size_t>(k), 0.0);
    Tensor assign(DType::Float, Shape{n});
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t c = 0; c < k; ++c) {
            if (dist[static_cast<size_t>(i * k + c)] !=
                best[static_cast<size_t>(i)]) {
                continue;
            }
            cnt[static_cast<size_t>(c)] += 1.0;
            for (int64_t j = 0; j < d; ++j)
                next.at({c, j}) += x.at({i, j});
            assign.at(i) += static_cast<double>(c);
        }
    }
    for (int64_t c = 0; c < k; ++c) {
        const double denom = std::max(cnt[static_cast<size_t>(c)], 1.0);
        for (int64_t j = 0; j < d; ++j)
            next.at({c, j}) /= denom;
    }
    if (assign_out)
        *assign_out = std::move(assign);
    return next;
}

void
lrmfStep(const Tensor &r, Tensor *w, Tensor *h, double lr)
{
    const int64_t users = r.shape().dim(0);
    const int64_t items = r.shape().dim(1);
    const int64_t rank = w->shape().dim(1);

    Tensor e(DType::Float, r.shape());
    for (int64_t u = 0; u < users; ++u) {
        for (int64_t i = 0; i < items; ++i) {
            double dot = 0.0;
            for (int64_t q = 0; q < rank; ++q)
                dot += w->at({u, q}) * h->at({q, i});
            e.at({u, i}) = r.at({u, i}) - dot;
        }
    }
    // w update uses old h; h update uses new w (program order).
    Tensor wn = *w;
    for (int64_t u = 0; u < users; ++u) {
        for (int64_t q = 0; q < rank; ++q) {
            double g = 0.0;
            for (int64_t i = 0; i < items; ++i)
                g += e.at({u, i}) * h->at({q, i});
            wn.at({u, q}) = w->at({u, q}) + lr * g;
        }
    }
    *w = std::move(wn);
    for (int64_t q = 0; q < rank; ++q) {
        for (int64_t i = 0; i < items; ++i) {
            double g = 0.0;
            for (int64_t u = 0; u < users; ++u)
                g += e.at({u, i}) * w->at({u, q});
            h->at({q, i}) += lr * g;
        }
    }
}

void
logregStep(const Tensor &x, const Tensor &y, Tensor *w, double lr)
{
    const int64_t n = x.shape().dim(0);
    const int64_t d = x.shape().dim(1);
    std::vector<double> p(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        double dot = 0.0;
        for (int64_t j = 0; j < d; ++j)
            dot += w->at(j) * x.at({i, j});
        p[static_cast<size_t>(i)] = 1.0 / (1.0 + std::exp(-dot));
    }
    Tensor wn = *w;
    for (int64_t j = 0; j < d; ++j) {
        double g = 0.0;
        for (int64_t i = 0; i < n; ++i)
            g += (p[static_cast<size_t>(i)] - y.at(i)) * x.at({i, j});
        wn.at(j) = w->at(j) - lr * g;
    }
    *w = std::move(wn);
}

double
logregInfer(const Tensor &x, const Tensor &w)
{
    double dot = 0.0;
    for (int64_t j = 0; j < x.numel(); ++j)
        dot += w.at(j) * x.at(j);
    return 1.0 / (1.0 + std::exp(-dot));
}

Tensor
blackScholes(const Tensor &s, const Tensor &k, const Tensor &t, double rate,
             double vol)
{
    Tensor price(DType::Float, s.shape());
    for (int64_t i = 0; i < s.numel(); ++i) {
        const double sig_rt = vol * std::sqrt(t.at(i));
        const double d1 =
            (std::log(s.at(i) / k.at(i)) +
             (rate + vol * vol / 2.0) * t.at(i)) /
            sig_rt;
        const double d2 = d1 - sig_rt;
        const double nd1 = 0.5 * (1.0 + std::erf(d1 / std::sqrt(2.0)));
        const double nd2 = 0.5 * (1.0 + std::erf(d2 / std::sqrt(2.0)));
        price.at(i) =
            s.at(i) * nd1 - k.at(i) * std::exp(-rate * t.at(i)) * nd2;
    }
    return price;
}

Tensor
graphRelax(const Tensor &adj, const Tensor &dist, bool weighted)
{
    constexpr double kInf = 1e9;
    const int64_t n = dist.numel();
    Tensor next(DType::Float, dist.shape());
    for (int64_t v = 0; v < n; ++v) {
        double cand = kInf;
        for (int64_t u = 0; u < n; ++u) {
            const double w = adj.at({u, v});
            if (w > 0) {
                cand = std::min(cand,
                                dist.at(u) + (weighted ? w : 1.0));
            }
        }
        next.at(v) = std::min(cand, dist.at(v));
    }
    return next;
}

Tensor
bfsDistances(const Tensor &adj, int64_t source)
{
    constexpr double kInf = 1e9;
    const int64_t n = adj.shape().dim(0);
    Tensor dist(DType::Float, Shape{n});
    for (int64_t i = 0; i < n; ++i)
        dist.at(i) = kInf;
    dist.at(source) = 0.0;
    std::vector<int64_t> frontier = {source};
    while (!frontier.empty()) {
        std::vector<int64_t> next;
        for (int64_t u : frontier) {
            for (int64_t v = 0; v < n; ++v) {
                if (adj.at({u, v}) > 0 && dist.at(v) >= kInf) {
                    dist.at(v) = dist.at(u) + 1.0;
                    next.push_back(v);
                }
            }
        }
        frontier = std::move(next);
    }
    return dist;
}

Tensor
pagerankIter(const Tensor &adj, const Tensor &outdeg, const Tensor &rank,
             double damp)
{
    const int64_t n = rank.numel();
    Tensor next(DType::Float, rank.shape());
    for (int64_t v = 0; v < n; ++v) {
        double contrib = 0.0;
        for (int64_t u = 0; u < n; ++u) {
            if (adj.at({u, v}) > 0)
                contrib += rank.at(u) / outdeg.at(u);
        }
        next.at(v) =
            (1.0 - damp) / static_cast<double>(n) + damp * contrib;
    }
    return next;
}

namespace {

/** y = A x for row-major A [m][n]. */
std::vector<double>
matvec(const Tensor &a, const std::vector<double> &x)
{
    const int64_t m = a.shape().dim(0);
    const int64_t n = a.shape().dim(1);
    std::vector<double> y(static_cast<size_t>(m), 0.0);
    for (int64_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (int64_t j = 0; j < n; ++j)
            acc += a.at({i, j}) * x[static_cast<size_t>(j)];
        y[static_cast<size_t>(i)] = acc;
    }
    return y;
}

} // namespace

MpcState
mpcStep(const Tensor &pos, const Tensor &ctrl_mdl, const Tensor &pos_ref,
        const Tensor &p, const Tensor &hq_g, const Tensor &h,
        const Tensor &r_g, int64_t hstep)
{
    const int64_t b = ctrl_mdl.numel();
    const int64_t c = pos_ref.numel();

    // predict_trajectory
    std::vector<double> pose(static_cast<size_t>(pos.numel()));
    for (int64_t i = 0; i < pos.numel(); ++i)
        pose[static_cast<size_t>(i)] = pos.at(i);
    std::vector<double> ctrl(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i)
        ctrl[static_cast<size_t>(i)] = ctrl_mdl.at(i);
    auto pred = matvec(p, pose);
    const auto hterm = matvec(h, ctrl);
    for (int64_t i = 0; i < c; ++i)
        pred[static_cast<size_t>(i)] += hterm[static_cast<size_t>(i)];

    // compute_ctrl_grad
    std::vector<double> err(static_cast<size_t>(c));
    for (int64_t i = 0; i < c; ++i)
        err[static_cast<size_t>(i)] =
            pos_ref.at(i) - pred[static_cast<size_t>(i)];
    const auto p_g = matvec(hq_g, err);
    const auto h_g = matvec(r_g, ctrl);
    std::vector<double> g(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i)
        g[static_cast<size_t>(i)] =
            p_g[static_cast<size_t>(i)] + h_g[static_cast<size_t>(i)];

    // update_ctrl_model
    MpcState out{Tensor(DType::Float, Shape{b}),
                 Tensor(DType::Float, Shape{2})};
    for (int64_t j = 0; j < 2; ++j)
        out.ctrlSgnl.at(j) = ctrl[static_cast<size_t>(j * hstep)];
    out.ctrlMdl.at(b - 1) = 0.0;
    for (int64_t i = 0; i < b - 1; ++i) {
        out.ctrlMdl.at(i) =
            ctrl[static_cast<size_t>(i + 1)] - g[static_cast<size_t>(i + 1)];
    }
    return out;
}

Tensor
conv2d(const Tensor &x, const Tensor &w, int64_t stride)
{
    const int64_t c = x.shape().dim(0);
    const int64_t hi = x.shape().dim(1);
    const int64_t wi = x.shape().dim(2);
    const int64_t k = w.shape().dim(0);
    const int64_t r = w.shape().dim(2);
    const int64_t ho = (hi - r) / stride + 1;
    const int64_t wo = (wi - r) / stride + 1;
    Tensor y(DType::Float, Shape{k, ho, wo});
    for (int64_t f = 0; f < k; ++f) {
        for (int64_t i = 0; i < ho; ++i) {
            for (int64_t j = 0; j < wo; ++j) {
                double acc = 0.0;
                for (int64_t ch = 0; ch < c; ++ch) {
                    for (int64_t rr = 0; rr < r; ++rr) {
                        for (int64_t ss = 0; ss < r; ++ss) {
                            acc += x.at({ch, i * stride + rr,
                                         j * stride + ss}) *
                                   w.at({f, ch, rr, ss});
                        }
                    }
                }
                y.at({f, i, j}) = acc;
            }
        }
    }
    return y;
}

Tensor
dense(const Tensor &x, const Tensor &w, const Tensor &b)
{
    const int64_t o = w.shape().dim(0);
    const int64_t in = w.shape().dim(1);
    Tensor y(DType::Float, Shape{o});
    for (int64_t i = 0; i < o; ++i) {
        double acc = b.at(i);
        for (int64_t j = 0; j < in; ++j)
            acc += w.at({i, j}) * x.at(j);
        y.at(i) = acc;
    }
    return y;
}

int64_t
fftOptimalFlops(int64_t n)
{
    int64_t lg = 0;
    while ((int64_t{1} << lg) < n)
        ++lg;
    return 5 * n * lg;
}

int64_t
dctOptimalFlops(int64_t h, int64_t w)
{
    return h * w * 16 * 2;
}

int64_t
kmeansOptimalFlops(int64_t n, int64_t d, int64_t k)
{
    return n * k * d * 3 + n * k + k * d * 2;
}

int64_t
lrmfOptimalFlops(int64_t ratings, int64_t rank)
{
    return ratings * rank * 6;
}

int64_t
logregOptimalFlops(int64_t n, int64_t d)
{
    return n * d * 4 + n * 4 + d * 2;
}

int64_t
blackScholesOptimalFlops(int64_t options)
{
    return options * 26;
}

int64_t
graphOptimalFlops(int64_t vertices, int64_t edges)
{
    return edges + vertices;
}

int64_t
mpcOptimalFlops(int64_t a, int64_t b, int64_t c)
{
    return 2 * (c * a + c * b + b * c + b * b) + c + 3 * b;
}

} // namespace polymath::wl::ref
