#include "workloads/datasets.h"

#include <cmath>
#include <numbers>

#include "core/rng.h"

namespace polymath::wl {

namespace {

/** One R-MAT edge draw over an n x n adjacency (n a power of two is not
 *  required; quadrant splits round down). */
std::pair<int32_t, int32_t>
rmatEdge(Rng *rng, int64_t n)
{
    // Graph500 parameters.
    constexpr double a = 0.57, b = 0.19, c = 0.19;
    int64_t u_lo = 0, u_hi = n, v_lo = 0, v_hi = n;
    while (u_hi - u_lo > 1 || v_hi - v_lo > 1) {
        const double r = rng->uniform();
        const int64_t um = (u_lo + u_hi) / 2;
        const int64_t vm = (v_lo + v_hi) / 2;
        if (r < a) {
            u_hi = um;
            v_hi = vm;
        } else if (r < a + b) {
            u_hi = um;
            v_lo = vm;
        } else if (r < a + b + c) {
            u_lo = um;
            v_hi = vm;
        } else {
            u_lo = um;
            v_lo = vm;
        }
        // Collapsed axes keep returning their midpoint split, which is a
        // no-op; the loop exits once both ranges reach width one.
    }
    return {static_cast<int32_t>(u_lo), static_cast<int32_t>(v_lo)};
}

} // namespace

GraphDataset
rmatGraph(int64_t vertices, int64_t edges, uint64_t seed)
{
    GraphDataset g;
    g.vertices = vertices;
    g.edgeList.reserve(static_cast<size_t>(edges));
    Rng rng(seed);
    for (int64_t i = 0; i < edges; ++i)
        g.edgeList.push_back(rmatEdge(&rng, vertices));
    return g;
}

Tensor
denseRmatAdjacency(int64_t n, int64_t edges, uint64_t seed, bool weighted)
{
    Tensor adj(DType::Float, Shape{n, n});
    Rng rng(seed);
    for (int64_t e = 0; e < edges; ++e) {
        const auto [u, v] = rmatEdge(&rng, n);
        if (u == v)
            continue;
        const double w = weighted ? 1.0 + std::floor(rng.uniform() * 9.0)
                                  : 1.0;
        adj.at({u, v}) = w;
        adj.at({v, u}) = w; // undirected for reachability in small tests
    }
    return adj;
}

Tensor
gaussianClusters(int64_t n, int64_t dims, int64_t k, uint64_t seed,
                 Tensor *centers_out)
{
    Rng rng(seed);
    Tensor centers(DType::Float, Shape{k, dims});
    for (int64_t i = 0; i < centers.numel(); ++i)
        centers.at(i) = rng.uniform(-5.0, 5.0);
    Tensor x(DType::Float, Shape{n, dims});
    for (int64_t i = 0; i < n; ++i) {
        const int64_t c = i % k; // balanced clusters
        for (int64_t d = 0; d < dims; ++d)
            x.at({i, d}) = centers.at({c, d}) + rng.gaussian(0.0, 0.6);
    }
    if (centers_out)
        *centers_out = centers;
    return x;
}

Tensor
ratingsMatrix(int64_t users, int64_t items, int64_t rank, uint64_t seed)
{
    Rng rng(seed);
    Tensor u(DType::Float, Shape{users, rank});
    Tensor v(DType::Float, Shape{rank, items});
    for (int64_t i = 0; i < u.numel(); ++i)
        u.at(i) = rng.uniform(0.0, 1.0);
    for (int64_t i = 0; i < v.numel(); ++i)
        v.at(i) = rng.uniform(0.0, 1.0);
    Tensor r(DType::Float, Shape{users, items});
    for (int64_t a = 0; a < users; ++a) {
        for (int64_t b = 0; b < items; ++b) {
            double dot = 0.0;
            for (int64_t q = 0; q < rank; ++q)
                dot += u.at({a, q}) * v.at({q, b});
            r.at({a, b}) =
                std::min(5.0, std::max(0.0, dot + rng.gaussian(0.0, 0.1)));
        }
    }
    return r;
}

std::pair<Tensor, Tensor>
labeledSet(int64_t n, int64_t d, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> teacher(static_cast<size_t>(d));
    for (auto &w : teacher)
        w = rng.gaussian();
    Tensor x(DType::Float, Shape{n, d});
    Tensor y(DType::Float, Shape{n});
    for (int64_t i = 0; i < n; ++i) {
        double dot = 0.0;
        for (int64_t j = 0; j < d; ++j) {
            const double v = rng.gaussian();
            x.at({i, j}) = v;
            dot += v * teacher[static_cast<size_t>(j)];
        }
        y.at(i) = dot + rng.gaussian(0.0, 0.3) > 0.0 ? 1.0 : 0.0;
    }
    return {std::move(x), std::move(y)};
}

Tensor
complexSignal(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    Tensor x(DType::Complex, Shape{n});
    const double f1 = 2.0 * std::numbers::pi * 13.0 / static_cast<double>(n);
    const double f2 = 2.0 * std::numbers::pi * 89.0 / static_cast<double>(n);
    for (int64_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        x.cat(i) = {std::sin(f1 * t) + 0.5 * std::cos(f2 * t) +
                        0.1 * rng.gaussian(),
                    0.25 * std::sin(f2 * t)};
    }
    return x;
}

Tensor
twiddleTable(int64_t n)
{
    Tensor tw(DType::Complex, Shape{n / 2});
    for (int64_t j = 0; j < n / 2; ++j) {
        const double ang =
            -2.0 * std::numbers::pi * static_cast<double>(j) /
            static_cast<double>(n);
        tw.cat(j) = {std::cos(ang), std::sin(ang)};
    }
    return tw;
}

Tensor
dctBasis()
{
    Tensor c(DType::Float, Shape{8, 8});
    for (int64_t u = 0; u < 8; ++u) {
        const double alpha = u == 0 ? std::sqrt(1.0 / 8.0)
                                    : std::sqrt(2.0 / 8.0);
        for (int64_t i = 0; i < 8; ++i) {
            c.at({u, i}) =
                alpha * std::cos((2.0 * static_cast<double>(i) + 1.0) *
                                 static_cast<double>(u) *
                                 std::numbers::pi / 16.0);
        }
    }
    return c;
}

Tensor
randomImage(int64_t h, int64_t w, uint64_t seed)
{
    Rng rng(seed);
    Tensor img(DType::Float, Shape{h, w});
    for (int64_t i = 0; i < img.numel(); ++i)
        img.at(i) = std::floor(rng.uniform(0.0, 256.0));
    return img;
}

OptionBatch
optionBatch(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    OptionBatch b{Tensor(DType::Float, Shape{n}),
                  Tensor(DType::Float, Shape{n}),
                  Tensor(DType::Float, Shape{n})};
    for (int64_t i = 0; i < n; ++i) {
        b.spot.at(i) = rng.uniform(20.0, 180.0);
        b.strike.at(i) = rng.uniform(20.0, 180.0);
        b.expiry.at(i) = rng.uniform(0.1, 2.0);
    }
    return b;
}

} // namespace polymath::wl
