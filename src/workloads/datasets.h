/**
 * @file
 * Deterministic synthetic datasets standing in for the paper's inputs
 * (DESIGN.md §1): R-MAT graphs for Twitter/Wikipedia/LiveJournal, rating
 * matrices for MovieLens, Gaussian mixtures for MNIST/UCI clustering,
 * random signals/images for DSP, and option batches for finance. All
 * generators are seeded and platform-independent (core/rng.h).
 */
#ifndef POLYMATH_WORKLOADS_DATASETS_H_
#define POLYMATH_WORKLOADS_DATASETS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/tensor.h"

namespace polymath::wl {

/** An edge-list graph at deployed scale. */
struct GraphDataset
{
    int64_t vertices = 0;
    std::vector<std::pair<int32_t, int32_t>> edgeList;

    int64_t edges() const
    {
        return static_cast<int64_t>(edgeList.size());
    }
};

/**
 * R-MAT generator (a=0.57, b=c=0.19): skewed degree distribution like the
 * social/web graphs of Table III. Self-loops and duplicates are kept (as
 * in the Graph500 reference generator).
 */
GraphDataset rmatGraph(int64_t vertices, int64_t edges, uint64_t seed);

/** Dense adjacency of a small R-MAT instance (for functional tests and as
 *  the compiled vertex-program instance). Entry [u][v] is 1 (or a weight
 *  in [1, 10) when @p weighted) if u->v exists, else 0. */
Tensor denseRmatAdjacency(int64_t n, int64_t edges, uint64_t seed,
                          bool weighted);

/** @p n points in @p dims dimensions drawn from @p k Gaussian blobs.
 *  When @p centers_out is non-null it receives the true centers [k][dims].*/
Tensor gaussianClusters(int64_t n, int64_t dims, int64_t k, uint64_t seed,
                        Tensor *centers_out = nullptr);

/** Low-rank-plus-noise ratings matrix [users][items] in [0, 5]. */
Tensor ratingsMatrix(int64_t users, int64_t items, int64_t rank,
                     uint64_t seed);

/** Labeled classification set: X [n][d] and labels y [n] in {0,1} from a
 *  noisy linear teacher. */
std::pair<Tensor, Tensor> labeledSet(int64_t n, int64_t d, uint64_t seed);

/** Complex multi-tone signal with noise, length n. */
Tensor complexSignal(int64_t n, uint64_t seed);

/** FFT twiddle table tw[j] = exp(-2*pi*i*j/n), j < n/2. */
Tensor twiddleTable(int64_t n);

/** Orthonormal DCT-II basis C[8][8]. */
Tensor dctBasis();

/** Random grayscale image [h][w] in [0, 255]. */
Tensor randomImage(int64_t h, int64_t w, uint64_t seed);

/** European call option batch. */
struct OptionBatch
{
    Tensor spot;   ///< [n]
    Tensor strike; ///< [n]
    Tensor expiry; ///< [n] years
};

OptionBatch optionBatch(int64_t n, uint64_t seed);

} // namespace polymath::wl

#endif // POLYMATH_WORKLOADS_DATASETS_H_
