#include "workloads/python_corpus.h"

#include "core/strings.h"
#include "workloads/programs.h"

namespace polymath::wl {

namespace {

// What a study participant writes in NumPy-flavored Python for K-means
// (imperative style dominates under time pressure).
const char *const kPythonKmeans = R"(import numpy as np

def kmeans_step(x, mu):
    n, d = x.shape
    k = mu.shape[0]
    dist = np.zeros((n, k))
    for i in range(n):
        for c in range(k):
            diff = x[i] - mu[c]
            dist[i, c] = np.dot(diff, diff)
    best = dist.min(axis=1)
    memb = np.zeros((n, k))
    for i in range(n):
        for c in range(k):
            if dist[i, c] == best[i]:
                memb[i, c] = 1.0
    cnt = memb.sum(axis=0)
    new_mu = np.zeros_like(mu)
    for c in range(k):
        total = np.zeros(d)
        for i in range(n):
            if memb[i, c]:
                total += x[i]
        new_mu[c] = total / max(cnt[c], 1.0)
    assign = np.zeros(n)
    for i in range(n):
        for c in range(k):
            assign[i] += memb[i, c] * c
    return new_mu, assign

def kmeans(x, mu, iters):
    for _ in range(iters):
        mu, assign = kmeans_step(x, mu)
    return mu, assign
)";

// Blocked 8x8 DCT in Python.
const char *const kPythonDct = R"(import numpy as np

def dct_basis():
    c = np.zeros((8, 8))
    for u in range(8):
        a = np.sqrt((1.0 if u == 0 else 2.0) / 8.0)
        for i in range(8):
            c[u, i] = a * np.cos((2 * i + 1) * u * np.pi / 16.0)
    return c

def dct8x8(img):
    c = dct_basis()
    h, w = img.shape
    out = np.zeros_like(img)
    for bi in range(h // 8):
        for bj in range(w // 8):
            block = img[bi*8:(bi+1)*8, bj*8:(bj+1)*8]
            out[bi*8:(bi+1)*8, bj*8:(bj+1)*8] = c @ block @ c.T
    return out
)";

// PMLang equivalents as a study participant would write them: just the
// algorithm component (the study tasks did not include a main driver).
const char *const kPmlangKmeans =
    R"(kmeans_step(input float x[N][D], state float mu[K][D],
            output float assign[N]) {
    index n[0:N-1], k[0:K-1], d[0:D-1];
    float dist[N][K], best[N], memb[N][K], cnt[K];
    dist[n][k] = sum[d]((x[n][d]-mu[k][d])*(x[n][d]-mu[k][d]));
    best[n] = min[k](dist[n][k]);
    memb[n][k] = dist[n][k] == best[n] ? 1 : 0;
    cnt[k] = sum[n](memb[n][k]);
    mu[k][d] = sum[n](memb[n][k]*x[n][d]) / max(cnt[k], 1);
    assign[n] = sum[k](memb[n][k]*k);
}
)";

const char *const kPmlangDct =
    R"(dct8x8(input float img[H][W], param float C[8][8],
       output float out[H][W]) {
    index bi[0:H/8-1], bj[0:W/8-1], u[0:7], v[0:7], i[0:7], j[0:7];
    float tmp[H][W];
    tmp[bi*8+u][bj*8+j] = sum[i](C[u][i] * img[bi*8+i][bj*8+j]);
    out[bi*8+u][bj*8+v] = sum[j](tmp[bi*8+u][bj*8+j] * C[v][j]);
}
)";

} // namespace

int64_t
UserStudyEntry::pmlangLoc() const
{
    return countCodeLines(pmlang, "//");
}

int64_t
UserStudyEntry::pythonLoc() const
{
    return countCodeLines(python, "#");
}

double
UserStudyEntry::pmlangMinutes() const
{
    return static_cast<double>(pmlangLoc()) * kPmlangUnfamiliarity;
}

double
UserStudyEntry::pythonMinutes() const
{
    return static_cast<double>(pythonLoc());
}

const std::vector<UserStudyEntry> &
userStudyCorpus()
{
    static const std::vector<UserStudyEntry> corpus = {
        {"Kmeans", kPmlangKmeans, kPythonKmeans},
        {"DCT", kPmlangDct, kPythonDct},
    };
    return corpus;
}

int64_t
pmlangLoc(const std::string &source)
{
    return countCodeLines(source, "//");
}

} // namespace polymath::wl
