#include "workloads/programs.h"

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/strings.h"

namespace polymath::wl {

namespace {

/** log2 for exact powers of two. */
int
log2Exact(int64_t n)
{
    int bits = 0;
    while ((int64_t{1} << bits) < n)
        ++bits;
    if ((int64_t{1} << bits) != n)
        fatal("FFT size must be a power of two");
    return bits;
}

/** Bit-reversal gather expression over index i with @p bits bits. */
std::string
bitReverseExpr(int bits)
{
    std::string expr;
    for (int b = 0; b < bits; ++b) {
        if (b)
            expr += " + ";
        expr += format("((i/%lld)%%2)*%lld",
                       static_cast<long long>(int64_t{1} << b),
                       static_cast<long long>(int64_t{1}
                                              << (bits - 1 - b)));
    }
    return expr;
}

/** Components shared by every FFT instance: bit-reversal (per size) and
 *  the stage butterfly (size-generic, stride bound per instantiation). */
std::string
fftComponents(int64_t n)
{
    const int bits = log2Exact(n);
    std::string out;
    out += format("bit_reverse_%lld(input complex x[n], "
                  "output complex y[n]) {\n",
                  static_cast<long long>(n));
    out += "    index i[0:n-1];\n";
    out += "    y[i] = x[" + bitReverseExpr(bits) + "];\n";
    out += "}\n";
    out += R"(fft_stage(input complex x[n], param complex tw[h],
          param int s, output complex y[n]) {
    index k[0:h-1];
    y[(k/s)*(2*s) + (k%s)] = x[(k/s)*(2*s) + (k%s)]
        + tw[(k%s)*(h/s)] * x[(k/s)*(2*s) + (k%s) + s];
    y[(k/s)*(2*s) + (k%s) + s] = x[(k/s)*(2*s) + (k%s)]
        - tw[(k%s)*(h/s)] * x[(k/s)*(2*s) + (k%s) + s];
}
)";
    return out;
}

/** Stage-cascade statements: bit-reverse then log2(n) butterflies.
 *  Reads @p in_name, leaves the spectrum in t<stages>. Returns the body
 *  text; @p decl receives the intermediate declarations. */
std::string
fftCascade(int64_t n, const std::string &in_name, const std::string &out_name)
{
    const int bits = log2Exact(n);
    std::string body;
    body += "    complex ";
    for (int s = 0; s < bits; ++s)
        body += format("t%d[%lld], ", s, static_cast<long long>(n));
    body.erase(body.size() - 2);
    body += ";\n";
    body += format("    DSP: bit_reverse_%lld(%s, t0);\n",
                   static_cast<long long>(n), in_name.c_str());
    for (int s = 0; s < bits; ++s) {
        const std::string dst =
            s + 1 == bits ? out_name : format("t%d", s + 1);
        body += format("    DSP: fft_stage(t%d, tw, %lld, %s);\n", s,
                       static_cast<long long>(int64_t{1} << s),
                       dst.c_str());
    }
    return body;
}

} // namespace

std::string
mobileRobotProgram()
{
    // Fig. 4 of the paper, with the control signal read from the previous
    // model (ctrl_prev) rather than the not-yet-written output.
    return R"(predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                   param float P[c][a], param float H[c][b],
                   output float pred[c]) {
    index i[0:a-1], j[0:b-1], k[0:c-1];
    pred[k] = sum[i](P[k][i]*pos[i]);
    pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
}
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
compute_ctrl_grad(input float pos_pred[c], input float ctrl_mdl[b],
                  param float pos_ref[c], param float HQ_g[b][c],
                  param float R_g[b][b], output float g[b]) {
    index i[0:b-1], j[0:c-1];
    float P_g[b], H_g[b], err[c];
    err[j] = pos_ref[j] - pos_pred[j];
    mvmul(HQ_g, err, P_g);
    mvmul(R_g, ctrl_mdl, H_g);
    g[i] = P_g[i] + H_g[i];
}
update_ctrl_model(input float ctrl_prev[b], input float g[b],
                  output float ctrl_mdl[b], output float ctrl_sgnl[s],
                  param int h) {
    index i[0:b-2], j[0:s-1];
    ctrl_sgnl[j] = ctrl_prev[h*j];
    ctrl_mdl[b-1] = 0;
    ctrl_mdl[i] = ctrl_prev[(i+1)] - g[(i+1)];
}
main(input float pos[3], state float ctrl_mdl[20],
     param float pos_ref[30], param float P[30][3],
     param float HQ_g[20][30], param float H[30][20],
     param float R_g[20][20], output float ctrl_sgnl[2]) {
    float pos_pred[30], g[20];
    RBT: predict_trajectory(pos, ctrl_mdl, P, H, pos_pred);
    RBT: compute_ctrl_grad(pos_pred, ctrl_mdl, pos_ref, HQ_g, R_g, g);
    RBT: update_ctrl_model(ctrl_mdl, g, ctrl_mdl, ctrl_sgnl, 10);
}
)";
}

std::string
hexacopterProgram()
{
    // Six-rotor attitude/altitude MPC in condensed-horizon form: the
    // prediction matrices fold the 32-step horizon (state 12, controls 6).
    return R"(mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
rotor_mix(input float u[m], param float M[f][m], output float wrench[f]) {
    index i[0:m-1], j[0:f-1];
    wrench[j] = sum[i](M[j][i]*u[i]);
}
attitude_kinematics(input float ang[3], input float rates[3],
                    output float dang[3]) {
    dang[0] = rates[0] + sin(ang[0])*tan(ang[1])*rates[1]
            + cos(ang[0])*tan(ang[1])*rates[2];
    dang[1] = cos(ang[0])*rates[1] - sin(ang[0])*rates[2];
    dang[2] = sin(ang[0])/cos(ang[1])*rates[1]
            + cos(ang[0])/cos(ang[1])*rates[2];
}
body_accel(input float ang[3], input float thrust,
           param float mass, output float acc[3]) {
    acc[0] = (cos(ang[0])*sin(ang[1])*cos(ang[2])
            + sin(ang[0])*sin(ang[2])) * thrust / mass;
    acc[1] = (cos(ang[0])*sin(ang[1])*sin(ang[2])
            - sin(ang[0])*cos(ang[2])) * thrust / mass;
    acc[2] = cos(ang[0])*cos(ang[1]) * thrust / mass - 9.81;
}
integrate_state(input float x[s], input float dx[s], param float dt,
                output float xn[s]) {
    index i[0:s-1];
    xn[i] = x[i] + dt*dx[i];
}
assemble_deriv(input float vel[3], input float acc[3], input float dang[3],
               input float wrench[f], param float J_inv[3][3],
               output float dx[s]) {
    index i[0:2];
    float dom[3], tau[3];
    tau[i] = wrench[i+3];
    mvmul(J_inv, tau, dom);
    dx[i] = vel[i];
    dx[i+3] = acc[i];
    dx[i+6] = dang[i];
    dx[i+9] = dom[i];
}
predict_horizon(input float x0[s], input float useq[cu],
                param float A[ph][s], param float B[ph][cu],
                output float pred[ph]) {
    index k[0:ph-1];
    float xa[ph], xb[ph];
    mvmul(A, x0, xa);
    mvmul(B, useq, xb);
    pred[k] = xa[k] + xb[k];
}
horizon_error(input float pred[ph], param float ref[ph],
              param float Q[ph], output float err[ph]) {
    index k[0:ph-1];
    err[k] = Q[k]*(pred[k] - ref[k]);
}
ctrl_gradient(input float err[ph], input float useq[cu],
              param float Bt[cu][ph], param float Rg[cu][cu],
              output float grad[cu]) {
    index i[0:cu-1];
    float ge[cu], gu[cu];
    mvmul(Bt, err, ge);
    mvmul(Rg, useq, gu);
    grad[i] = ge[i] + gu[i];
}
update_sequence(input float useq[cu], input float grad[cu],
                param float lr, output float unew[cu],
                output float u_now[m], param int T) {
    index i[0:cu-1], j[0:m-1];
    unew[i] = useq[i] - lr*grad[i];
    u_now[j] = unew[j*T];
}
main(input float meas[12], state float useq[192],
     param float mix[6][6], param float J_inv[3][3],
     param float A[384][12], param float B[384][192],
     param float ref[384], param float Q[384],
     param float Bt[192][384], param float Rg[192][192],
     param float mass, param float dt, param float lr,
     output float rotor_cmd[6]) {
    index i[0:2];
    float ang[3], rates[3], vel[3], u0[6];
    float wrench[6], acc[3], dang[3], dx[12], xnext[12];
    float pred[384], err[384], grad[192];
    float thrust;
    ang[i] = meas[i+6];
    rates[i] = meas[i+9];
    vel[i] = meas[i+3];
    u0[i] = useq[i*32];
    u0[i+3] = useq[(i+3)*32];
    RBT: rotor_mix(u0, mix, wrench);
    thrust = wrench[0*1];
    RBT: attitude_kinematics(ang, rates, dang);
    RBT: body_accel(ang, thrust, mass, acc);
    RBT: assemble_deriv(vel, acc, dang, wrench, J_inv, dx);
    RBT: integrate_state(meas, dx, dt, xnext);
    RBT: predict_horizon(xnext, useq, A, B, pred);
    RBT: horizon_error(pred, ref, Q, err);
    RBT: ctrl_gradient(err, useq, Bt, Rg, grad);
    RBT: update_sequence(useq, grad, lr, useq, rotor_cmd, 32);
}
)";
}

std::string
bfsProgram(int64_t n)
{
    return format(R"(reduction minplus(a, b) = a < b ? a : b;
process(input float adj[n][n], input float dist[n], output float cand[n]) {
    index u[0:n-1], v[0:n-1];
    cand[v] = minplus[u](adj[u][v] > 0 ? dist[u] + 1 : 1000000000);
}
apply(input float cand[n], input float dist_in[n],
      output float dist_out[n]) {
    index v[0:n-1];
    dist_out[v] = cand[v] < dist_in[v] ? cand[v] : dist_in[v];
}
main(input float adj[%lld][%lld], state float dist[%lld]) {
    float cand[%lld];
    GA: process(adj, dist, cand);
    GA: apply(cand, dist, dist);
}
)",
                  static_cast<long long>(n), static_cast<long long>(n),
                  static_cast<long long>(n), static_cast<long long>(n));
}

std::string
sssPProgram(int64_t n)
{
    return format(R"(reduction minplus(a, b) = a < b ? a : b;
process(input float adj[n][n], input float dist[n], output float cand[n]) {
    index u[0:n-1], v[0:n-1];
    cand[v] = minplus[u](adj[u][v] > 0 ? dist[u] + adj[u][v] : 1000000000);
}
apply(input float cand[n], input float dist_in[n],
      output float dist_out[n]) {
    index v[0:n-1];
    dist_out[v] = cand[v] < dist_in[v] ? cand[v] : dist_in[v];
}
main(input float adj[%lld][%lld], state float dist[%lld]) {
    float cand[%lld];
    GA: process(adj, dist, cand);
    GA: apply(cand, dist, dist);
}
)",
                  static_cast<long long>(n), static_cast<long long>(n),
                  static_cast<long long>(n), static_cast<long long>(n));
}

std::string
pagerankProgram(int64_t n)
{
    return format(R"(pr_iter(input float adj[n][n], state float outdeg[n],
        state float rank[n], param float damp) {
    index u[0:n-1], v[0:n-1];
    float contrib[n];
    contrib[v] = sum[u](adj[u][v] > 0 ? rank[u]/outdeg[u] : 0);
    rank[v] = (1 - damp)/n + damp*contrib[v];
}
main(input float adj[%lld][%lld], state float outdeg[%lld],
     state float rank[%lld], param float damp) {
    GA: pr_iter(adj, outdeg, rank, damp);
}
)",
                  static_cast<long long>(n), static_cast<long long>(n),
                  static_cast<long long>(n), static_cast<long long>(n));
}

std::string
lrmfProgram(int64_t users, int64_t items, int64_t rank)
{
    return format(R"(lrmf_step(input float r[U][I], state float w[U][K],
          state float h[K][I], param float lr) {
    index u[0:U-1], i[0:I-1], k[0:K-1];
    float e[U][I];
    e[u][i] = r[u][i] - sum[k](w[u][k]*h[k][i]);
    w[u][k] = w[u][k] + lr*sum[i](e[u][i]*h[k][i]);
    h[k][i] = h[k][i] + lr*sum[u](e[u][i]*w[u][k]);
}
main(input float r[%lld][%lld], state float w[%lld][%lld],
     state float h[%lld][%lld], param float lr) {
    DA: lrmf_step(r, w, h, lr);
}
)",
                  static_cast<long long>(users),
                  static_cast<long long>(items),
                  static_cast<long long>(users),
                  static_cast<long long>(rank),
                  static_cast<long long>(rank),
                  static_cast<long long>(items));
}

std::string
kmeansProgram(int64_t points, int64_t dims, int64_t clusters)
{
    return format(R"(kmeans_step(input float x[N][D], state float mu[K][D],
            output float assign[N]) {
    index n[0:N-1], k[0:K-1], d[0:D-1];
    float dist[N][K], best[N], memb[N][K], cnt[K];
    dist[n][k] = sum[d]((x[n][d]-mu[k][d])*(x[n][d]-mu[k][d]));
    best[n] = min[k](dist[n][k]);
    memb[n][k] = dist[n][k] == best[n] ? 1 : 0;
    cnt[k] = sum[n](memb[n][k]);
    mu[k][d] = sum[n](memb[n][k]*x[n][d]) / max(cnt[k], 1);
    assign[n] = sum[k](memb[n][k]*k);
}
main(input float x[%lld][%lld], state float mu[%lld][%lld],
     output float assign[%lld]) {
    DA: kmeans_step(x, mu, assign);
}
)",
                  static_cast<long long>(points),
                  static_cast<long long>(dims),
                  static_cast<long long>(clusters),
                  static_cast<long long>(dims),
                  static_cast<long long>(points));
}

std::string
logregProgram(int64_t samples, int64_t features)
{
    return format(R"(logreg_step(input float x[N][D], input float y[N],
            state float w[D], param float lr) {
    index n[0:N-1], d[0:D-1], j[0:D-1];
    float p[N], g[D];
    p[n] = sigmoid(sum[d](w[d]*x[n][d]));
    g[j] = sum[n]((p[n]-y[n])*x[n][j]);
    w[j] = w[j] - lr*g[j];
}
main(input float x[%lld][%lld], input float y[%lld],
     state float w[%lld], param float lr) {
    DA: logreg_step(x, y, w, lr);
}
)",
                  static_cast<long long>(samples),
                  static_cast<long long>(features),
                  static_cast<long long>(samples),
                  static_cast<long long>(features));
}

std::string
logregInferProgram(int64_t features)
{
    return format(R"(logreg_infer(input float x[D], state float w[D],
             output float y) {
    index d[0:D-1];
    y = sigmoid(sum[d](w[d]*x[d]));
}
main(input float x[%lld], state float w[%lld], output float y) {
    DA: logreg_infer(x, w, y);
}
)",
                  static_cast<long long>(features),
                  static_cast<long long>(features));
}

std::string
blackScholesProgram(int64_t options)
{
    return format(R"(black_scholes(input float s[N], input float strike[N],
              input float t[N], param float rate, param float vol,
              output float price[N]) {
    index i[0:N-1];
    float d1[N], d2[N], nd1[N], nd2[N];
    d1[i] = (ln(s[i]/strike[i]) + (rate + vol*vol/2)*t[i])
          / (vol*sqrt(t[i]));
    d2[i] = d1[i] - vol*sqrt(t[i]);
    nd1[i] = (1 + erf(d1[i]/sqrt(2)))/2;
    nd2[i] = (1 + erf(d2[i]/sqrt(2)))/2;
    price[i] = s[i]*nd1[i] - strike[i]*exp(-rate*t[i])*nd2[i];
}
main(input float s[%lld], input float strike[%lld], input float t[%lld],
     param float rate, param float vol, output float price[%lld]) {
    DA: black_scholes(s, strike, t, rate, vol, price);
}
)",
                  static_cast<long long>(options),
                  static_cast<long long>(options),
                  static_cast<long long>(options),
                  static_cast<long long>(options));
}

std::string
fftProgram(int64_t n)
{
    std::string out = fftComponents(n);
    out += format("main(input complex x[%lld], param complex tw[%lld],\n"
                  "     output complex y[%lld]) {\n",
                  static_cast<long long>(n), static_cast<long long>(n / 2),
                  static_cast<long long>(n));
    out += fftCascade(n, "x", "y");
    out += "}\n";
    return out;
}

std::string
dctProgram(int64_t height, int64_t width)
{
    return format(R"(dct8x8(input float img[H][W], param float C[8][8],
       output float out[H][W]) {
    index bi[0:H/8-1], bj[0:W/8-1], u[0:7], v[0:7], i[0:7], j[0:7];
    float tmp[H][W];
    tmp[bi*8+u][bj*8+j] = sum[i](C[u][i] * img[bi*8+i][bj*8+j]);
    out[bi*8+u][bj*8+v] = sum[j](tmp[bi*8+u][bj*8+j] * C[v][j]);
}
main(input float img[%lld][%lld], param float C[8][8],
     output float out[%lld][%lld]) {
    DSP: dct8x8(img, C, out);
}
)",
                  static_cast<long long>(height),
                  static_cast<long long>(width),
                  static_cast<long long>(height),
                  static_cast<long long>(width));
}

// ---------------------------------------------------------------------------
// DNN program generation
// ---------------------------------------------------------------------------

namespace {

/** The layer-level component library shared by both CNNs. Inputs are
 *  assumed pre-padded via the `pad` component (its partial write leaves a
 *  zero border). */
const char *const kDnnComponents = R"(pad(input float x[C][H][W], param int p, output float y[C][HP][WP]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c][i+p][j+p] = x[c][i][j];
}
conv2d(input float x[C][HI][WI], param float wgt[K][C][R][S],
       param int stride, output float y[K][HO][WO]) {
    index k[0:K-1], i[0:HO-1], j[0:WO-1], c[0:C-1], r[0:R-1], q[0:S-1];
    y[k][i][j] = sum[c][r][q](x[c][i*stride+r][j*stride+q]
                              * wgt[k][c][r][q]);
}
conv2d_dw(input float x[C][HI][WI], param float wgt[C][R][S],
          param int stride, output float y[C][HO][WO]) {
    index c[0:C-1], i[0:HO-1], j[0:WO-1], r[0:R-1], q[0:S-1];
    y[c][i][j] = sum[r][q](x[c][i*stride+r][j*stride+q] * wgt[c][r][q]);
}
batchnorm(input float x[C][H][W], param float gamma[C], param float beta[C],
          output float y[C][H][W]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c][i][j] = x[c][i][j]*gamma[c] + beta[c];
}
relu_layer(input float x[C][H][W], output float y[C][H][W]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c][i][j] = relu(x[c][i][j]);
}
add_layer(input float a[C][H][W], input float b[C][H][W],
          output float y[C][H][W]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c][i][j] = a[c][i][j] + b[c][i][j];
}
maxpool(input float x[C][HI][WI], param int stride, param int k,
        output float y[C][HO][WO]) {
    index c[0:C-1], i[0:HO-1], j[0:WO-1], r[0:k-1], q[0:k-1];
    y[c][i][j] = max[r][q](x[c][i*stride+r][j*stride+q]);
}
avgpool(input float x[C][H][W], output float y[C]) {
    index c[0:C-1], i[0:H-1], j[0:W-1];
    y[c] = sum[i][j](x[c][i][j]) / (H*W);
}
dense(input float x[I], param float w[O][I], param float b[O],
      output float y[O]) {
    index o[0:O-1], i[0:I-1];
    y[o] = b[o] + sum[i](w[o][i]*x[i]);
}
)";

/** Emits a CNN main from a layer recipe, tracking shapes. */
class DnnEmitter
{
  public:
    DnnEmitter(int64_t channels, int64_t hw)
        : c_(channels), h_(hw), w_(hw), cur_("img")
    {
        decls_.push_back(
            format("input float img[%lld][%lld][%lld]",
                   static_cast<long long>(channels),
                   static_cast<long long>(hw),
                   static_cast<long long>(hw)));
    }

    /** Pads the current tensor by @p p. */
    void pad(int64_t p)
    {
        const std::string out = temp(c_, h_ + 2 * p, w_ + 2 * p);
        body_ += format("    DL: pad(%s, %lld, %s);\n", cur_.c_str(),
                        static_cast<long long>(p), out.c_str());
        cur_ = out;
        h_ += 2 * p;
        w_ += 2 * p;
    }

    void conv(int64_t k, int64_t r, int64_t stride, int64_t p)
    {
        if (p > 0)
            pad(p);
        const int64_t ho = (h_ - r) / stride + 1;
        const int64_t wo = (w_ - r) / stride + 1;
        const std::string wname = param(
            format("w%d[%lld][%lld][%lld][%lld]", nParam_,
                   static_cast<long long>(k), static_cast<long long>(c_),
                   static_cast<long long>(r), static_cast<long long>(r)));
        const std::string out = temp(k, ho, wo);
        body_ += format("    DL: conv2d(%s, %s, %lld, %s);\n", cur_.c_str(),
                        wname.c_str(), static_cast<long long>(stride),
                        out.c_str());
        cur_ = out;
        c_ = k;
        h_ = ho;
        w_ = wo;
    }

    void convDw(int64_t r, int64_t stride, int64_t p)
    {
        if (p > 0)
            pad(p);
        const int64_t ho = (h_ - r) / stride + 1;
        const int64_t wo = (w_ - r) / stride + 1;
        const std::string wname = param(
            format("w%d[%lld][%lld][%lld]", nParam_,
                   static_cast<long long>(c_), static_cast<long long>(r),
                   static_cast<long long>(r)));
        const std::string out = temp(c_, ho, wo);
        body_ += format("    DL: conv2d_dw(%s, %s, %lld, %s);\n",
                        cur_.c_str(), wname.c_str(),
                        static_cast<long long>(stride), out.c_str());
        cur_ = out;
        h_ = ho;
        w_ = wo;
    }

    void bnRelu(bool with_relu = true)
    {
        const std::string g = param(format(
            "g%d[%lld]", nParam_, static_cast<long long>(c_)));
        const std::string be = param(format(
            "be%d[%lld]", nParam_, static_cast<long long>(c_)));
        std::string out = temp(c_, h_, w_);
        body_ += format("    DL: batchnorm(%s, %s, %s, %s);\n",
                        cur_.c_str(), g.c_str(), be.c_str(), out.c_str());
        cur_ = out;
        if (with_relu) {
            out = temp(c_, h_, w_);
            body_ += format("    DL: relu_layer(%s, %s);\n", cur_.c_str(),
                            out.c_str());
            cur_ = out;
        }
    }

    void maxpool(int64_t k, int64_t stride, int64_t p)
    {
        if (p > 0)
            pad(p);
        const int64_t ho = (h_ - k) / stride + 1;
        const std::string out = temp(c_, ho, ho);
        body_ += format("    DL: maxpool(%s, %lld, %lld, %s);\n",
                        cur_.c_str(), static_cast<long long>(stride),
                        static_cast<long long>(k), out.c_str());
        cur_ = out;
        h_ = ho;
        w_ = ho;
    }

    /** Emits a conv on an arbitrary saved tensor (residual shortcuts)
     *  without disturbing the main path; returns the output name. */
    std::string convOn(const std::string &src, int64_t c, int64_t h,
                       int64_t k, int64_t r, int64_t stride)
    {
        const int64_t ho = (h - r) / stride + 1;
        const std::string wname = param(
            format("w%d[%lld][%lld][%lld][%lld]", nParam_,
                   static_cast<long long>(k), static_cast<long long>(c),
                   static_cast<long long>(r), static_cast<long long>(r)));
        const std::string out = temp(k, ho, ho);
        body_ += format("    DL: conv2d(%s, %s, %lld, %s);\n", src.c_str(),
                        wname.c_str(), static_cast<long long>(stride),
                        out.c_str());
        return out;
    }

    void residualAdd(const std::string &other)
    {
        const std::string out = temp(c_, h_, w_);
        body_ += format("    DL: add_layer(%s, %s, %s);\n", cur_.c_str(),
                        other.c_str(), out.c_str());
        cur_ = out;
    }

    void relu()
    {
        const std::string out = temp(c_, h_, w_);
        body_ += format("    DL: relu_layer(%s, %s);\n", cur_.c_str(),
                        out.c_str());
        cur_ = out;
    }

    void avgpoolDense(int64_t classes)
    {
        const std::string pooled = format("t%d", nTemp_++);
        locals_ += format("    float %s[%lld];\n", pooled.c_str(),
                          static_cast<long long>(c_));
        body_ += format("    DL: avgpool(%s, %s);\n", cur_.c_str(),
                        pooled.c_str());
        const std::string wname = param(format(
            "wfc[%lld][%lld]", static_cast<long long>(classes),
            static_cast<long long>(c_)));
        const std::string bname = param(format(
            "bfc[%lld]", static_cast<long long>(classes)));
        body_ += format("    DL: dense(%s, %s, %s, logits);\n",
                        pooled.c_str(), wname.c_str(), bname.c_str());
        decls_.push_back(format("output float logits[%lld]",
                                static_cast<long long>(classes)));
    }

    std::string current() const { return cur_; }

    /** Snapshot of the current tensor name and geometry (for residuals).*/
    void geometry(int64_t *c, int64_t *h) const
    {
        *c = c_;
        *h = h_;
    }

    std::string finish() const
    {
        std::string out = std::string(kDnnComponents);
        out += "main(";
        out += join(decls_, ",\n     ");
        out += ") {\n";
        out += locals_;
        out += body_;
        out += "}\n";
        return out;
    }

  private:
    std::string temp(int64_t c, int64_t h, int64_t w)
    {
        const std::string name = format("t%d", nTemp_++);
        locals_ += format("    float %s[%lld][%lld][%lld];\n", name.c_str(),
                          static_cast<long long>(c),
                          static_cast<long long>(h),
                          static_cast<long long>(w));
        return name;
    }

    std::string param(const std::string &decl_with_dims)
    {
        decls_.push_back("param float " + decl_with_dims);
        ++nParam_;
        const auto bracket = decl_with_dims.find('[');
        return decl_with_dims.substr(0, bracket);
    }

    int64_t c_;
    int64_t h_;
    int64_t w_;
    std::string cur_;
    std::vector<std::string> decls_;
    std::string locals_;
    std::string body_;
    int nTemp_ = 0;
    int nParam_ = 0;
};

} // namespace

std::string
resnet18Program()
{
    DnnEmitter e(3, 224);
    e.conv(64, 7, 2, 3);
    e.bnRelu();
    e.maxpool(3, 2, 1);

    const int64_t stage_channels[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < 2; ++block) {
            const int64_t k = stage_channels[stage];
            const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
            const std::string shortcut_in = e.current();
            int64_t in_c = 0;
            int64_t in_h = 0;
            e.geometry(&in_c, &in_h);
            std::string shortcut = shortcut_in;
            e.conv(k, 3, stride, 1);
            e.bnRelu();
            e.conv(k, 3, 1, 1);
            e.bnRelu(false);
            if (stride != 1) {
                // Downsample: 1x1 stride-2 conv on the block input (its
                // batchnorm folds into the conv weights).
                shortcut = e.convOn(shortcut_in, in_c, in_h, k, 1, stride);
            }
            e.residualAdd(shortcut);
            e.relu();
        }
    }
    e.avgpoolDense(1000);
    return e.finish();
}

std::string
mobilenetProgram()
{
    DnnEmitter e(3, 224);
    e.conv(32, 3, 2, 1);
    e.bnRelu();
    const struct { int64_t stride, out; } blocks[] = {
        {1, 64},  {2, 128}, {1, 128}, {2, 256}, {1, 256},
        {2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
        {1, 512}, {2, 1024}, {1, 1024},
    };
    for (const auto &b : blocks) {
        e.convDw(3, b.stride, 1);
        e.bnRelu();
        e.conv(b.out, 1, 1, 0);
        e.bnRelu();
    }
    e.avgpoolDense(1000);
    return e.finish();
}

std::string
brainStimulProgram()
{
    const int64_t n = 4096;
    std::string out = fftComponents(n);
    out += R"(power_spectrum(input complex spec[n], output float p[n]) {
    index i[0:n-1];
    p[i] = re(spec[i]*conj(spec[i]));
}
logreg_infer(input float x[D], state float w[D], output float y) {
    index d[0:D-1];
    y = sigmoid(sum[d](w[d]*x[d]));
}
scale_reference(param float ref[c], input float marker,
                output float sref[c]) {
    index k[0:c-1];
    sref[k] = ref[k]*marker;
}
predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                   param float P[c][a], param float H[c][b],
                   output float pred[c]) {
    index i[0:a-1], j[0:b-1], k[0:c-1];
    pred[k] = sum[i](P[k][i]*pos[i]);
    pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
}
mvmul(input float A[m][n], input float B[n], output float C[m]) {
    index i[0:n-1], j[0:m-1];
    C[j] = sum[i](A[j][i]*B[i]);
}
compute_ctrl_grad(input float pos_pred[c], input float ctrl_mdl[b],
                  input float pos_ref[c], param float HQ_g[b][c],
                  param float R_g[b][b], output float g[b]) {
    index i[0:b-1], j[0:c-1];
    float P_g[b], H_g[b], err[c];
    err[j] = pos_ref[j] - pos_pred[j];
    mvmul(HQ_g, err, P_g);
    mvmul(R_g, ctrl_mdl, H_g);
    g[i] = P_g[i] + H_g[i];
}
update_ctrl_model(input float ctrl_prev[b], input float g[b],
                  output float ctrl_mdl[b], output float ctrl_sgnl[s],
                  param int h) {
    index i[0:b-2], j[0:s-1];
    ctrl_sgnl[j] = ctrl_prev[h*j];
    ctrl_mdl[b-1] = 0;
    ctrl_mdl[i] = ctrl_prev[(i+1)] - g[(i+1)];
}
main(input complex ecog[4096], param complex tw[2048],
     state float w_cls[4096], input float pos[3],
     state float ctrl_mdl[80], param float pos_ref[120],
     param float P[120][3], param float HQ_g[80][120],
     param float H[120][80], param float R_g[80][80],
     output float stim_sgnl[2], output float biomarker) {
    complex spec[4096];
    float power[4096], sref[120], pos_pred[120], g[80];
)";
    out += fftCascade(n, "ecog", "spec");
    out += R"(    DSP: power_spectrum(spec, power);
    DA: logreg_infer(power, w_cls, biomarker);
    RBT: scale_reference(pos_ref, biomarker, sref);
    RBT: predict_trajectory(pos, ctrl_mdl, P, H, pos_pred);
    RBT: compute_ctrl_grad(pos_pred, ctrl_mdl, sref, HQ_g, R_g, g);
    RBT: update_ctrl_model(ctrl_mdl, g, ctrl_mdl, stim_sgnl, 40);
}
)";
    return out;
}

std::string
optionPricingProgram()
{
    // 96 resident news articles over a 129549-word bag-of-words space
    // (Table IV), 16384 options. The article matrix is `state`: the host
    // refreshes it out-of-band and the type modifier lets the accelerator
    // keep it in its 75 MB on-chip memory (Section II-A).
    return R"(sentiment_infer(state float art[N][D], state float w[D],
                output float sent[N]) {
    index n[0:N-1], d[0:D-1];
    sent[n] = sigmoid(sum[d](w[d]*art[n][d]));
}
market_signal(input float sent[N], output float sig) {
    index n[0:N-1];
    sig = sum[n](sent[n]) / N;
}
black_scholes(input float s[M], input float strike[M], input float t[M],
              input float sig, param float rate, param float vol,
              output float price[M]) {
    index i[0:M-1];
    float va, d1[M], d2[M], nd1[M], nd2[M];
    va = vol*(1 + (sig - 1/2));
    d1[i] = (ln(s[i]/strike[i]) + (rate + va*va/2)*t[i]) / (va*sqrt(t[i]));
    d2[i] = d1[i] - va*sqrt(t[i]);
    nd1[i] = (1 + erf(d1[i]/sqrt(2)))/2;
    nd2[i] = (1 + erf(d2[i]/sqrt(2)))/2;
    price[i] = s[i]*nd1[i] - strike[i]*exp(-rate*t[i])*nd2[i];
}
main(state float art[96][129549], state float w_sent[129549],
     input float s[16384], input float strike[16384], input float t[16384],
     param float rate, param float vol, output float price[16384]) {
    float sent[96], sig;
    DA: sentiment_infer(art, w_sent, sent);
    DA: market_signal(sent, sig);
    DA: black_scholes(s, strike, t, sig, rate, vol, price);
}
)";
}

} // namespace polymath::wl
