/**
 * @file
 * The Fig. 13 user-study proxy (DESIGN.md §1).
 *
 * The paper measured 20 programmers implementing K-means and DCT in Python
 * vs. PMLang. A human study cannot be re-run here; what *can* be measured
 * from real artifacts is lines of code: this corpus bundles idiomatic
 * NumPy implementations of the two study algorithms alongside the PMLang
 * programs of record, and counts non-blank, non-comment lines of each.
 * Implementation time is then modeled as
 *
 *     minutes = LOC * per-line-rate,
 *
 * with a higher per-line rate for PMLang (participants saw the language
 * for six minutes before coding) — the single calibrated constant
 * kPmlangUnfamiliarity below.
 */
#ifndef POLYMATH_WORKLOADS_PYTHON_CORPUS_H_
#define POLYMATH_WORKLOADS_PYTHON_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace polymath::wl {

/** Per-line effort of PMLang relative to Python for a newcomer. */
inline constexpr double kPmlangUnfamiliarity = 1.3;

/** One algorithm of the user study. */
struct UserStudyEntry
{
    std::string algorithm; ///< "Kmeans" or "DCT"
    std::string pmlang;    ///< PMLang implementation (program of record)
    std::string python;    ///< idiomatic NumPy implementation

    int64_t pmlangLoc() const;
    int64_t pythonLoc() const;

    /** Modeled implementation minutes (1 min per Python line). */
    double pmlangMinutes() const;
    double pythonMinutes() const;
};

/** The two study algorithms. */
const std::vector<UserStudyEntry> &userStudyCorpus();

/** PMLang LOC of every Table III/IV program (for the LOC column). */
int64_t pmlangLoc(const std::string &source);

} // namespace polymath::wl

#endif // POLYMATH_WORKLOADS_PYTHON_CORPUS_H_
