/**
 * @file
 * PMLang sources for every workload of Tables III and IV.
 *
 * Static algorithms are embedded verbatim; size-parametric programs (FFT's
 * per-stage instantiations, the two CNNs' layer stacks) are emitted by
 * generators so tensor shapes stay consistent by construction. The emitted
 * text is the program of record — it is what gets parsed, analyzed, built,
 * validated against native references, and counted for Table III's LOC.
 */
#ifndef POLYMATH_WORKLOADS_PROGRAMS_H_
#define POLYMATH_WORKLOADS_PROGRAMS_H_

#include <cstdint>
#include <string>

namespace polymath::wl {

// --- Robotics ---------------------------------------------------------

/** Fig. 4: MPC trajectory tracking for a two-wheeled robot. @p horizon
 *  sets the condensed prediction length (paper: 1024 control steps). */
std::string mobileRobotProgram();

/** Six-rotor UAV altitude/attitude MPC: rotor mixing, linearized attitude
 *  dynamics, condensed-horizon prediction, gradient step. */
std::string hexacopterProgram();

// --- Graph analytics (vertex programs, Fig. 6) ------------------------

/** BFS as an iterative min-plus vertex program over @p n vertices
 *  (compiled instance; deployed scale comes from the dataset profile). */
std::string bfsProgram(int64_t n);

/** Single-source shortest path with edge weights. */
std::string sssPProgram(int64_t n);

/** PageRank power iteration (extension workload: Graphicionado's
 *  flagship algorithm, beyond the paper's Table III). One invocation is
 *  one damped iteration; `rank` and the precomputed out-degrees persist
 *  as state. */
std::string pagerankProgram(int64_t n);

// --- Data analytics ----------------------------------------------------

/** Low-rank matrix factorization, full-batch gradient descent step. */
std::string lrmfProgram(int64_t users, int64_t items, int64_t rank);

/** K-means: one assignment + centroid update step. */
std::string kmeansProgram(int64_t points, int64_t dims, int64_t clusters);

/** Logistic-regression training step (TABLA-style). */
std::string logregProgram(int64_t samples, int64_t features);

/** Logistic-regression inference (used inside BrainStimul). */
std::string logregInferProgram(int64_t features);

/** Black-Scholes European call pricing over an option batch. */
std::string blackScholesProgram(int64_t options);

// --- DSP ---------------------------------------------------------------

/** Radix-2 complex FFT: bit-reversal plus log2(n) butterfly stages, one
 *  instantiation per stage. @p n must be a power of two. */
std::string fftProgram(int64_t n);

/** 8x8 blocked DCT-II over an image (stride 8), basis as a param table. */
std::string dctProgram(int64_t height, int64_t width);

// --- Deep learning ------------------------------------------------------

/** ResNet-18 for 224x224x3 ImageNet classification, batch 1. */
std::string resnet18Program();

/** MobileNet-V1 (depthwise-separable) for ImageNet, batch 1. */
std::string mobilenetProgram();

// --- End-to-end applications (Table IV) --------------------------------

/** BrainStimul: FFT (DSP) -> logistic classification (DA) -> MPC (RBT),
 *  one closed-loop iteration per invocation. */
std::string brainStimulProgram();

/** OptionPricing: logistic-regression sentiment (DA on TABLA) +
 *  Black-Scholes pricing (DA on HyperStreams). */
std::string optionPricingProgram();

} // namespace polymath::wl

#endif // POLYMATH_WORKLOADS_PROGRAMS_H_
