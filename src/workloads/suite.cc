#include "workloads/suite.h"

#include <algorithm>
#include <mutex>

#include "core/strings.h"

#include "lower/lower.h"
#include "passes/pass.h"
#include "pmlang/parser.h"
#include "pmlang/sema.h"
#include "workloads/programs.h"
#include "workloads/reference.h"

namespace polymath::wl {

using lang::Domain;

target::WorkloadCost
Benchmark::cpuCost() const
{
    target::WorkloadCost cost;
    cost.domain = domain;
    cost.flops = deployedFlops;
    cost.bytes = deployedBytes;
    cost.kernels = kernels;
    cost.invocations = profile.invocations;
    cost.parallelWidth = profile.parallelWidth;
    cost.irregular = irregular;
    cost.cpuEff = cpuEff;
    cost.gpuEff = gpuEff;
    return cost;
}

target::WorkloadCost
EndToEndApp::cpuCost() const
{
    target::WorkloadCost cost;
    cost.domain = Domain::None;
    cost.flops = deployedFlops;
    cost.bytes = deployedBytes;
    cost.kernels = kernelLaunches;
    cost.invocations = profile.invocations;
    cost.parallelWidth = parallelWidth;
    return cost;
}

std::unique_ptr<ir::Graph>
buildGraph(const std::string &source, const ir::BuildOptions &opts)
{
    return ir::compileToSrdfg(source, opts);
}

lower::CompiledProgram
compileBenchmark(const std::string &source, const ir::BuildOptions &opts,
                 const lower::AcceleratorRegistry &registry,
                 Domain default_domain)
{
    auto graph = buildGraph(source, opts);
    auto pipeline = pass::standardPipeline();
    pipeline.runToFixpoint(*graph);
    lower::lowerGraph(*graph, registry.supportedOpsByDomain(),
                      default_domain);
    return lower::compileProgram(*graph, registry, default_domain);
}

std::shared_ptr<const lower::CompiledProgram>
compileBenchmarkCached(const std::string &source,
                       const ir::BuildOptions &opts,
                       const lower::AcceleratorRegistry &registry,
                       Domain default_domain, lower::CompileCache &cache)
{
    const std::string key =
        lower::compileCacheKey(source, opts, default_domain, registry);
    return cache.getOrCompile(key, [&] {
        return compileBenchmark(source, opts, registry, default_domain);
    });
}

namespace {

/** Builds one Table III entry; deployed flops defaulting to the compiled
 *  graph's exact scalar-op count times the profile scale. */
Benchmark
makeBenchmark(Benchmark b)
{
    if (b.deployedFlops == 0) {
        auto graph = buildGraph(b.source, b.buildOpts);
        b.deployedFlops = static_cast<int64_t>(
            static_cast<double>(graph->scalarOpCount()) * b.profile.scale);
    }
    if (b.optimalFlops == 0)
        b.optimalFlops = b.deployedFlops;
    return b;
}

std::vector<Benchmark>
makeTableIII()
{
    std::vector<Benchmark> out;

    {
        Benchmark b;
        b.id = "MobileRobot";
        b.algorithm = "Model Predictive Control";
        b.config = "Trajectory Tracking, Horizon = 1024";
        b.domain = Domain::RBT;
        b.accel = "RoboX";
        b.source = mobileRobotProgram();
        b.profile.invocations = 1024;
        b.profile.parallelWidth = 30;
        b.deployedBytes = 14000;
        b.kernels = 1; // cuBLAS graph-captured step on the GPU baselines
        b.cpuEff = 0.0028; // ACADO codegen on a 3.4k-op kernel
        b.optimalFlops = ref::mpcOptimalFlops(3, 20, 30);
        b.optimalFragments = 6;
        out.push_back(makeBenchmark(std::move(b)));
    }
    {
        Benchmark b;
        b.id = "Hexacopter";
        b.algorithm = "Model Predictive Control";
        b.config = "Altitude Control, Horizon = 1024";
        b.domain = Domain::RBT;
        b.accel = "RoboX";
        b.source = hexacopterProgram();
        b.profile.invocations = 1024;
        b.profile.parallelWidth = 384;
        b.deployedBytes = 1520000;
        b.kernels = 2;
        b.cpuEff = 0.021;
        b.optimalFlops = 340000;
        b.optimalFragments = 10;
        out.push_back(makeBenchmark(std::move(b)));
    }

    auto graph_bench = [](std::string id, std::string config, bool weighted,
                          int64_t vertices, int64_t edges, int64_t iters) {
        Benchmark b;
        b.id = std::move(id);
        b.algorithm = weighted ? "Single Source Shortest Path"
                               : "Breadth-First Search";
        b.config = std::move(config);
        b.domain = Domain::GA;
        b.accel = "Graphicionado";
        b.source = weighted ? sssPProgram(48) : bfsProgram(48);
        b.profile.invocations = iters;
        b.profile.vertices = vertices;
        b.profile.edges = edges;
        b.profile.parallelWidth = static_cast<double>(vertices) / 8.0;
        b.irregular = true;
        // CPU (GraphMat) view: ~4 ops and ~8 bytes per edge per sweep.
        b.deployedFlops = edges * 4 + vertices * 2;
        b.deployedBytes = edges * 8 + vertices * 8;
        b.kernels = 2;
        b.cpuEff = 0.028; // GraphMat at ~2.4 GTEPS on 6 cores
        b.optimalOpsPerEdge = 2.0;
        b.optimalOpsPerVertex = 1.0;
        b.optimalFlops = ref::graphOptimalFlops(vertices, edges);
        b.optimalFragments = 2;
        return makeBenchmark(std::move(b));
    };
    // Scaled-down stand-ins for the Table III graphs (DESIGN.md §1);
    // the degree skew (R-MAT) matches, the sizes are laptop-scale.
    out.push_back(graph_bench("Twitter-BFS",
                              "#V=1.05M, #E=16.8M (R-MAT proxy)", false,
                              int64_t{1} << 20, int64_t{1} << 24, 8));
    out.push_back(graph_bench("Wiki-BFS",
                              "#V=262k, #E=6.3M (R-MAT proxy)", false,
                              int64_t{1} << 18, int64_t{6} << 20, 8));
    out.push_back(graph_bench("LiveJourn-SSP",
                              "#V=524k, #E=7.3M (R-MAT proxy)", true,
                              int64_t{1} << 19, int64_t{7} << 20, 16));

    auto lrmf_bench = [](std::string id, std::string config,
                         int64_t users, int64_t items, int64_t ratings,
                         double cpu_eff) {
        // cpu_eff reflects mlpack SGD's random-access rating updates.
        // Compiled at an equivalent-work dense shape: full-batch GD over
        // users x items cells does the same arithmetic the native SGD
        // stack performs over the observed ratings (DESIGN.md §1).
        Benchmark b;
        b.id = std::move(id);
        b.algorithm = "Low Rank Matrix Factorization";
        b.config = std::move(config);
        b.domain = Domain::DA;
        b.accel = "TABLA";
        b.source = lrmfProgram(users, items, 10);
        b.profile.invocations = 10;
        b.profile.parallelWidth = static_cast<double>(users * 10);
        b.deployedBytes = ratings * 24;
        b.kernels = 3;
        b.cpuEff = cpu_eff;
        // Hand-tuned SGD does the same multiply-accumulate work as the
        // equivalent-shape dense GD (that is how the shape was chosen),
        // so optimalFlops defaults to the compiled count.
        b.optimalFragments = 3;
        return makeBenchmark(std::move(b));
    };
    out.push_back(lrmf_bench("MovieL-20M",
                             "40110 movies, 259137 users; 24.4M ratings",
                             4880, 5000, 24409600, 0.05));
    out.push_back(lrmf_bench("MovieL-100K",
                             "1682 movies, 943 users; 100000 ratings",
                             400, 250, 100000, 0.04));

    auto kmeans_bench = [](std::string id, std::string config, int64_t n,
                           int64_t d, int64_t k) {
        Benchmark b;
        b.id = std::move(id);
        b.algorithm = "K-Means Clustering";
        b.config = std::move(config);
        b.domain = Domain::DA;
        b.accel = "TABLA";
        b.source = kmeansProgram(n, d, k);
        b.profile.invocations = 10;
        b.profile.parallelWidth = static_cast<double>(n);
        b.deployedBytes = n * d * 8;
        b.kernels = 6;
        b.cpuEff = d >= 64 ? 0.30 : 0.20; // long rows vectorize well
        b.optimalFlops = ref::kmeansOptimalFlops(n, d, k);
        b.optimalFragments = 4;
        return makeBenchmark(std::move(b));
    };
    out.push_back(kmeans_bench("DigitCluster",
                               "784 features; 120000 images; K=10", 120000,
                               784, 10));
    out.push_back(kmeans_bench("ElecUse",
                               "4 features; 2075259 data points; K=12",
                               2075259, 4, 12));

    auto fft_bench = [](int64_t n) {
        Benchmark b;
        b.id = "FFT-" + std::to_string(n);
        b.algorithm = "Fast-Fourier Transform";
        b.config = "1D FFT-complex; " + std::to_string(n) + "x1 input";
        b.domain = Domain::DSP;
        b.accel = "DECO";
        b.source = fftProgram(n);
        b.profile.invocations = 1000; // streamed signal frames
        b.profile.parallelWidth = static_cast<double>(n) / 2.0;
        b.deployedBytes = n * 16 * 2;
        int64_t lg = 0;
        while ((int64_t{1} << lg) < n)
            ++lg;
        b.kernels = lg + 1;
        b.cpuEff = 0.004; // FFTW3 in complex-op units (~1 cop = 5 flops)
        b.optimalFlops = 3 * (n / 2) * lg; // 1 cmul + 2 cadd per butterfly
        b.optimalFragments = lg;
        return makeBenchmark(std::move(b));
    };
    out.push_back(fft_bench(8192));
    out.push_back(fft_bench(16384));

    auto dct_bench = [](int64_t hw) {
        Benchmark b;
        b.id = "DCT-" + std::to_string(hw);
        b.algorithm = "Discrete Cosine Transform";
        b.config = std::to_string(hw) + "x" + std::to_string(hw) +
                   " image; 8x8 kernel, stride=8";
        b.domain = Domain::DSP;
        b.accel = "DECO";
        b.source = dctProgram(hw, hw);
        b.profile.invocations = 100; // video frames
        b.profile.parallelWidth = static_cast<double>(hw * hw);
        b.deployedBytes = hw * hw * 8 * 2;
        b.kernels = 2;
        b.cpuEff = 0.15; // SIMD separable filter
        b.optimalFlops = ref::dctOptimalFlops(hw, hw) * 15 / 16;
        b.optimalFragments = 2;
        return makeBenchmark(std::move(b));
    };
    out.push_back(dct_bench(1024));
    out.push_back(dct_bench(2048));

    {
        Benchmark b;
        b.id = "ResNet-18";
        b.algorithm = "Deep Neural Network";
        b.config = "Batch Size = 1, ImageNet";
        b.domain = Domain::DL;
        b.accel = "TVM-VTA";
        b.source = resnet18Program();
        b.profile.invocations = 100; // inference requests
        b.profile.parallelWidth = 100000;
        b.deployedBytes = 59000000; // fp32 weights + activations
        b.kernels = 60;
        b.cpuEff = 0.26; // TensorFlow+MKL at batch 1
        b.optimalFragments = 60;
        out.push_back(makeBenchmark(std::move(b)));
    }
    {
        Benchmark b;
        b.id = "MobileNet";
        b.algorithm = "Deep Neural Network";
        b.config = "Batch Size = 1, ImageNet";
        b.domain = Domain::DL;
        b.accel = "TVM-VTA";
        b.source = mobilenetProgram();
        b.profile.invocations = 100;
        b.profile.parallelWidth = 80000;
        b.deployedBytes = 25000000;
        b.kernels = 80;
        b.cpuEff = 0.20; // depthwise convs vectorize worse
        b.optimalFragments = 80;
        out.push_back(makeBenchmark(std::move(b)));
    }
    return out;
}

std::vector<EndToEndApp>
makeTableIV()
{
    std::vector<EndToEndApp> out;
    {
        EndToEndApp app;
        app.id = "BrainStimul";
        app.source = brainStimulProgram();
        app.kernels = {
            {"FFT", "DECO", Domain::DSP, 0.004},
            {"LR", "TABLA", Domain::DA, 0.002},
            {"MPC", "RoboX", Domain::RBT, 0.0028},
        };
        app.profile.invocations = 1000; // closed-loop stimulation steps
        app.profile.parallelWidth = 4096;
        app.profile.hostGlueSeconds = 30e-6; // per-step marshaling/logging
        auto graph = buildGraph(app.source, app.buildOpts);
        app.deployedFlops = graph->scalarOpCount();
        app.deployedBytes = 4096 * 16 * 2 + 4096 * 8 + 16000;
        app.kernelLaunches = 17;
        app.parallelWidth = 4096;
        out.push_back(std::move(app));
    }
    {
        EndToEndApp app;
        app.id = "OptionPricing";
        app.source = optionPricingProgram();
        app.kernels = {
            {"LR", "TABLA", Domain::DA, 0.05},
            {"BLKS", "HyperStreams", Domain::DA, 0.0017},
        };
        app.profile.invocations = 100; // pricing batches
        app.profile.parallelWidth = 16384;
        app.profile.hostGlueSeconds = 300e-6; // feeds/news ingestion
        auto graph = buildGraph(app.source, app.buildOpts);
        app.deployedFlops = graph->scalarOpCount();
        app.deployedBytes = 96ll * 129549 * 8 + 16384 * 32;
        app.kernelLaunches = 5;
        app.parallelWidth = 16384;
        out.push_back(std::move(app));
    }
    return out;
}

} // namespace

const std::vector<Benchmark> &
tableIII()
{
    static std::once_flag once;
    static std::vector<Benchmark> table;
    std::call_once(once, [] { table = makeTableIII(); });
    return table;
}

const Benchmark &
benchmarkById(const std::string &id)
{
    for (const auto &b : tableIII()) {
        if (b.id == id)
            return b;
    }
    fatal("unknown benchmark '" + id + "'");
}

const std::vector<EndToEndApp> &
tableIV()
{
    static std::once_flag once;
    static std::vector<EndToEndApp> table;
    std::call_once(once, [] { table = makeTableIV(); });
    return table;
}

lower::Partition
optimalPartition(const Benchmark &bench, const lower::Partition &compiled)
{
    lower::Partition opt;
    opt.domain = compiled.domain;
    opt.accel = compiled.accel;
    opt.loads = compiled.loads;
    opt.stores = compiled.stores;

    if (bench.domain == Domain::GA) {
        // Hand-tuned vertex program: one process_edges + one apply with
        // the native per-edge/per-vertex op counts.
        lower::IrFragment process;
        process.opcode = "process_edges/native";
        process.attrs["dim0"] = 48;
        process.attrs["dim1"] = 48;
        process.attrs["reduce_extent"] = 48;
        process.flops = static_cast<int64_t>(
            bench.optimalOpsPerEdge * 48.0 * 48.0);
        opt.fragments.push_back(process);
        lower::IrFragment apply;
        apply.opcode = "apply/native";
        apply.attrs["dim0"] = 48;
        apply.flops =
            static_cast<int64_t>(bench.optimalOpsPerVertex * 48.0);
        opt.fragments.push_back(apply);
        return opt;
    }

    // Expert structure: optimalFragments kernels forming a balanced chain
    // (each depends on the previous via a shared tensor name), no identity
    // moves, the native op count.
    const int64_t per_frag =
        std::max<int64_t>(1, static_cast<int64_t>(
                                 static_cast<double>(bench.optimalFlops) /
                                 bench.profile.scale) /
                                 std::max<int64_t>(bench.optimalFragments,
                                                   1));
    for (int64_t i = 0; i < bench.optimalFragments; ++i) {
        lower::IrFragment frag;
        frag.opcode = "kernel" + std::to_string(i);
        frag.flops = per_frag;
        lower::TensorArg in;
        in.name = "chain" + std::to_string(i);
        in.shape = Shape{1};
        lower::TensorArg out_arg;
        out_arg.name = "chain" + std::to_string(i + 1);
        out_arg.shape = Shape{1};
        frag.inputs.push_back(in);
        frag.outputs.push_back(out_arg);
        if (frag.opcode.rfind("kernel", 0) == 0 && bench.domain == Domain::DL)
            frag.opcode = "conv2d"; // VTA GEMM-core efficiency class
        opt.fragments.push_back(std::move(frag));
    }
    return opt;
}

} // namespace polymath::wl
