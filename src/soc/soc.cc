#include "soc/soc.h"

#include <algorithm>

namespace polymath::soc {

SocRuntime::SocRuntime()
    : SocRuntime(target::standardBackends(), target::socConfig())
{
}

SocRuntime::SocRuntime(std::vector<std::unique_ptr<Backend>> backends,
                       target::SocConfig config)
    : backends_(std::move(backends)), config_(config)
{
}

SocResult
SocRuntime::execute(const lower::CompiledProgram &program,
                    const WorkloadProfile &profile,
                    const std::set<std::string> &accelerated,
                    const std::map<std::string, double> &host_eff) const
{
    SocResult result;
    result.total.machine = "PolyMath SoC";

    const double invocations = static_cast<double>(profile.invocations);

    for (const auto &partition : program.partitions) {
        const bool offload =
            accelerated.empty() || accelerated.count(partition.accel) > 0;
        const Backend *backend =
            offload ? target::findBackend(backends_, partition.accel)
                    : nullptr;

        PerfReport part;
        if (backend) {
            part = backend->simulate(partition, profile);

            // DMA between DRAM and the accelerator's local memory: param
            // and state tensors are placed once; inputs/outputs move every
            // invocation. The backend already overlaps streaming with
            // compute; the SoC adds the serialized DMA setup + transfer.
            // Transfer *bandwidth* is already the backend's DRAM model
            // (memorySeconds); the host adds DMA setup latency per
            // invocation plus the one-time param/state placement.
            const auto dma = target::dmaBreakdown(partition);
            const double per_run_s = config_.perTransferUs * 1e-6;
            const double once_s =
                static_cast<double>(dma.oneTimeBytes) /
                (config_.dmaGBs * 1e9);
            const double transfer_s = once_s + per_run_s * invocations;
            const int64_t moved =
                dma.oneTimeBytes +
                static_cast<int64_t>(
                    static_cast<double>(dma.perRunBytes) * invocations);
            const double transfer_j =
                static_cast<double>(moved) * config_.dramPjPerByte * 1e-12;

            result.transferSeconds += transfer_s;
            result.transferJoules += transfer_j;
            part.seconds += transfer_s;
            part.joules += transfer_j;
        } else {
            // Host execution of this partition's kernels.
            target::WorkloadCost cost;
            cost.domain = partition.domain;
            cost.flops = static_cast<int64_t>(
                static_cast<double>(partition.flops()) * profile.scale);
            cost.bytes = partition.loadBytes() + partition.storeBytes();
            cost.kernels =
                static_cast<int64_t>(partition.fragments.size());
            cost.invocations = profile.invocations;
            cost.parallelWidth = profile.parallelWidth;
            cost.irregular = profile.edges > 0;
            auto eff = host_eff.find(partition.accel);
            if (eff != host_eff.end())
                cost.cpuEff = eff->second;
            part = host_.simulate(cost);
        }
        result.partitions.push_back(part);
        result.total += part;
    }

    // Host glue (marshaling, I/O): runs on the host CPU every invocation,
    // at full CPU power when the whole app is on the CPU, at a marshaling
    // share of it when kernels are offloaded.
    if (profile.hostGlueSeconds > 0) {
        bool any_offload = false;
        for (const auto &partition : program.partitions) {
            any_offload |= accelerated.empty() ||
                           accelerated.count(partition.accel) > 0;
        }
        const double glue_s = profile.hostGlueSeconds * invocations;
        result.total.seconds += glue_s;
        result.total.joules += glue_s * (any_offload ? 15.0 : 80.0);
    }

    // Host manager: dependency tracking + DMA initiation while running.
    const double host_j = config_.hostWatts * result.total.seconds;
    result.total.joules += host_j;
    result.transferJoules += host_j * 0.5; // manager mostly drives DMA
    return result;
}

} // namespace polymath::soc
