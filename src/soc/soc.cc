#include "soc/soc.h"

#include <algorithm>

#include "core/error.h"
#include "core/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "targets/common/cost_ledger.h"

namespace polymath::soc {

SocRuntime::SocRuntime()
    : SocRuntime(target::standardBackends(), target::socConfig())
{
}

SocRuntime::SocRuntime(std::vector<std::unique_ptr<Backend>> backends,
                       target::SocConfig config, FaultModel faults)
    : backends_(std::move(backends)), config_(config),
      faults_(std::move(faults))
{
    config_.validate();
}

SocResult
SocRuntime::execute(const lower::CompiledProgram &program,
                    const WorkloadProfile &profile,
                    const std::set<std::string> &accelerated,
                    const std::map<std::string, double> &host_eff) const
{
    obs::Span span("soc:execute", "soc");
    if (span.active()) {
        span.arg("partitions",
                 static_cast<int64_t>(program.partitions.size()));
        span.arg("invocations", profile.invocations);
        span.arg("faults", faults_.enabled() ? int64_t{1} : int64_t{0});
    }
    if (!faults_.enabled())
        return executeInternal(program, profile, accelerated, host_eff,
                               nullptr, /*primary=*/true);

    SocResult result =
        executeInternal(program, profile, accelerated, host_eff, &faults_,
                        /*primary=*/true);
    const SocResult fault_free =
        executeInternal(program, profile, accelerated, host_eff, nullptr,
                        /*primary=*/false);
    result.reliability.actualSeconds = result.total.seconds;
    result.reliability.actualJoules = result.total.joules;
    result.reliability.faultFreeSeconds = fault_free.total.seconds;
    result.reliability.faultFreeJoules = fault_free.total.joules;
    return result;
}

PerfReport
SocRuntime::hostPartitionRun(const lower::Partition &partition,
                             const WorkloadProfile &profile,
                             const std::map<std::string, double> &host_eff,
                             bool degraded) const
{
    target::WorkloadCost cost =
        target::hostPartitionCost(partition, profile);
    auto eff = host_eff.find(partition.accel);
    if (eff != host_eff.end())
        cost.cpuEff = eff->second;
    if (degraded) {
        const double native =
            cost.cpuEff > 0
                ? cost.cpuEff
                : target::CpuModel::domainEfficiency(cost.domain,
                                                     cost.irregular);
        cost.cpuEff = native * config_.hostFallbackEff;
    }
    return host_.simulate(cost);
}

// Param and state tensors are placed once; inputs/outputs move every
// invocation. The backend already overlaps streaming with compute; the
// SoC adds the DMA setup + transfer. Transfer *bandwidth* is already the
// backend's DRAM model (memorySeconds); the host adds DMA setup latency
// per invocation plus the one-time param/state placement.
SocRuntime::AccelRun
SocRuntime::accelPartitionRun(const lower::Partition &partition,
                              const Backend &backend,
                              const WorkloadProfile &profile) const
{
    const double invocations = static_cast<double>(profile.invocations);
    AccelRun run;
    run.part = backend.simulate(partition, profile);
    const auto dma = target::dmaBreakdown(partition);
    const double per_run_s = config_.perTransferUs * 1e-6;
    const double once_s =
        static_cast<double>(dma.oneTimeBytes) / (config_.dmaGBs * 1e9);
    run.transferSeconds = once_s + per_run_s * invocations;
    run.movedBytes =
        dma.oneTimeBytes +
        static_cast<int64_t>(
            static_cast<double>(dma.perRunBytes) * invocations);
    run.transferJoules = static_cast<double>(run.movedBytes) *
                         config_.dramPjPerByte * 1e-12;
    run.part.seconds += run.transferSeconds;
    run.part.joules += run.transferJoules;
    if (run.part.ledger) {
        // Keep the ledger's sums-to-totals invariant across the SoC's
        // additions. Safe to mutate: `run.part` owns the only alias of
        // this ledger until the run is copied out. The moved bytes are
        // already attributed to the backend's own dma entries, so this
        // entry carries time and energy only.
        auto &e = run.part.ledger->add("soc:dma setup+placement", "dma");
        e.seconds = run.transferSeconds;
        e.joules = run.transferJoules;
        e.bound = target::BoundClass::Memory;
    }
    return run;
}

void
SocRuntime::finalizeTotals(SocResult &result,
                           const WorkloadProfile &profile,
                           bool any_offload) const
{
    // Host glue (marshaling, I/O): runs on the host CPU every invocation,
    // at full CPU power when the whole app is on the CPU, at a marshaling
    // share of it when kernels are offloaded.
    if (profile.hostGlueSeconds > 0) {
        const double glue_s =
            profile.hostGlueSeconds *
            static_cast<double>(profile.invocations);
        result.total.seconds += glue_s;
        result.total.joules +=
            glue_s * (any_offload ? config_.glueOffloadWatts
                                  : config_.glueCpuWatts);
    }

    // Host manager: dependency tracking + DMA initiation while running.
    const double host_j = config_.hostWatts * result.total.seconds;
    result.total.joules += host_j;
    result.transferJoules += host_j * 0.5; // manager mostly drives DMA
}

SocResult
SocRuntime::executeInternal(const lower::CompiledProgram &program,
                            const WorkloadProfile &profile,
                            const std::set<std::string> &accelerated,
                            const std::map<std::string, double> &host_eff,
                            const FaultModel *faults, bool primary) const
{
    SocResult result;
    ReliabilityReport &rel = result.reliability;
    result.total.machine = "PolyMath SoC";

    // Virtual timeline: one fresh track per primary execution, DMA and
    // compute spans laid out in simulated seconds starting at t=0.
    auto &recorder = obs::TraceRecorder::global();
    const bool trace = primary && recorder.enabled();
    const int64_t vtrack = trace ? recorder.newVirtualTrack() : 0;
    double vclock = 0.0;
    int64_t dma_bytes = 0;

    auto host_part = [&](const lower::Partition &partition, bool degraded) {
        return hostPartitionRun(partition, profile, host_eff, degraded);
    };
    auto accel_part = [&](const lower::Partition &partition,
                          const Backend *backend) {
        AccelRun run = accelPartitionRun(partition, *backend, profile);
        dma_bytes += run.movedBytes;
        return run;
    };

    bool any_offload = false;
    for (size_t pi = 0; pi < program.partitions.size(); ++pi) {
        const auto &partition = program.partitions[pi];
        const int p = static_cast<int>(pi);
        const bool offload =
            accelerated.empty() || accelerated.count(partition.accel) > 0;
        any_offload = any_offload || offload;
        const Backend *backend =
            offload ? target::findBackend(backends_, partition.accel)
                    : nullptr;

        const size_t events_before = rel.events.size();
        double part_transfer = 0.0;
        PerfReport part;
        if (backend && faults) {
            ++rel.offloadAttempts;
            const FaultConfig &fc = faults->config();
            bool fall_back = false;
            double overhead_s = 0.0;
            double overhead_j = 0.0;

            // Permanent accelerator loss. Retrying cannot help, so both
            // non-Abort policies degrade straight to the host.
            if (faults->acceleratorUnavailable(p)) {
                ++rel.faultsInjected;
                ++rel.accelFaults;
                if (fc.accelPolicy == DegradationPolicy::Abort) {
                    fatal(format("SoC: accelerator '%s' unavailable for "
                                 "partition %d",
                                 partition.accel.c_str(), p));
                }
                fall_back = true;
                rel.addEvent(FaultEvent{FaultClass::AcceleratorUnavailable,
                                        p, partition.accel, 0, true});
            }

            // Transient DMA failures: retry with exponential backoff until
            // the budget runs out, then degrade.
            if (!fall_back) {
                int attempt = 0;
                int retries = 0;
                bool faulted = false;
                while (faults->dmaFails(p, attempt)) {
                    faulted = true;
                    ++rel.faultsInjected;
                    ++rel.dmaFaults;
                    if (fc.dmaPolicy == DegradationPolicy::Abort) {
                        fatal(format(
                            "SoC: DMA transfer failed for partition %d "
                            "(%s)",
                            p, partition.accel.c_str()));
                    }
                    if (fc.dmaPolicy == DegradationPolicy::HostFallback ||
                        attempt >= fc.maxDmaRetries) {
                        fall_back = true;
                        break;
                    }
                    overhead_s += faults->backoffSeconds(attempt);
                    ++rel.retriesSpent;
                    ++retries;
                    ++attempt;
                }
                if (faulted) {
                    rel.addEvent(FaultEvent{FaultClass::DmaFailure, p,
                                            partition.accel, retries,
                                            fall_back});
                }
            }

            // Watchdog overruns: each re-execution repeats the whole
            // partition (compute + DMA), so the wasted runs stay in the
            // bill even if the partition ultimately degrades.
            if (!fall_back) {
                const AccelRun run = accel_part(partition, backend);
                int attempt = 0;
                int reruns = 0;
                bool faulted = false;
                while (faults->watchdogFires(p, attempt)) {
                    faulted = true;
                    ++rel.faultsInjected;
                    ++rel.watchdogFaults;
                    if (fc.watchdogPolicy == DegradationPolicy::Abort) {
                        fatal(format("SoC: watchdog timeout on partition "
                                     "%d (%s)",
                                     p, partition.accel.c_str()));
                    }
                    if (fc.watchdogPolicy ==
                            DegradationPolicy::HostFallback ||
                        attempt >= fc.maxReexecutions) {
                        fall_back = true;
                        break;
                    }
                    overhead_s += run.part.seconds;
                    overhead_j += run.part.joules;
                    ++rel.retriesSpent;
                    ++reruns;
                    ++attempt;
                }
                if (faulted) {
                    rel.addEvent(FaultEvent{FaultClass::WatchdogTimeout, p,
                                            partition.accel, reruns,
                                            fall_back});
                }
                if (!fall_back) {
                    part = run.part;
                    part_transfer = run.transferSeconds;
                    result.transferSeconds += run.transferSeconds;
                    result.transferJoules += run.transferJoules;
                } else {
                    // The overrun that exhausted the budget is wasted too.
                    overhead_s += run.part.seconds;
                    overhead_j += run.part.joules;
                }
            }

            if (fall_back) {
                ++rel.hostFallbacks;
                part = host_part(partition, /*degraded=*/true);
            }
            part.seconds += overhead_s;
            part.joules += overhead_j;
            part.overheadSeconds += overhead_s;
        } else if (backend) {
            const AccelRun run = accel_part(partition, backend);
            part_transfer = run.transferSeconds;
            result.transferSeconds += run.transferSeconds;
            result.transferJoules += run.transferJoules;
            part = run.part;
        } else {
            part = host_part(partition, /*degraded=*/false);
        }
        result.partitions.push_back(part);
        result.total += part;

        if (trace) {
            // Fault instants mark the partition's start on the timeline;
            // DMA occupies [vclock, vclock+transfer], compute the rest of
            // the partition's simulated time.
            for (size_t ei = events_before; ei < rel.events.size(); ++ei) {
                const FaultEvent &ev = rel.events[ei];
                recorder.virtualInstant(
                    "fault:" + toString(ev.fault), "fault", vtrack, vclock,
                    {obs::TraceArg::num("partition", ev.partition),
                     obs::TraceArg::str("accel", ev.accel),
                     obs::TraceArg::num("retries", ev.retries),
                     obs::TraceArg::num("fell_back", ev.fellBack ? 1 : 0)});
            }
            if (part_transfer > 0.0) {
                recorder.virtualSpan(
                    format("dma[%d] %s", p, partition.accel.c_str()),
                    "dma", vtrack, vclock, part_transfer,
                    {obs::TraceArg::num("bytes",
                                        partition.loadBytes() +
                                            partition.storeBytes())});
            }
            recorder.virtualSpan(
                format("compute[%d] %s", p,
                       part.machine.empty() ? partition.accel.c_str()
                                            : part.machine.c_str()),
                "compute", vtrack, vclock + part_transfer,
                std::max(0.0, part.seconds - part_transfer),
                {obs::TraceArg::str("accel", partition.accel),
                 obs::TraceArg::num(
                     "fragments",
                     static_cast<int64_t>(partition.fragments.size()))});
            vclock += part.seconds;
        }
    }

    finalizeTotals(result, profile, any_offload);

    if (primary) {
        auto &metrics = obs::MetricsRegistry::global();
        metrics.counter("soc.executions").add(1);
        metrics.counter("soc.partitions")
            .add(static_cast<int64_t>(program.partitions.size()));
        metrics.counter("soc.dma.bytes").add(dma_bytes);
        if (faults) {
            metrics.counter("soc.faults.injected").add(rel.faultsInjected);
            metrics.counter("soc.faults.retries").add(rel.retriesSpent);
            metrics.counter("soc.faults.host_fallbacks")
                .add(rel.hostFallbacks);
            metrics.counter("soc.faults.offload_attempts")
                .add(rel.offloadAttempts);
        }
    }
    return result;
}

} // namespace polymath::soc
