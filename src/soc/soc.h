/**
 * @file
 * Multi-accelerator SoC runtime (Section V-A3, "Multi-acceleration").
 *
 * All accelerators are cascaded on one SoC with shared DRAM and a
 * light-weight host manager that honors data dependencies between
 * partitions and initiates DMA between DRAM and each accelerator's local
 * memory. Partitions may selectively run on their domain accelerator or
 * fall back to the host CPU — which is how the Fig. 10/11 sweeps over
 * "which kernels are accelerated" are produced.
 */
#ifndef POLYMATH_SOC_SOC_H_
#define POLYMATH_SOC_SOC_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lower/compile.h"
#include "soc/fault.h"
#include "targets/common/backend.h"
#include "targets/cpu/cpu_model.h"

namespace polymath::soc {

using target::Backend;
using target::PerfReport;
using target::WorkloadProfile;

/** Outcome of one end-to-end execution. */
struct SocResult
{
    PerfReport total; ///< end-to-end, including transfers and host

    /** Per-partition reports, in schedule order. */
    std::vector<PerfReport> partitions;

    double transferSeconds = 0.0;
    double transferJoules = 0.0;

    /** Fault/degradation accounting; all-zero when no fault model is
     *  active (the resilience layer is zero-cost when disabled). */
    ReliabilityReport reliability;

    /** Fraction of end-to-end runtime spent moving data. */
    double communicationFraction() const
    {
        return total.seconds > 0 ? transferSeconds / total.seconds : 0.0;
    }

    /** Fraction of end-to-end energy spent on DRAM/DMA + host. */
    double communicationEnergyFraction() const
    {
        return total.joules > 0 ? transferJoules / total.joules : 0.0;
    }
};

/** The cascaded-accelerator system. */
class SocRuntime
{
  public:
    SocRuntime();

    /** @throws UserError when @p config fails SocConfig::validate(). */
    SocRuntime(std::vector<std::unique_ptr<Backend>> backends,
               target::SocConfig config, FaultModel faults = {});

    /** Installs (or clears, with a default FaultModel) fault injection for
     *  subsequent execute() calls. */
    void setFaultModel(FaultModel faults) { faults_ = std::move(faults); }
    const FaultModel &faultModel() const { return faults_; }

    /**
     * Executes @p program under @p profile. Partitions whose accelerator
     * name is in @p accelerated run on their backend; the rest run on the
     * host CPU (with no DMA). An empty set means "accelerate everything".
     * @p host_eff optionally calibrates the host library efficiency per
     * partition accel-name (see WorkloadCost::cpuEff).
     *
     * With an enabled fault model, injected faults are handled per the
     * configured DegradationPolicy (retry with exponential DMA backoff,
     * transparent host fallback, or Abort => UserError) and
     * SocResult::reliability reports the damage; with faults disabled the
     * result is bit-identical to the fault-free path.
     */
    SocResult execute(const lower::CompiledProgram &program,
                      const WorkloadProfile &profile,
                      const std::set<std::string> &accelerated = {},
                      const std::map<std::string, double> &host_eff = {})
        const;

    /** Fault-free reference execution that emits no observability output
     *  (no spans, no metrics): the cost/deadline estimator used by the
     *  streaming scheduler. Bit-identical to a fault-free execute(). */
    SocResult estimate(const lower::CompiledProgram &program,
                       const WorkloadProfile &profile,
                       const std::set<std::string> &accelerated = {},
                       const std::map<std::string, double> &host_eff = {})
        const
    {
        return executeInternal(program, profile, accelerated, host_eff,
                               nullptr, /*primary=*/false);
    }

    const std::vector<std::unique_ptr<Backend>> &backends() const
    {
        return backends_;
    }

    const target::SocConfig &config() const { return config_; }

    // The per-partition pricing below is shared with soc::StreamScheduler:
    // the streaming path must produce *bit-identical* per-job PerfReports
    // to a sequential execute() when no faults fire, so both paths price
    // host runs, accelerator runs, and the end-of-job tail through the
    // same code in the same order.

    /** Host execution of one partition's kernels. A *deliberate* host
     *  placement runs the calibrated native library (host_eff); a
     *  fault-triggered degradation runs the compiler's portable host
     *  lowering instead, at SocConfig::hostFallbackEff of that
     *  efficiency. */
    PerfReport hostPartitionRun(
        const lower::Partition &partition, const WorkloadProfile &profile,
        const std::map<std::string, double> &host_eff, bool degraded) const;

    /** Accelerator execution of one partition plus the serialized DMA
     *  between DRAM and the accelerator's local memory. */
    struct AccelRun
    {
        PerfReport part;
        double transferSeconds = 0.0;
        double transferJoules = 0.0;
        int64_t movedBytes = 0; ///< DRAM<->local traffic the SoC moved
    };
    AccelRun accelPartitionRun(const lower::Partition &partition,
                               const Backend &backend,
                               const WorkloadProfile &profile) const;

    /** End-of-job tail accounting: per-invocation host glue and the host
     *  manager's energy while the job ran. */
    void finalizeTotals(SocResult &result, const WorkloadProfile &profile,
                        bool any_offload) const;

  private:
    /** @p primary is false for the internal fault-free reference run that
     *  execute() uses to price fault overhead — that run must not emit
     *  observability spans/metrics, or every faulty execution would show
     *  up twice on the timeline. */
    SocResult executeInternal(
        const lower::CompiledProgram &program,
        const WorkloadProfile &profile,
        const std::set<std::string> &accelerated,
        const std::map<std::string, double> &host_eff,
        const FaultModel *faults, bool primary) const;

    std::vector<std::unique_ptr<Backend>> backends_;
    target::SocConfig config_;
    target::CpuModel host_;
    FaultModel faults_;
};

} // namespace polymath::soc

#endif // POLYMATH_SOC_SOC_H_
