#include "soc/stream.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "core/error.h"
#include "core/rng.h"
#include "core/strings.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polymath::soc {

std::string
toString(ArrivalModel model)
{
    switch (model) {
      case ArrivalModel::Poisson: return "poisson";
      case ArrivalModel::ClosedLoop: return "closed";
    }
    return "arrival";
}

std::string
toString(DeadlinePolicy policy)
{
    switch (policy) {
      case DeadlinePolicy::Continue: return "continue";
      case DeadlinePolicy::Shed: return "shed";
      case DeadlinePolicy::Abort: return "abort";
    }
    return "policy";
}

std::string
toString(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Completed: return "completed";
      case JobOutcome::Shed: return "shed";
      case JobOutcome::Aborted: return "aborted";
      case JobOutcome::Rejected: return "rejected";
    }
    return "outcome";
}

void
StreamConfig::validate() const
{
    if (jobs <= 0)
        fatal(format("StreamConfig.jobs must be positive (got %d)", jobs));
    if (arrival == ArrivalModel::Poisson && !(arrivalRate > 0.0)) {
        fatal(format("StreamConfig.arrivalRate must be positive for "
                     "poisson arrivals (got %g)",
                     arrivalRate));
    }
    if (arrival == ArrivalModel::ClosedLoop && clients <= 0) {
        fatal(format("StreamConfig.clients must be positive for "
                     "closed-loop arrivals (got %d)",
                     clients));
    }
    if (thinkSeconds < 0.0) {
        fatal(format("StreamConfig.thinkSeconds must be non-negative "
                     "(got %g)",
                     thinkSeconds));
    }
    if (maxPending < 0) {
        fatal(format("StreamConfig.maxPending must be non-negative "
                     "(got %d; 0 = SocConfig default)",
                     maxPending));
    }
    if (deadlineSeconds < 0.0 || deadlineFactor < 0.0)
        fatal("StreamConfig deadlines must be non-negative");
    if (workers < 0)
        fatal("StreamConfig.workers must be non-negative (0 = all cores)");
    faults.validate();
}

std::string
StreamReport::str() const
{
    std::string out = format(
        "stream: %lld offered, %lld admitted (%lld rejected), "
        "%lld completed, %lld shed, %lld aborted",
        static_cast<long long>(offered), static_cast<long long>(admitted),
        static_cast<long long>(rejected),
        static_cast<long long>(completed), static_cast<long long>(shed),
        static_cast<long long>(aborted));
    out += "\n  makespan " + formatF(makespanSeconds, 6) + " s, " +
           formatF(throughputJobsPerSecond(), 3) + " jobs/s";
    out += "\n  latency p50 " + formatF(p50LatencySeconds * 1e3, 3) +
           " ms, p99 " + formatF(p99LatencySeconds * 1e3, 3) +
           " ms, p999 " + formatF(p999LatencySeconds * 1e3, 3) + " ms";
    out += format("\n  deadline misses %lld, migrations %lld",
                  static_cast<long long>(deadlineMisses),
                  static_cast<long long>(migrations));
    out += "\n  " + reliability.str();
    return out;
}

namespace {

/** One entry waiting in (or at the head of) a resource's FIFO queue. */
struct QueueEntry
{
    int job = 0;
    bool degraded = false; ///< run the host-fallback pricing
    bool migrated = false; ///< rescheduled away from its home backend
};

/** A backend (or the host CPU) as a serially-reusable resource. */
struct Resource
{
    std::string name;
    const Backend *backend = nullptr; ///< null = host CPU
    ir::OpSet supported;              ///< backend spec's op set
    double outageUntil = 0.0;
    bool busy = false;
    /** Total virtual seconds spent serving; busySeconds / makespan is
     *  the backend's occupancy, exported as a gauge after the run. */
    double busySeconds = 0.0;
    std::deque<QueueEntry> queue;
    int64_t vtrack = 0;
};

/** A service in progress: all costs are fixed at service start. */
struct Service
{
    QueueEntry entry;
    double start = 0.0;
    double seconds = 0.0;
    PerfReport part;
    double transferSeconds = 0.0;
    double transferJoules = 0.0;
    int64_t movedBytes = 0;
};

struct JobState
{
    int index = 0;
    int tmpl = 0;
    bool terminal = false;
    double arrival = 0.0;
    double deadline = 0.0; ///< absolute; 0 = none
    size_t next = 0;       ///< next partition to run
    bool anyOffload = false;
    bool faultsOn = false;
    FaultModel faults;
    StreamJobResult out;
};

struct Event
{
    double time = 0.0;
    int64_t seq = 0;
    enum Kind : uint8_t { Arrival, Ready, Done } kind = Arrival;
    int arg = 0; ///< job (Ready) or resource (Done)
};

struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.seq > b.seq;
    }
};

constexpr int kHostResource = 0;

/** The whole simulation state; run() drives it. */
struct Sim
{
    const SocRuntime &rt;
    const StreamConfig &cfg;
    const std::vector<StreamJob> &templates;
    const std::vector<SocResult> &estimates;

    int maxPending = 0;
    double dispatchSeconds = 0.0;

    std::vector<Resource> resources; ///< [0] = host, then backends
    std::vector<Service> inService;  ///< indexed like resources
    std::vector<JobState> states;    ///< indexed by arrival order
    std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
    int64_t nextSeq = 0;
    int offersScheduled = 0;
    int64_t pending = 0;
    int64_t dmaBytes = 0;
    StreamReport report;

    obs::TraceRecorder &recorder = obs::TraceRecorder::global();
    bool trace = false;
    int64_t adminTrack = 0;

    Sim(const SocRuntime &runtime, const StreamConfig &config,
        const std::vector<StreamJob> &tmpls,
        const std::vector<SocResult> &ests)
        : rt(runtime), cfg(config), templates(tmpls), estimates(ests)
    {
        const target::SocConfig &soc = rt.config();
        maxPending =
            cfg.maxPending > 0 ? cfg.maxPending : soc.streamMaxPending;
        dispatchSeconds = soc.streamDispatchUs * 1e-6;

        trace = recorder.enabled();
        if (trace) {
            adminTrack = recorder.newVirtualTrack();
            recorder.nameVirtualTrack(adminTrack, "stream: admission");
        }
        Resource host;
        host.name = lower::kHostAccel;
        resources.push_back(std::move(host));
        for (const auto &backend : rt.backends()) {
            Resource r;
            r.name = backend->name();
            r.backend = backend.get();
            r.supported = backend->spec().supportedOps;
            resources.push_back(std::move(r));
        }
        for (auto &r : resources) {
            if (trace) {
                r.vtrack = recorder.newVirtualTrack();
                recorder.nameVirtualTrack(r.vtrack, "stream: " + r.name);
            }
        }
        inService.resize(resources.size());
    }

    void schedule(double t, Event::Kind kind, int arg)
    {
        heap.push(Event{t, nextSeq++, kind, arg});
    }

    /** Closed loop: a terminal outcome lets the client resubmit. */
    void clientNext(double t)
    {
        if (cfg.arrival != ArrivalModel::ClosedLoop)
            return;
        if (offersScheduled >= cfg.jobs)
            return;
        ++offersScheduled;
        schedule(t + cfg.thinkSeconds, Event::Arrival, 0);
    }

    void missDeadline(JobState &job)
    {
        if (job.out.missedDeadline)
            return;
        job.out.missedDeadline = true;
        ++report.deadlineMisses;
    }

    void finishJob(JobState &job, double t, JobOutcome outcome,
                   std::string error = "")
    {
        if (job.terminal)
            panic("StreamScheduler: job finished twice");
        job.terminal = true;
        job.out.outcome = outcome;
        job.out.finishSeconds = t;
        job.out.latencySeconds = t - job.arrival;
        job.out.error = std::move(error);
        switch (outcome) {
          case JobOutcome::Completed: ++report.completed; break;
          case JobOutcome::Shed: ++report.shed; break;
          case JobOutcome::Aborted: ++report.aborted; break;
          case JobOutcome::Rejected:
            panic("StreamScheduler: rejected jobs are terminal at "
                  "admission");
        }
        --pending;
        report.makespanSeconds = std::max(report.makespanSeconds, t);
        if (trace) {
            recorder.virtualInstant(
                format("job%d %s", job.index,
                       toString(outcome).c_str()),
                "stream", adminTrack, t,
                {obs::TraceArg::num("job", job.index),
                 obs::TraceArg::str("template",
                                    templates[static_cast<size_t>(
                                                  job.tmpl)]
                                        .name)});
        }
        clientNext(t);
    }

    /** Picks the resource for the job's next partition. Prefers the home
     *  backend; during an outage the partition migrates to the first
     *  compatible accelerator (registration order) or degrades to the
     *  host. */
    std::pair<int, QueueEntry> chooseResource(JobState &job, double t)
    {
        const StreamJob &tmpl = templates[static_cast<size_t>(job.tmpl)];
        const auto &partition = tmpl.program->partitions[job.next];
        const bool offload = tmpl.accelerated.empty() ||
                             tmpl.accelerated.count(partition.accel) > 0;
        QueueEntry entry;
        entry.job = job.index;
        int home = -1;
        for (size_t ri = 1; ri < resources.size(); ++ri) {
            if (offload && resources[ri].name == partition.accel)
                home = static_cast<int>(ri);
        }
        if (home < 0)
            return {kHostResource, entry};
        if (resources[static_cast<size_t>(home)].outageUntil <= t)
            return {home, entry};

        // Online rescheduling: the home backend is down. Any other
        // healthy backend whose spec covers the partition's source ops
        // can absorb it; otherwise the host runs the portable lowering.
        entry.migrated = true;
        ++job.out.migrations;
        ++report.migrations;
        for (size_t ri = 1; ri < resources.size(); ++ri) {
            Resource &r = resources[ri];
            if (static_cast<int>(ri) == home || r.outageUntil > t)
                continue;
            if (!r.supported.containsAll(partition.ops))
                continue;
            if (trace) {
                recorder.virtualInstant(
                    format("migrate job%d/p%zu -> %s", job.index,
                           job.next, r.name.c_str()),
                    "fault", r.vtrack, t,
                    {obs::TraceArg::num("job", job.index)});
            }
            return {static_cast<int>(ri), entry};
        }
        entry.degraded = true;
        if (job.faultsOn)
            ++job.out.result.reliability.hostFallbacks;
        return {kHostResource, entry};
    }

    /** First placement of the job's next partition: per-partition
     *  bookkeeping mirroring SocRuntime::executeInternal, then the
     *  resource choice. */
    void placePartition(JobState &job, double t)
    {
        const StreamJob &tmpl = templates[static_cast<size_t>(job.tmpl)];
        const auto &partition = tmpl.program->partitions[job.next];
        const bool offload = tmpl.accelerated.empty() ||
                             tmpl.accelerated.count(partition.accel) > 0;
        job.anyOffload = job.anyOffload || offload;
        const Backend *home =
            offload ? target::findBackend(rt.backends(), partition.accel)
                    : nullptr;
        if (home && job.faultsOn)
            ++job.out.result.reliability.offloadAttempts;

        if (job.deadline > 0.0 && t > job.deadline &&
            cfg.deadlinePolicy != DeadlinePolicy::Continue) {
            missDeadline(job);
            if (cfg.deadlinePolicy == DeadlinePolicy::Shed) {
                finishJob(job, t, JobOutcome::Shed);
            } else {
                finishJob(job, t, JobOutcome::Aborted,
                          format("job %d exceeded its deadline before "
                                 "partition %zu",
                                 job.index, job.next));
            }
            return;
        }
        auto [ri, entry] = chooseResource(job, t);
        resources[static_cast<size_t>(ri)].queue.push_back(entry);
        kick(ri, t);
    }

    /**
     * Prices one service, mirroring executeInternal's per-partition fault
     * handling (DMA retries with capped exponential backoff, watchdog
     * re-executions, host fallback on exhausted budgets). The
     * AcceleratorUnavailable class is handled by the caller as an outage.
     * Returns false when a DegradationPolicy::Abort fault fired — the
     * job aborts, the stream continues.
     */
    bool makeService(JobState &job, const QueueEntry &entry, Resource &r,
                     double t, Service &service, std::string &error)
    {
        const StreamJob &tmpl = templates[static_cast<size_t>(job.tmpl)];
        const auto &partition = tmpl.program->partitions[job.next];
        const int p = static_cast<int>(job.next);
        service.entry = entry;
        service.start = t;

        if (!r.backend || entry.degraded) {
            service.part = rt.hostPartitionRun(partition, tmpl.profile,
                                               tmpl.hostEff,
                                               entry.degraded);
            service.seconds = service.part.seconds;
            return true;
        }
        if (!job.faultsOn) {
            SocRuntime::AccelRun run =
                rt.accelPartitionRun(partition, *r.backend, tmpl.profile);
            service.part = run.part;
            service.transferSeconds = run.transferSeconds;
            service.transferJoules = run.transferJoules;
            service.movedBytes = run.movedBytes;
            service.seconds = service.part.seconds;
            return true;
        }

        ReliabilityReport &rel = job.out.result.reliability;
        const FaultConfig &fc = job.faults.config();
        bool fall_back = false;
        double overhead_s = 0.0;
        double overhead_j = 0.0;

        // Transient DMA failures: retry with (capped) exponential
        // backoff until the budget runs out, then degrade. The backoff
        // is virtual time — it lengthens the service and counts against
        // the job's deadline.
        {
            int attempt = 0;
            int retries = 0;
            bool faulted = false;
            while (job.faults.dmaFails(p, attempt)) {
                faulted = true;
                ++rel.faultsInjected;
                ++rel.dmaFaults;
                if (fc.dmaPolicy == DegradationPolicy::Abort) {
                    error = format("DMA transfer failed for job %d "
                                   "partition %d (%s)",
                                   job.index, p, partition.accel.c_str());
                    return false;
                }
                if (fc.dmaPolicy == DegradationPolicy::HostFallback ||
                    attempt >= fc.maxDmaRetries) {
                    fall_back = true;
                    break;
                }
                overhead_s += job.faults.backoffSeconds(attempt);
                ++rel.retriesSpent;
                ++retries;
                ++attempt;
            }
            if (faulted) {
                rel.addEvent(FaultEvent{FaultClass::DmaFailure, p,
                                        partition.accel, retries,
                                        fall_back});
            }
        }

        // Watchdog overruns: each re-execution repeats the whole
        // partition (compute + DMA), so wasted runs stay in the bill
        // even if the partition ultimately degrades.
        if (!fall_back) {
            const SocRuntime::AccelRun run =
                rt.accelPartitionRun(partition, *r.backend, tmpl.profile);
            int attempt = 0;
            int reruns = 0;
            bool faulted = false;
            while (job.faults.watchdogFires(p, attempt)) {
                faulted = true;
                ++rel.faultsInjected;
                ++rel.watchdogFaults;
                if (fc.watchdogPolicy == DegradationPolicy::Abort) {
                    error = format("watchdog timeout on job %d partition "
                                   "%d (%s)",
                                   job.index, p, partition.accel.c_str());
                    return false;
                }
                if (fc.watchdogPolicy == DegradationPolicy::HostFallback ||
                    attempt >= fc.maxReexecutions) {
                    fall_back = true;
                    break;
                }
                overhead_s += run.part.seconds;
                overhead_j += run.part.joules;
                ++rel.retriesSpent;
                ++reruns;
                ++attempt;
            }
            if (faulted) {
                rel.addEvent(FaultEvent{FaultClass::WatchdogTimeout, p,
                                        partition.accel, reruns,
                                        fall_back});
            }
            if (!fall_back) {
                service.part = run.part;
                service.transferSeconds = run.transferSeconds;
                service.transferJoules = run.transferJoules;
                service.movedBytes = run.movedBytes;
            } else {
                // The overrun that exhausted the budget is wasted too.
                overhead_s += run.part.seconds;
                overhead_j += run.part.joules;
            }
        }

        if (fall_back) {
            ++rel.hostFallbacks;
            service.part = rt.hostPartitionRun(partition, tmpl.profile,
                                               tmpl.hostEff,
                                               /*degraded=*/true);
        }
        service.part.seconds += overhead_s;
        service.part.joules += overhead_j;
        service.part.overheadSeconds += overhead_s;
        service.seconds = service.part.seconds;
        return true;
    }

    /** Starts the next service on @p ri if it is idle. Handles the
     *  AcceleratorUnavailable draw at service start: the backend goes
     *  into a bounded outage and everything on it — the tripping
     *  partition and the queue behind it — reschedules elsewhere. */
    void kick(int ri, double t)
    {
        Resource &r = resources[static_cast<size_t>(ri)];
        while (!r.busy && !r.queue.empty()) {
            QueueEntry entry = r.queue.front();
            JobState &job = states[static_cast<size_t>(entry.job)];
            const StreamJob &tmpl =
                templates[static_cast<size_t>(job.tmpl)];
            const auto &partition = tmpl.program->partitions[job.next];
            const int p = static_cast<int>(job.next);

            // A queued job can cross its deadline before being served.
            if (job.deadline > 0.0 && t > job.deadline &&
                cfg.deadlinePolicy != DeadlinePolicy::Continue) {
                r.queue.pop_front();
                missDeadline(job);
                if (cfg.deadlinePolicy == DeadlinePolicy::Shed) {
                    finishJob(job, t, JobOutcome::Shed);
                } else {
                    finishJob(job, t, JobOutcome::Aborted,
                              format("job %d exceeded its deadline in "
                                     "the %s queue",
                                     job.index, r.name.c_str()));
                }
                continue;
            }

            // Accelerator loss is drawn once, at service start on the
            // partition's home backend (migration targets and the host
            // do not re-fail for the same partition).
            if (r.backend && !entry.migrated && !entry.degraded &&
                job.faultsOn && job.faults.acceleratorUnavailable(p)) {
                ReliabilityReport &rel = job.out.result.reliability;
                ++rel.faultsInjected;
                ++rel.accelFaults;
                r.queue.pop_front();
                if (job.faults.config().accelPolicy ==
                    DegradationPolicy::Abort) {
                    rel.addEvent(
                        FaultEvent{FaultClass::AcceleratorUnavailable, p,
                                   partition.accel, 0, false});
                    finishJob(job, t, JobOutcome::Aborted,
                              format("accelerator '%s' unavailable for "
                                     "job %d partition %d",
                                     partition.accel.c_str(), job.index,
                                     p));
                    continue;
                }
                r.outageUntil = t + rt.config().streamOutageSeconds;
                if (trace) {
                    recorder.virtualSpan(
                        "outage " + r.name, "fault", r.vtrack, t,
                        rt.config().streamOutageSeconds,
                        {obs::TraceArg::num("job", job.index),
                         obs::TraceArg::num("partition", p)});
                }
                // Reschedule the tripping partition, then drain the
                // queue behind it onto healthy resources.
                auto [nri, nentry] = chooseResource(job, t);
                rel.addEvent(FaultEvent{
                    FaultClass::AcceleratorUnavailable, p,
                    partition.accel, 0, nri == kHostResource});
                std::deque<QueueEntry> displaced;
                displaced.swap(r.queue);
                resources[static_cast<size_t>(nri)].queue.push_back(
                    nentry);
                kick(nri, t);
                for (const QueueEntry &moved : displaced) {
                    JobState &mjob =
                        states[static_cast<size_t>(moved.job)];
                    auto [mri, mentry] = chooseResource(mjob, t);
                    resources[static_cast<size_t>(mri)].queue.push_back(
                        mentry);
                    kick(mri, t);
                }
                continue;
            }

            Service service;
            std::string error;
            if (!makeService(job, entry, r, t, service, error)) {
                r.queue.pop_front();
                finishJob(job, t, JobOutcome::Aborted, std::move(error));
                continue;
            }
            r.queue.pop_front();
            r.busy = true;
            inService[static_cast<size_t>(ri)] = std::move(service);
            schedule(t + inService[static_cast<size_t>(ri)].seconds,
                     Event::Done, ri);
        }
    }

    void onArrival(double t)
    {
        const int index = static_cast<int>(states.size());
        ++report.offered;
        states.push_back(JobState{});
        JobState &job = states.back();
        job.index = index;
        job.tmpl = index % static_cast<int>(templates.size());
        job.arrival = t;
        job.out.jobIndex = index;
        job.out.templateIndex = job.tmpl;
        job.out.arrivalSeconds = t;

        if (pending >= maxPending) {
            // Load shedding at admission: accounted, never silent.
            ++report.rejected;
            job.terminal = true;
            job.out.outcome = JobOutcome::Rejected;
            job.out.finishSeconds = t;
            report.makespanSeconds = std::max(report.makespanSeconds, t);
            if (trace) {
                recorder.virtualInstant(format("job%d rejected", index),
                                        "stream", adminTrack, t,
                                        {obs::TraceArg::num("job", index)});
            }
            clientNext(t);
            return;
        }

        ++report.admitted;
        ++pending;
        job.out.result.total.machine = "PolyMath SoC";
        if (cfg.faults.anyFaults()) {
            FaultConfig fc = cfg.faults;
            fc.seed = cfg.faults.seed ^
                      ((static_cast<uint64_t>(index) + 1) *
                       0x9e3779b97f4a7c15ull);
            job.faults = FaultModel(fc);
            job.faultsOn = true;
        }
        if (cfg.deadlineSeconds > 0.0) {
            job.deadline = t + cfg.deadlineSeconds;
        } else if (cfg.deadlineFactor > 0.0) {
            job.deadline =
                t + cfg.deadlineFactor *
                        estimates[static_cast<size_t>(job.tmpl)]
                            .total.seconds;
        }
        job.out.deadlineSeconds = job.deadline;
        if (trace) {
            recorder.virtualInstant(
                format("job%d arrives", index), "stream", adminTrack, t,
                {obs::TraceArg::num("job", index),
                 obs::TraceArg::str(
                     "template",
                     templates[static_cast<size_t>(job.tmpl)].name)});
        }
        // Admission + dispatch is queueing delay: it pushes the first
        // partition's start (and the deadline clock keeps running) but
        // never enters the job's PerfReport.
        schedule(t + dispatchSeconds, Event::Ready, index);
    }

    void onReady(int j, double t)
    {
        JobState &job = states[static_cast<size_t>(j)];
        const StreamJob &tmpl = templates[static_cast<size_t>(job.tmpl)];
        if (tmpl.program->partitions.empty()) {
            rt.finalizeTotals(job.out.result, tmpl.profile,
                              /*any_offload=*/false);
            finishJob(job, t, JobOutcome::Completed);
            return;
        }
        placePartition(job, t);
    }

    void onDone(int ri, double t)
    {
        Resource &r = resources[static_cast<size_t>(ri)];
        Service service = std::move(inService[static_cast<size_t>(ri)]);
        r.busy = false;
        r.busySeconds += service.seconds;
        JobState &job = states[static_cast<size_t>(service.entry.job)];
        const StreamJob &tmpl = templates[static_cast<size_t>(job.tmpl)];

        job.out.result.partitions.push_back(service.part);
        job.out.result.total += service.part;
        job.out.result.transferSeconds += service.transferSeconds;
        job.out.result.transferJoules += service.transferJoules;
        dmaBytes += service.movedBytes;
        if (trace) {
            recorder.virtualSpan(
                format("job%d/p%zu %s", job.index, job.next,
                       r.name.c_str()),
                "stream", r.vtrack, service.start, service.seconds,
                {obs::TraceArg::num("job", job.index),
                 obs::TraceArg::num("partition",
                                    static_cast<int64_t>(job.next)),
                 obs::TraceArg::num("migrated",
                                    service.entry.migrated ? 1 : 0),
                 obs::TraceArg::num("degraded",
                                    service.entry.degraded ? 1 : 0)});
        }

        ++job.next;
        if (job.next <
            tmpl.program->partitions.size()) {
            placePartition(job, t);
        } else {
            rt.finalizeTotals(job.out.result, tmpl.profile,
                              job.anyOffload);
            if (job.faultsOn) {
                ReliabilityReport &rel = job.out.result.reliability;
                rel.actualSeconds = job.out.result.total.seconds;
                rel.actualJoules = job.out.result.total.joules;
                const SocResult &est =
                    estimates[static_cast<size_t>(job.tmpl)];
                rel.faultFreeSeconds = est.total.seconds;
                rel.faultFreeJoules = est.total.joules;
            }
            // The host glue runs after the last partition, so the job
            // leaves the system glue-time later than the partition did.
            const double glue_s =
                tmpl.profile.hostGlueSeconds *
                static_cast<double>(tmpl.profile.invocations);
            const double done = t + glue_s;
            if (job.deadline > 0.0 && done > job.deadline) {
                missDeadline(job);
                if (cfg.deadlinePolicy == DeadlinePolicy::Shed) {
                    finishJob(job, done, JobOutcome::Shed);
                } else if (cfg.deadlinePolicy == DeadlinePolicy::Abort) {
                    finishJob(job, done, JobOutcome::Aborted,
                              format("job %d finished past its deadline",
                                     job.index));
                } else {
                    finishJob(job, done, JobOutcome::Completed);
                }
            } else {
                finishJob(job, done, JobOutcome::Completed);
            }
        }
        kick(ri, t);
    }

    StreamReport run()
    {
        if (cfg.arrival == ArrivalModel::Poisson) {
            Rng rng(cfg.seed);
            double t = 0.0;
            for (int i = 0; i < cfg.jobs; ++i) {
                t += -std::log(1.0 - rng.uniform()) / cfg.arrivalRate;
                schedule(t, Event::Arrival, 0);
            }
            offersScheduled = cfg.jobs;
        } else {
            const int initial = std::min(cfg.clients, cfg.jobs);
            for (int i = 0; i < initial; ++i)
                schedule(0.0, Event::Arrival, 0);
            offersScheduled = initial;
        }

        while (!heap.empty()) {
            const Event ev = heap.top();
            heap.pop();
            switch (ev.kind) {
              case Event::Arrival: onArrival(ev.time); break;
              case Event::Ready: onReady(ev.arg, ev.time); break;
              case Event::Done: onDone(ev.arg, ev.time); break;
            }
        }
        if (pending != 0)
            panic("StreamScheduler: stream drained with jobs in flight");

        // Bounded-error percentiles from a log-linear histogram of
        // whole microseconds: O(1) memory regardless of stream length,
        // no sort barrier, deterministic at any -jN (observe order
        // cannot change a bucket count), < 0.4% relative error.
        obs::LatencyHistogram latency_hist;
        for (JobState &job : states) {
            if (!job.terminal)
                panic("StreamScheduler: job never reached a terminal "
                      "state");
            if (job.out.outcome == JobOutcome::Completed)
                latency_hist.observe(static_cast<int64_t>(
                    std::llround(job.out.latencySeconds * 1e6)));
            report.reliability += job.out.result.reliability;
            report.jobs.push_back(std::move(job.out));
        }
        report.p50LatencySeconds = latency_hist.quantile(0.50) / 1e6;
        report.p99LatencySeconds = latency_hist.quantile(0.99) / 1e6;
        report.p999LatencySeconds = latency_hist.quantile(0.999) / 1e6;

        // Conservation: every offered job is exactly one of completed,
        // shed, aborted, or rejected — nothing is silently dropped.
        if (report.completed + report.shed + report.aborted !=
            report.admitted) {
            panic("StreamScheduler: completed + shed + aborted != "
                  "admitted");
        }
        if (report.admitted + report.rejected != report.offered)
            panic("StreamScheduler: admitted + rejected != offered");

        auto &metrics = obs::MetricsRegistry::global();
        metrics.counter("soc.stream.runs").add(1);
        metrics.counter("soc.stream.offered").add(report.offered);
        metrics.counter("soc.stream.admitted").add(report.admitted);
        metrics.counter("soc.stream.rejected").add(report.rejected);
        metrics.counter("soc.stream.completed").add(report.completed);
        metrics.counter("soc.stream.shed").add(report.shed);
        metrics.counter("soc.stream.aborted").add(report.aborted);
        metrics.counter("soc.stream.migrations").add(report.migrations);
        metrics.counter("soc.stream.deadline_misses")
            .add(report.deadlineMisses);
        metrics.counter("soc.stream.dma.bytes").add(dmaBytes);
        // Per-backend occupancy over the run's virtual-time makespan:
        // last-run gauges the service's metrics verb exports alongside
        // its sliding-window rates.
        for (const Resource &r : resources) {
            const double occupancy =
                report.makespanSeconds > 0.0
                    ? r.busySeconds / report.makespanSeconds
                    : 0.0;
            metrics.gauge("soc.stream.occupancy." + r.name)
                .set(occupancy);
        }
        return std::move(report);
    }
};

} // namespace

StreamScheduler::StreamScheduler(const SocRuntime &runtime,
                                 StreamConfig config)
    : runtime_(&runtime), config_(std::move(config))
{
    config_.validate();
}

StreamReport
StreamScheduler::run(const std::vector<StreamJob> &templates) const
{
    if (templates.empty())
        fatal("StreamScheduler::run: no job templates");
    for (const StreamJob &tmpl : templates) {
        if (!tmpl.program)
            fatal("StreamScheduler::run: template '" + tmpl.name +
                  "' has no compiled program");
    }
    obs::Span span("soc:stream", "soc");
    if (span.active()) {
        span.arg("jobs", static_cast<int64_t>(config_.jobs));
        span.arg("arrival", toString(config_.arrival));
        span.arg("templates", static_cast<int64_t>(templates.size()));
    }

    // Fault-free per-template estimates feed deadlines and per-job
    // overhead attribution. parallelMap is index-ordered, so the report
    // is byte-identical at any worker count; the event loop itself is
    // strictly serial.
    const std::vector<SocResult> estimates = core::parallelMap(
        config_.workers, static_cast<int64_t>(templates.size()),
        [&](int64_t i) {
            const StreamJob &tmpl = templates[static_cast<size_t>(i)];
            return runtime_->estimate(*tmpl.program, tmpl.profile,
                                      tmpl.accelerated, tmpl.hostEff);
        });

    Sim sim(*runtime_, config_, templates, estimates);
    return sim.run();
}

} // namespace polymath::soc
