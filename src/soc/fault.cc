#include "soc/fault.h"

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"
#include "core/strings.h"

namespace polymath::soc {

std::string
toString(FaultClass fault)
{
    switch (fault) {
      case FaultClass::AcceleratorUnavailable: return "accel-unavailable";
      case FaultClass::DmaFailure: return "dma-failure";
      case FaultClass::WatchdogTimeout: return "watchdog-timeout";
    }
    return "fault";
}

std::string
toString(DegradationPolicy policy)
{
    switch (policy) {
      case DegradationPolicy::RetryThenHostFallback:
        return "retry-then-host-fallback";
      case DegradationPolicy::HostFallback: return "host-fallback";
      case DegradationPolicy::Abort: return "abort";
    }
    return "policy";
}

DegradationPolicy
FaultConfig::policyFor(FaultClass fault) const
{
    switch (fault) {
      case FaultClass::AcceleratorUnavailable: return accelPolicy;
      case FaultClass::DmaFailure: return dmaPolicy;
      case FaultClass::WatchdogTimeout: return watchdogPolicy;
    }
    return accelPolicy;
}

void
FaultConfig::validate() const
{
    auto rate = [](const char *field, double value) {
        if (value < 0.0 || value > 1.0) {
            fatal(format("FaultConfig.%s must be in [0, 1] (got %g)", field,
                         value));
        }
    };
    rate("accelUnavailableRate", accelUnavailableRate);
    rate("dmaFailureRate", dmaFailureRate);
    rate("watchdogRate", watchdogRate);
    if (maxDmaRetries < 0)
        fatal("FaultConfig.maxDmaRetries must be non-negative");
    if (maxReexecutions < 0)
        fatal("FaultConfig.maxReexecutions must be non-negative");
    if (dmaRetryBackoffUs < 0.0)
        fatal("FaultConfig.dmaRetryBackoffUs must be non-negative");
    if (maxBackoffUs < 0.0)
        fatal("FaultConfig.maxBackoffUs must be non-negative");
}

std::string
FaultEvent::str() const
{
    return format("partition %d (%s): %s, %d retries%s", partition,
                  accel.c_str(), toString(fault).c_str(), retries,
                  fellBack ? ", fell back to host" : "");
}

double
ReliabilityReport::availability() const
{
    if (offloadAttempts == 0)
        return 1.0;
    return 1.0 - static_cast<double>(hostFallbacks) /
                     static_cast<double>(offloadAttempts);
}

double
ReliabilityReport::slowdown() const
{
    return faultFreeSeconds > 0.0 ? actualSeconds / faultFreeSeconds : 1.0;
}

double
ReliabilityReport::energyOverhead() const
{
    return faultFreeJoules > 0.0 ? actualJoules / faultFreeJoules : 1.0;
}

void
ReliabilityReport::addEvent(FaultEvent event)
{
    if (events.size() < kMaxEvents)
        events.push_back(std::move(event));
    else
        ++droppedEvents;
}

ReliabilityReport &
ReliabilityReport::operator+=(const ReliabilityReport &other)
{
    faultsInjected += other.faultsInjected;
    accelFaults += other.accelFaults;
    dmaFaults += other.dmaFaults;
    watchdogFaults += other.watchdogFaults;
    retriesSpent += other.retriesSpent;
    hostFallbacks += other.hostFallbacks;
    offloadAttempts += other.offloadAttempts;
    actualSeconds += other.actualSeconds;
    faultFreeSeconds += other.faultFreeSeconds;
    actualJoules += other.actualJoules;
    faultFreeJoules += other.faultFreeJoules;
    for (const auto &event : other.events)
        addEvent(event);
    droppedEvents += other.droppedEvents;
    return *this;
}

std::string
ReliabilityReport::str() const
{
    std::string out =
        format("faults: %lld (accel %lld, dma %lld, watchdog %lld), "
               "retries %lld, fallbacks %lld/%lld, availability ",
               static_cast<long long>(faultsInjected),
               static_cast<long long>(accelFaults),
               static_cast<long long>(dmaFaults),
               static_cast<long long>(watchdogFaults),
               static_cast<long long>(retriesSpent),
               static_cast<long long>(hostFallbacks),
               static_cast<long long>(offloadAttempts)) +
        formatF(availability(), 3) + ", slowdown " +
        formatF(slowdown(), 3) + "x, energy " +
        formatF(energyOverhead(), 3) + "x";
    for (const auto &event : events)
        out += "\n  " + event.str();
    if (droppedEvents > 0) {
        out += format("\n  (+%lld more events dropped; log keeps the "
                      "first %zu)",
                      static_cast<long long>(droppedEvents), kMaxEvents);
    }
    return out;
}

FaultModel::FaultModel(FaultConfig config) : config_(config)
{
    config_.validate();
}

double
FaultModel::draw(int partition, FaultClass fault, int attempt) const
{
    // Stateless draw: hash the coordinates into a one-shot SplitMix64
    // stream. Thresholding the same draw means fault sets are monotone in
    // the rate — raising a rate only ever adds faults for a fixed seed.
    const uint64_t key = (static_cast<uint64_t>(partition) << 24) ^
                         (static_cast<uint64_t>(fault) << 16) ^
                         static_cast<uint64_t>(attempt + 1);
    Rng rng(config_.seed ^ (key * 0x9e3779b97f4a7c15ull));
    rng.next(); // decorrelate nearby keys
    return rng.uniform();
}

bool
FaultModel::acceleratorUnavailable(int partition) const
{
    return config_.accelUnavailableRate > 0.0 &&
           draw(partition, FaultClass::AcceleratorUnavailable, 0) <
               config_.accelUnavailableRate;
}

bool
FaultModel::dmaFails(int partition, int attempt) const
{
    return config_.dmaFailureRate > 0.0 &&
           draw(partition, FaultClass::DmaFailure, attempt) <
               config_.dmaFailureRate;
}

bool
FaultModel::watchdogFires(int partition, int attempt) const
{
    return config_.watchdogRate > 0.0 &&
           draw(partition, FaultClass::WatchdogTimeout, attempt) <
               config_.watchdogRate;
}

double
FaultModel::backoffSeconds(int attempt) const
{
    const double exponential =
        config_.dmaRetryBackoffUs *
        static_cast<double>(1ll << (attempt < 62 ? attempt : 62));
    return std::min(exponential, config_.maxBackoffUs) * 1e-6;
}

} // namespace polymath::soc
