/**
 * @file
 * SoC fault injection and graceful degradation (docs/RESILIENCE.md).
 *
 * Real heterogeneous platforms lose accelerators, drop DMA transfers, and
 * hit partition watchdogs; the paper's multi-acceleration story assumes
 * none of that ever happens. The FaultModel injects three fault classes
 * into SocRuntime::execute deterministically (stateless seeded draws, so a
 * given seed always produces the same fault pattern), and a per-class
 * DegradationPolicy decides whether the host manager retries, transparently
 * reruns the partition on the host CPU, or fail-stops. The resulting
 * ReliabilityReport quantifies availability and the latency/energy overhead
 * versus the fault-free execution.
 */
#ifndef POLYMATH_SOC_FAULT_H_
#define POLYMATH_SOC_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace polymath::soc {

/** Fault classes the SoC fault model can inject. */
enum class FaultClass : uint8_t {
    /** Permanent for the run: the partition's accelerator is down. */
    AcceleratorUnavailable,
    /** Transient: one DMA transfer attempt fails. */
    DmaFailure,
    /** The partition overran its watchdog and must be re-executed. */
    WatchdogTimeout,
};

std::string toString(FaultClass fault);

/** What the host manager does when a fault class fires. */
enum class DegradationPolicy : uint8_t {
    /** Retry up to the configured budget, then rerun on the host CPU. */
    RetryThenHostFallback,
    /** Immediately rerun the partition on the host CPU. */
    HostFallback,
    /** Fail-stop: propagate a UserError. */
    Abort,
};

std::string toString(DegradationPolicy policy);

/** Fault distribution and per-class responses. */
struct FaultConfig
{
    uint64_t seed = 0x5eed;

    /** Per-partition probability its accelerator is down for the run. */
    double accelUnavailableRate = 0.0;
    /** Per-attempt probability a partition's DMA bundle fails. */
    double dmaFailureRate = 0.0;
    /** Per-attempt probability a partition execution trips the watchdog. */
    double watchdogRate = 0.0;

    /** DMA retry budget per partition (beyond the first attempt). */
    int maxDmaRetries = 3;
    /** Latency of the first DMA retry; doubles with each further retry. */
    double dmaRetryBackoffUs = 50.0;
    /** Ceiling on one retry's backoff latency: the exponential series
     *  clamps here instead of growing without bound (large retry budgets
     *  used to overflow 2^attempt into absurd virtual latencies). */
    double maxBackoffUs = 10000.0;
    /** Watchdog re-execution budget before degrading. */
    int maxReexecutions = 2;

    DegradationPolicy accelPolicy = DegradationPolicy::HostFallback;
    DegradationPolicy dmaPolicy = DegradationPolicy::RetryThenHostFallback;
    DegradationPolicy watchdogPolicy =
        DegradationPolicy::RetryThenHostFallback;

    DegradationPolicy policyFor(FaultClass fault) const;

    bool anyFaults() const
    {
        return accelUnavailableRate > 0.0 || dmaFailureRate > 0.0 ||
               watchdogRate > 0.0;
    }

    /** @throws UserError on rates outside [0, 1] or negative budgets. */
    void validate() const;
};

/** One injected fault and how the runtime responded. */
struct FaultEvent
{
    FaultClass fault = FaultClass::DmaFailure;
    int partition = 0;
    std::string accel;
    int retries = 0;       ///< retries / re-executions spent on this event
    bool fellBack = false; ///< the partition ended up on the host CPU

    std::string str() const;
};

/** Reliability accounting attached to SocResult. */
struct ReliabilityReport
{
    /** Event-log bound: a long stream would otherwise accumulate events
     *  without limit. addEvent() keeps the first kMaxEvents and counts
     *  the rest in droppedEvents so str() stays honest. */
    static constexpr size_t kMaxEvents = 256;

    int64_t faultsInjected = 0;
    int64_t accelFaults = 0;
    int64_t dmaFaults = 0;
    int64_t watchdogFaults = 0;

    /** DMA retries plus watchdog re-executions actually spent. */
    int64_t retriesSpent = 0;
    /** Partitions that degraded from their accelerator to the host. */
    int64_t hostFallbacks = 0;
    /** Partitions that wanted (and had) an accelerator. */
    int64_t offloadAttempts = 0;

    double actualSeconds = 0.0;    ///< faulty end-to-end runtime
    double faultFreeSeconds = 0.0; ///< same execution with no faults
    double actualJoules = 0.0;
    double faultFreeJoules = 0.0;

    std::vector<FaultEvent> events;

    /** Events addEvent() refused to append once kMaxEvents was hit. */
    int64_t droppedEvents = 0;

    /** Appends @p event, honoring the kMaxEvents bound. */
    void addEvent(FaultEvent event);

    /** Accumulates another report (stream-level rollups): counters and
     *  the actual/fault-free totals sum; events merge under the same
     *  kMaxEvents bound. */
    ReliabilityReport &operator+=(const ReliabilityReport &other);

    /** Fraction of offload attempts that completed on their accelerator. */
    double availability() const;

    /** End-to-end slowdown versus the fault-free execution. */
    double slowdown() const;

    /** Energy overhead versus the fault-free execution (ratio). */
    double energyOverhead() const;

    std::string str() const;
};

/**
 * Deterministic, seeded fault source. Every draw is a stateless hash of
 * (seed, partition, fault class, attempt), so the fault pattern does not
 * depend on query order and the same seed reproduces the same
 * ReliabilityReport bit-for-bit across runs.
 */
class FaultModel
{
  public:
    FaultModel() = default;

    /** @throws UserError when @p config fails validate(). */
    explicit FaultModel(FaultConfig config);

    const FaultConfig &config() const { return config_; }
    bool enabled() const { return config_.anyFaults(); }

    bool acceleratorUnavailable(int partition) const;
    bool dmaFails(int partition, int attempt) const;
    bool watchdogFires(int partition, int attempt) const;

    /** Backoff latency charged for the @p attempt-th DMA retry
     *  (exponential: dmaRetryBackoffUs * 2^attempt). */
    double backoffSeconds(int attempt) const;

  private:
    double draw(int partition, FaultClass fault, int attempt) const;

    FaultConfig config_;
};

} // namespace polymath::soc

#endif // POLYMATH_SOC_FAULT_H_
