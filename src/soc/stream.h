/**
 * @file
 * Streaming SoC orchestrator (docs/RESILIENCE.md, "Online rescheduling
 * & load shedding").
 *
 * SocRuntime::execute models one job end-to-end; real deployments run the
 * SoC as a service, with jobs arriving continuously and the host manager
 * time-sharing the six accelerators between them. StreamScheduler is an
 * event-driven virtual-time simulator of that regime: compiled jobs arrive
 * under an open-loop (Poisson) or closed-loop arrival model, an admission
 * controller bounds the number of jobs in the system (arrivals beyond the
 * bound are load-shed with full accounting), and each backend serves its
 * partition queue FIFO.
 *
 * The PR-1 fault model becomes *online rescheduling* here: an
 * AcceleratorUnavailable draw takes the backend down for a bounded window
 * of virtual time and the affected partitions — the one that tripped the
 * fault and everything queued behind it — migrate mid-stream to a
 * compatible accelerator (AcceleratorSpec::supportsAll over the
 * partition's source ops) or degrade to the host CPU. DMA failures and
 * watchdog timeouts keep the sequential retry/backoff budgets, with the
 * backoff charged in virtual time against the job's deadline.
 *
 * Everything is deterministic: arrivals come from one seeded Rng, fault
 * draws are stateless per-job salted hashes, and the event loop is strict
 * serial with (time, sequence) ordering — the same seed and config
 * reproduce the same StreamReport byte-for-byte at any worker count. With
 * all fault rates zero, each job's PerfReport is bit-identical to a
 * sequential SocRuntime::execute: queueing and dispatch delay are charged
 * to the job's *stream latency* only, never to its PerfReport.
 */
#ifndef POLYMATH_SOC_STREAM_H_
#define POLYMATH_SOC_STREAM_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "soc/soc.h"

namespace polymath::soc {

/** How jobs arrive at the SoC. */
enum class ArrivalModel : uint8_t {
    /** Open loop: Poisson process at StreamConfig::arrivalRate jobs/s,
     *  independent of completions (models external request traffic). */
    Poisson,
    /** Closed loop: StreamConfig::clients concurrent clients, each
     *  resubmitting thinkSeconds after its previous job finishes. */
    ClosedLoop,
};

std::string toString(ArrivalModel model);

/** What happens to a job that runs past its deadline. */
enum class DeadlinePolicy : uint8_t {
    Continue, ///< finish anyway; the miss is only counted
    Shed,     ///< stop working on it (the client has gone away)
    Abort,    ///< treat as a per-job failure
};

std::string toString(DeadlinePolicy policy);

/** Streaming-run parameters. */
struct StreamConfig
{
    ArrivalModel arrival = ArrivalModel::ClosedLoop;

    /** Total jobs offered to the stream. */
    int jobs = 64;

    /** Poisson arrival rate in jobs/second. */
    double arrivalRate = 100.0;

    /** Closed-loop client count and per-client think time. */
    int clients = 4;
    double thinkSeconds = 0.0;

    /** Seeds the arrival process; also the base of each job's fault
     *  salt, so two streams with the same seed see the same faults. */
    uint64_t seed = 0x5eed;

    /** Fault injection for the whole stream (all-zero rates = off). */
    FaultConfig faults;

    /** Admission bound override; 0 uses SocConfig::streamMaxPending. */
    int maxPending = 0;

    /** Per-job deadline: explicit seconds after arrival when positive;
     *  otherwise deadlineFactor times the job's fault-free estimate
     *  (0 for both = no deadlines). */
    double deadlineSeconds = 0.0;
    double deadlineFactor = 0.0;
    DeadlinePolicy deadlinePolicy = DeadlinePolicy::Continue;

    /** Worker threads for the per-template cost precompute (the event
     *  loop itself is serial; reports are identical at any setting). */
    int workers = 1;

    /** @throws UserError on non-positive jobs, bad rates/counts, or a
     *  FaultConfig that fails its own validate(). */
    void validate() const;
};

/** One job template: a compiled program plus its execution context.
 *  Streams cycle over the template list round-robin (job i runs
 *  template i mod N). */
struct StreamJob
{
    std::string name;
    const lower::CompiledProgram *program = nullptr;
    WorkloadProfile profile;
    std::set<std::string> accelerated;      ///< empty = everything
    std::map<std::string, double> hostEff;  ///< per-accel cpuEff overlay
};

/** Terminal state of one offered job. */
enum class JobOutcome : uint8_t {
    Completed,
    Shed,     ///< deadline-shed mid-stream or at completion
    Aborted,  ///< fault or deadline policy Abort (this job only)
    Rejected, ///< load-shed at admission (queue full)
};

std::string toString(JobOutcome outcome);

/** Per-job rollup, indexed by arrival order. */
struct StreamJobResult
{
    int jobIndex = 0;
    int templateIndex = 0;
    JobOutcome outcome = JobOutcome::Completed;

    double arrivalSeconds = 0.0;
    double finishSeconds = 0.0; ///< completion / shed / abort instant

    /** finish - arrival; includes queueing + dispatch + service. */
    double latencySeconds = 0.0;

    /** Absolute deadline instant; 0 when the job had none. */
    double deadlineSeconds = 0.0;
    bool missedDeadline = false;

    /** Partitions rescheduled away from their home backend. */
    int64_t migrations = 0;

    /** Execution accounting (partial for shed/aborted jobs; empty for
     *  rejected ones). At zero fault rates, `result.total` and
     *  `result.partitions` are bit-identical to SocRuntime::execute. */
    SocResult result;

    /** Abort reason when outcome == Aborted. */
    std::string error;
};

/** Stream-level rollup. */
struct StreamReport
{
    int64_t offered = 0;
    int64_t admitted = 0;
    int64_t rejected = 0;  ///< load-shed at admission
    int64_t completed = 0;
    int64_t shed = 0;      ///< deadline-shed after admission
    int64_t aborted = 0;
    int64_t deadlineMisses = 0;
    int64_t migrations = 0;

    /** Virtual time when the last job left the system. */
    double makespanSeconds = 0.0;

    /** Completed-job latency percentiles in seconds, from an
     *  obs::LatencyHistogram over whole microseconds — bounded-error
     *  (< 0.4% relative) nearest-rank quantiles, O(1) memory at any
     *  stream length. */
    double p50LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    double p999LatencySeconds = 0.0;

    /** Sum of per-job reliability reports (availability etc.). */
    ReliabilityReport reliability;

    std::vector<StreamJobResult> jobs;

    double throughputJobsPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(completed) / makespanSeconds
                   : 0.0;
    }

    std::string str() const;
};

/**
 * Event-driven virtual-time scheduler over a SocRuntime's backends.
 *
 * run() admits StreamConfig::jobs jobs cycling over @p templates,
 * time-shares the backends between concurrent jobs (partitions within a
 * job stay sequential; different jobs overlap), reschedules around
 * injected faults, enforces deadlines and the admission bound, and
 * returns the full accounting. The conservation invariants
 *
 *     completed + shed + aborted == admitted
 *     admitted + rejected == offered
 *
 * are enforced in-code (panic on violation) — no job is ever silently
 * dropped.
 */
class StreamScheduler
{
  public:
    /** @p runtime must outlive the scheduler.
     *  @throws UserError when @p config fails validate(). */
    StreamScheduler(const SocRuntime &runtime, StreamConfig config);

    const StreamConfig &config() const { return config_; }

    /** @throws UserError on an empty or null-program template list. */
    StreamReport run(const std::vector<StreamJob> &templates) const;

  private:
    const SocRuntime *runtime_;
    StreamConfig config_;
};

} // namespace polymath::soc

#endif // POLYMATH_SOC_STREAM_H_
