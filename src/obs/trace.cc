#include "obs/trace.h"

#include <cmath>

namespace polymath::obs {

TraceArg
TraceArg::num(std::string key, int64_t value)
{
    return TraceArg{std::move(key), std::to_string(value), true};
}

TraceArg
TraceArg::str(std::string key, std::string value)
{
    return TraceArg{std::move(key), std::move(value), false};
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now())
{
}

void
TraceRecorder::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

int64_t
TraceRecorder::nowMicros() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

int64_t
TraceRecorder::threadRank()
{
    static std::atomic<int64_t> next{0};
    thread_local int64_t rank = next.fetch_add(1);
    return rank;
}

void
TraceRecorder::record(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceRecorder::completeReal(std::string name, std::string cat, int64_t ts,
                            int64_t dur, std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'X';
    ev.pid = kRealPid;
    ev.tid = threadRank();
    ev.ts = ts;
    ev.dur = dur;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
TraceRecorder::instant(std::string name, std::string cat,
                       std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'i';
    ev.pid = kRealPid;
    ev.tid = threadRank();
    ev.ts = nowMicros();
    ev.args = std::move(args);
    record(std::move(ev));
}

int64_t
TraceRecorder::newVirtualTrack()
{
    return next_virtual_track_.fetch_add(1);
}

void
TraceRecorder::nameVirtualTrack(int64_t track, std::string name)
{
    TraceEvent ev;
    ev.name = "thread_name";
    ev.ph = 'M';
    ev.pid = kVirtualPid;
    ev.tid = track;
    ev.ts = 0;
    ev.args.push_back(TraceArg::str("name", std::move(name)));
    record(std::move(ev));
}

namespace {

int64_t
virtualMicros(double seconds)
{
    return static_cast<int64_t>(std::llround(seconds * 1e6));
}

} // namespace

void
TraceRecorder::virtualSpan(std::string name, std::string cat, int64_t track,
                           double start_seconds, double duration_seconds,
                           std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'X';
    ev.pid = kVirtualPid;
    ev.tid = track;
    ev.ts = virtualMicros(start_seconds);
    ev.dur = virtualMicros(duration_seconds);
    ev.args = std::move(args);
    record(std::move(ev));
}

void
TraceRecorder::virtualInstant(std::string name, std::string cat,
                              int64_t track, double at_seconds,
                              std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ph = 'i';
    ev.pid = kVirtualPid;
    ev.tid = track;
    ev.ts = virtualMicros(at_seconds);
    ev.args = std::move(args);
    record(std::move(ev));
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

namespace {

thread_local RequestTrace *tl_request_trace = nullptr;

} // namespace

RequestTrace *
RequestTrace::current()
{
    return tl_request_trace;
}

RequestTraceScope::RequestTraceScope(RequestTrace &trace)
    : previous_(tl_request_trace)
{
    tl_request_trace = &trace;
}

RequestTraceScope::~RequestTraceScope()
{
    tl_request_trace = previous_;
}

Span::Span(const char *name, const char *cat, TraceRecorder &recorder)
{
    const bool global_on = recorder.enabled();
    RequestTrace *request = RequestTrace::current();
    if (!global_on && !request)
        return; // zero-cost path: one load + one TLS read, no allocation
    recorder_ = &recorder;
    global_ = global_on;
    request_ = request;
    event_.name = name;
    event_.cat = cat;
    event_.ts = recorder.nowMicros();
}

Span::~Span()
{
    if (!recorder_)
        return;
    event_.ph = 'X';
    event_.pid = kRealPid;
    event_.tid = TraceRecorder::threadRank();
    event_.dur = recorder_->nowMicros() - event_.ts;
    if (request_)
        request_->append(global_ ? event_ : std::move(event_));
    if (global_) {
        if (request_)
            event_.args.push_back(TraceArg::str("req", request_->id()));
        recorder_->record(std::move(event_));
    }
}

void
Span::arg(const char *key, const std::string &value)
{
    if (recorder_)
        event_.args.push_back(TraceArg::str(key, value));
}

void
Span::arg(const char *key, int64_t value)
{
    if (recorder_)
        event_.args.push_back(TraceArg::num(key, value));
}

void
Span::rename(std::string name)
{
    if (recorder_)
        event_.name = std::move(name);
}

} // namespace polymath::obs
