/**
 * @file
 * Per-request flight recording (docs/OBSERVABILITY.md §"Service
 * telemetry").
 *
 * A FlightRecorder keeps the last N completed RequestRecords in a
 * bounded ring so a long-running daemon can answer "what did request X
 * do, and why was it slow?" after the fact — via the `dump` verb, on
 * SIGUSR1, or at shutdown — without restarting or enabling full
 * tracing. Records for requests that exceeded the server's
 * slow-trace threshold retain their complete span trace (captured by
 * the request's RequestTrace sink); fast requests keep only the
 * scalar summary, so the ring's memory stays bounded in practice.
 *
 * RateWindow turns "events happened at these times" into the sliding-
 * window req/s / sheds/s rates the `metrics` verb exports, without a
 * background thread: marks are pruned lazily on both record and read.
 */
#ifndef POLYMATH_OBS_REQUEST_H_
#define POLYMATH_OBS_REQUEST_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace polymath::obs {

/** Everything the flight recorder keeps about one finished request. */
struct RequestRecord
{
    std::string requestId;
    std::string verb;
    std::string backends; ///< comma-joined backend mix ("" = none)
    int exitCode = 0;
    int64_t cacheHits = 0;
    int64_t cacheMisses = 0;
    int64_t queueWaitMicros = 0; ///< accept-to-dispatch
    int64_t executeMicros = 0;   ///< inside runRequestGuarded
    int64_t bytesIn = 0;
    int64_t bytesOut = 0;
    int64_t finishedAtMicros = 0; ///< recorder-epoch-relative
    /** Full span trace; retained only when executeMicros exceeded the
     *  server's --slow-trace-us threshold (else empty). */
    std::vector<TraceEvent> trace;

    /** One JSON object (trace rendered as Chrome-trace events). */
    std::string json() const;
};

/** Bounded ring of the last N RequestRecords; push is O(1) under one
 *  short mutex hold (a move, never an allocation-heavy copy). */
class FlightRecorder
{
  public:
    /** @p capacity 0 disables recording entirely (push is a cheap
     *  early-out, snapshot/json return empty). */
    explicit FlightRecorder(size_t capacity) : capacity_(capacity) {}

    size_t capacity() const { return capacity_; }

    void push(RequestRecord record);

    /** Requests ever pushed (including ones the ring has dropped). */
    uint64_t totalPushed() const;

    /** Retained records, oldest first. */
    std::vector<RequestRecord> snapshot() const;

    /** {"capacity":..,"recorded":..,"records":[...]} oldest first. */
    std::string json() const;

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    uint64_t total_ = 0;
    std::vector<RequestRecord> ring_; ///< grows to capacity_, then wraps
    size_t next_ = 0;                 ///< ring_ slot the next push takes
};

/** Sliding-window event rate (events/s over the last windowMicros). */
class RateWindow
{
  public:
    explicit RateWindow(int64_t windowMicros = kDefaultWindowMicros)
        : window_(windowMicros > 0 ? windowMicros : kDefaultWindowMicros)
    {
    }

    static constexpr int64_t kDefaultWindowMicros = 10'000'000; // 10 s

    int64_t windowMicros() const { return window_; }

    /** Records @p count events at @p nowMicros (monotonic clock). */
    void mark(int64_t nowMicros, int64_t count = 1);

    /** Events/second over [nowMicros - window, nowMicros]. */
    double ratePerSecond(int64_t nowMicros) const;

  private:
    void pruneLocked(int64_t nowMicros) const;

    const int64_t window_;
    mutable std::mutex mutex_;
    /** (timestampMicros, count) marks, oldest first. */
    mutable std::deque<std::pair<int64_t, int64_t>> marks_;
};

} // namespace polymath::obs

#endif // POLYMATH_OBS_REQUEST_H_
