/**
 * @file
 * Process-wide metrics registry (docs/OBSERVABILITY.md).
 *
 * Named counters, gauges, and histograms with lock-free updates: the
 * registry hands out stable references (instruments are never destroyed,
 * reset() only zeroes them), so hot paths pay one relaxed atomic op per
 * update and can cache the reference across calls. Unlike tracing, metrics
 * are always on — they never print unless a stats dump is requested, so
 * reports stay byte-identical — and they are how layers expose counts the
 * caller would otherwise re-derive: compile-cache hits/misses/coalesces,
 * per-pass change counts, SoC DMA bytes and partition counts, and the
 * fault-injection retry/fallback tallies of the resilience layer.
 */
#ifndef POLYMATH_OBS_METRICS_H_
#define POLYMATH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace polymath::obs {

/** Monotonic (well, signed-delta) event count. */
class Counter
{
  public:
    void add(int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Aggregated view of a histogram at one point in time. */
struct HistogramStats
{
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0; ///< 0 when count == 0
    int64_t max = 0;

    double mean() const
    {
        return count > 0
                   ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
};

/** Distribution of non-negative integer samples (e.g. pass micros,
 *  partition byte counts): count/sum/min/max plus power-of-two buckets. */
class Histogram
{
  public:
    /** Bucket i counts samples whose bit width is i (~[2^(i-1), 2^i)). */
    static constexpr int kBuckets = 63;

    void observe(int64_t value);

    HistogramStats stats() const;

    /** Samples in bucket @p index (see kBuckets). */
    int64_t bucket(int index) const;

    void reset();

  private:
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> min_{INT64_MAX};
    std::atomic<int64_t> max_{INT64_MIN};
    std::atomic<int64_t> buckets_[kBuckets] = {};
};

/** Point-in-time copy of every instrument, for printing/asserting. */
struct MetricsSnapshot
{
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;

    /** Counter value, 0 when absent (snapshots are assert-friendly). */
    int64_t counter(const std::string &name) const;

    /** Flat `name value` text dump, sorted by name. */
    std::string str() const;

    /** JSON object {"counters":{},"gauges":{},"histograms":{}}. */
    std::string json() const;
};

/** Named-instrument registry; all accessors are thread-safe. */
class MetricsRegistry
{
  public:
    /** Finds or creates an instrument. The reference stays valid for the
     *  registry's lifetime (instruments are never removed). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zeroes every instrument, keeping identities (cached references
     *  remain valid). */
    void reset();

    /** The process-wide registry every instrumentation site feeds. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace polymath::obs

#endif // POLYMATH_OBS_METRICS_H_
