/**
 * @file
 * Process-wide metrics registry (docs/OBSERVABILITY.md).
 *
 * Named counters, gauges, and histograms with lock-free updates: the
 * registry hands out stable references (instruments are never destroyed,
 * reset() only zeroes them), so hot paths pay one relaxed atomic op per
 * update and can cache the reference across calls. Unlike tracing, metrics
 * are always on — they never print unless a stats dump is requested, so
 * reports stay byte-identical — and they are how layers expose counts the
 * caller would otherwise re-derive: compile-cache hits/misses/coalesces,
 * per-pass change counts, SoC DMA bytes and partition counts, and the
 * fault-injection retry/fallback tallies of the resilience layer.
 */
#ifndef POLYMATH_OBS_METRICS_H_
#define POLYMATH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace polymath::obs {

/** Monotonic (well, signed-delta) event count. */
class Counter
{
  public:
    void add(int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Aggregated view of a histogram at one point in time. */
struct HistogramStats
{
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0; ///< 0 when count == 0
    int64_t max = 0;
    /** Samples <= 0, which have no power-of-two bucket. They still
     *  count toward count/sum/min/max. */
    int64_t underflow = 0;

    double mean() const
    {
        return count > 0
                   ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
};

/** Distribution of non-negative integer samples (e.g. pass micros,
 *  partition byte counts): count/sum/min/max plus power-of-two buckets.
 *  Zero and negative samples land in an explicit underflow bucket
 *  instead of being clamped into bucket 0. */
class Histogram
{
  public:
    /** Bucket i counts samples whose bit width is i (~[2^(i-1), 2^i)). */
    static constexpr int kBuckets = 63;

    void observe(int64_t value);

    HistogramStats stats() const;

    /** Samples in bucket @p index (see kBuckets). */
    int64_t bucket(int index) const;

    /** Samples <= 0 (no positive bit width). */
    int64_t underflow() const
    {
        return underflow_.load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> min_{INT64_MAX};
    std::atomic<int64_t> max_{INT64_MIN};
    std::atomic<int64_t> underflow_{0};
    std::atomic<int64_t> buckets_[kBuckets] = {};
};

/** Point-in-time view of a LatencyHistogram, including the bounded-
 *  error percentiles the log-linear buckets exist for. */
struct LatencyStats
{
    int64_t count = 0; ///< includes underflow samples
    int64_t sum = 0;
    int64_t min = 0; ///< 0 when count == 0
    int64_t max = 0;
    int64_t underflow = 0; ///< samples <= 0 (treated as value 0)
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;

    double mean() const
    {
        return count > 0
                   ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
};

/**
 * Log-linear (HDR-style) histogram of positive integer samples —
 * request latencies in microseconds, byte counts — with bounded-error
 * quantiles: each power-of-two octave is split into 128 linear
 * sub-buckets, so any quantile is off by at most half a sub-bucket
 * width (< 0.4% relative error), values below 256 are exact, and the
 * whole structure is a fixed array of relaxed atomics (lock-free
 * observe, deterministic quantiles for a given sample multiset at any
 * thread count). This replaces both sorted-latency vectors (O(n)
 * memory, needs a barrier to sort) and the coarse power-of-two buckets
 * of Histogram wherever p50/p99/p999 matter.
 */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits linear buckets per octave. */
    static constexpr int kSubBits = 7;
    static constexpr int kSubBuckets = 1 << kSubBits; // 128
    /** Values in [0, 2*kSubBuckets) are exact (width-1 buckets). */
    static constexpr int kExactLimit = 2 * kSubBuckets; // 256
    /** Octaves above the exact range, enough for any int64 sample. */
    static constexpr int kOctaves = 55;
    static constexpr int kBucketCount =
        kExactLimit + kOctaves * kSubBuckets;

    /** Records @p value; values <= 0 land in the underflow bucket and
     *  quantile-walk as 0. */
    void observe(int64_t value);

    int64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /**
     * Nearest-rank quantile for @p q in [0, 1], as the midpoint of the
     * containing bucket (exact below kExactLimit). 0 when empty.
     */
    double quantile(double q) const;

    LatencyStats stats() const;

    void reset();

    /** Bucket index for a positive @p value (exposed for tests). */
    static int bucketIndex(int64_t value);

    /** Representative (midpoint) value of bucket @p index. */
    static int64_t bucketValue(int index);

  private:
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> min_{INT64_MAX};
    std::atomic<int64_t> max_{INT64_MIN};
    std::atomic<int64_t> underflow_{0};
    std::atomic<int64_t> buckets_[kBucketCount] = {};
};

/** Point-in-time copy of every instrument, for printing/asserting. */
struct MetricsSnapshot
{
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
    std::map<std::string, LatencyStats> latencies;

    /** Counter value, 0 when absent (snapshots are assert-friendly). */
    int64_t counter(const std::string &name) const;

    /** Flat `name value` text dump, sorted by name. */
    std::string str() const;

    /** JSON object {"counters":{},"gauges":{},"histograms":{}}. */
    std::string json() const;
};

/** Named-instrument registry; all accessors are thread-safe. */
class MetricsRegistry
{
  public:
    /** Finds or creates an instrument. The reference stays valid for the
     *  registry's lifetime (instruments are never removed). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);
    LatencyHistogram &latency(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zeroes every instrument, keeping identities (cached references
     *  remain valid). */
    void reset();

    /** The process-wide registry every instrumentation site feeds. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

} // namespace polymath::obs

#endif // POLYMATH_OBS_METRICS_H_
