/**
 * @file
 * Trace/metrics exporters (docs/OBSERVABILITY.md).
 *
 * The Chrome-trace exporter renders a TraceRecorder's events in the
 * trace-event JSON format that chrome://tracing and https://ui.perfetto.dev
 * load directly: one "complete" ('X') event per span with ts/dur in
 * microseconds, instant ('i') events for point occurrences, and process
 * metadata naming the wall-clock (pid 1) and SoC virtual-time (pid 2)
 * timelines.
 */
#ifndef POLYMATH_OBS_EXPORT_H_
#define POLYMATH_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace polymath::obs {

/** Renders the recorded events as a Chrome-trace JSON document. */
std::string chromeTraceJson(const TraceRecorder &recorder);

/** Writes chromeTraceJson() to @p path. @throws UserError on I/O error. */
void writeChromeTrace(const TraceRecorder &recorder,
                      const std::string &path);

} // namespace polymath::obs

#endif // POLYMATH_OBS_EXPORT_H_
