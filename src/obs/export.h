/**
 * @file
 * Trace/metrics exporters (docs/OBSERVABILITY.md).
 *
 * The Chrome-trace exporter renders a TraceRecorder's events in the
 * trace-event JSON format that chrome://tracing and https://ui.perfetto.dev
 * load directly: one "complete" ('X') event per span with ts/dur in
 * microseconds, instant ('i') events for point occurrences, and process
 * metadata naming the wall-clock (pid 1) and SoC virtual-time (pid 2)
 * timelines.
 */
#ifndef POLYMATH_OBS_EXPORT_H_
#define POLYMATH_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace polymath::obs {

/** Renders the recorded events as a Chrome-trace JSON document. */
std::string chromeTraceJson(const TraceRecorder &recorder);

/** Renders one event as a Chrome-trace JSON object (used both by
 *  chromeTraceJson and by flight-recorder dumps). */
std::string traceEventJson(const TraceEvent &event);

/** Writes chromeTraceJson() to @p path. @throws UserError on I/O error. */
void writeChromeTrace(const TraceRecorder &recorder,
                      const std::string &path);

/**
 * Prometheus text exposition (version 0.0.4) of a metrics snapshot.
 * Metric names are sanitized to [a-zA-Z0-9_:] and prefixed with
 * "polymath_"; counters render as `counter`, gauges as `gauge`, and
 * both histogram flavors as `summary` (LatencyHistogram additionally
 * emits quantile{0.5,0.99,0.999} sample lines). Deterministic: maps
 * iterate sorted, numbers use locale-independent to_chars.
 */
std::string prometheusText(const MetricsSnapshot &snapshot);

} // namespace polymath::obs

#endif // POLYMATH_OBS_EXPORT_H_
