#include "obs/export.h"

#include <charconv>
#include <fstream>

#include "core/error.h"
#include "core/strings.h"

namespace polymath::obs {

namespace {

/** Minimal JSON string escaping (control chars, quote, backslash). */
std::string
escaped(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
appendEvent(std::string &out, const TraceEvent &ev)
{
    out += "{\"name\":\"" + escaped(ev.name) + "\"";
    if (!ev.cat.empty())
        out += ",\"cat\":\"" + escaped(ev.cat) + "\"";
    out += ",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":" + std::to_string(ev.pid) +
           ",\"tid\":" + std::to_string(ev.tid) +
           ",\"ts\":" + std::to_string(ev.ts);
    if (ev.ph == 'X')
        out += ",\"dur\":" + std::to_string(ev.dur);
    if (ev.ph == 'i')
        out += ",\"s\":\"t\""; // instant scope: thread
    if (!ev.args.empty()) {
        out += ",\"args\":{";
        for (size_t i = 0; i < ev.args.size(); ++i) {
            const auto &arg = ev.args[i];
            out += (i ? "," : "");
            out += '"';
            out += escaped(arg.key);
            out += "\":";
            if (arg.numeric) {
                out += arg.value;
            } else {
                out += '"';
                out += escaped(arg.value);
                out += '"';
            }
        }
        out += "}";
    }
    out += "}";
}

void
appendProcessName(std::string &out, int pid, const char *name)
{
    out += format("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                  pid, name);
}

} // namespace

std::string
traceEventJson(const TraceEvent &event)
{
    std::string out;
    appendEvent(out, event);
    return out;
}

std::string
chromeTraceJson(const TraceRecorder &recorder)
{
    const auto events = recorder.snapshot();
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    appendProcessName(out, kRealPid, "polymath (wall clock)");
    out += ",";
    appendProcessName(out, kVirtualPid, "polymath SoC (virtual time)");
    for (const auto &ev : events) {
        out += ",\n";
        appendEvent(out, ev);
    }
    out += "]}\n";
    return out;
}

namespace {

/** "service.requests.completed" -> "polymath_service_requests_completed". */
std::string
promName(const std::string &name)
{
    std::string out = "polymath_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

/** Locale-independent number rendering for exposition values. */
std::string
promDouble(double value)
{
    char buf[64];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), value,
                      std::chars_format::general, 17);
    return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

} // namespace

std::string
prometheusText(const MetricsSnapshot &snapshot)
{
    std::string out;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string n = promName(name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(value) + "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string n = promName(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + promDouble(value) + "\n";
    }
    for (const auto &[name, h] : snapshot.histograms) {
        const std::string n = promName(name);
        out += "# TYPE " + n + " summary\n";
        out += n + "_sum " + std::to_string(h.sum) + "\n";
        out += n + "_count " + std::to_string(h.count) + "\n";
        if (h.underflow > 0)
            out += n + "_underflow " + std::to_string(h.underflow) + "\n";
    }
    for (const auto &[name, l] : snapshot.latencies) {
        const std::string n = promName(name);
        out += "# TYPE " + n + " summary\n";
        out += n + "{quantile=\"0.5\"} " + promDouble(l.p50) + "\n";
        out += n + "{quantile=\"0.99\"} " + promDouble(l.p99) + "\n";
        out += n + "{quantile=\"0.999\"} " + promDouble(l.p999) + "\n";
        out += n + "_sum " + std::to_string(l.sum) + "\n";
        out += n + "_count " + std::to_string(l.count) + "\n";
        if (l.underflow > 0)
            out += n + "_underflow " + std::to_string(l.underflow) + "\n";
    }
    return out;
}

void
writeChromeTrace(const TraceRecorder &recorder, const std::string &path)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot open trace file '" + path + "' for writing");
    const std::string json = chromeTraceJson(recorder);
    file.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!file)
        fatal("failed writing trace file '" + path + "'");
}

} // namespace polymath::obs
