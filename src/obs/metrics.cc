#include "obs/metrics.h"

#include <bit>
#include <charconv>
#include <cmath>

#include "core/strings.h"

namespace polymath::obs {

namespace {

/** Shared count/sum/min/max update for both histogram flavors. */
void
observeScalars(std::atomic<int64_t> &count, std::atomic<int64_t> &sum,
               std::atomic<int64_t> &min, std::atomic<int64_t> &max,
               int64_t value)
{
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = min.load(std::memory_order_relaxed);
    while (value < seen &&
           !min.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
    }
    seen = max.load(std::memory_order_relaxed);
    while (value > seen &&
           !max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
    }
}

} // namespace

void
Histogram::observe(int64_t value)
{
    observeScalars(count_, sum_, min_, max_, value);
    if (value <= 0) {
        // No positive bit width: an explicit underflow bucket instead
        // of silently clamping into bucket 0 (which counts bit-width-0
        // samples and would conflate "zero micros" with "negative").
        underflow_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const int bucket = std::bit_width(static_cast<uint64_t>(value));
    buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
}

HistogramStats
Histogram::stats() const
{
    HistogramStats s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.underflow = underflow_.load(std::memory_order_relaxed);
    if (s.count > 0) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
    }
    return s;
}

int64_t
Histogram::bucket(int index) const
{
    if (index < 0 || index >= kBuckets)
        return 0;
    return buckets_[index].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(INT64_MAX, std::memory_order_relaxed);
    max_.store(INT64_MIN, std::memory_order_relaxed);
    underflow_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

int
LatencyHistogram::bucketIndex(int64_t value)
{
    // Values below kExactLimit get width-1 buckets; above it, the top
    // kSubBits+1 significant bits pick a linear sub-bucket inside the
    // value's power-of-two octave.
    if (value < kExactLimit)
        return static_cast<int>(value);
    const int width = std::bit_width(static_cast<uint64_t>(value));
    const int octave = width - kSubBits - 1; // >= 1 here
    const int64_t sub = value >> octave;     // in [kSubBuckets, 2*kSubBuckets)
    int index = kExactLimit + (octave - 1) * kSubBuckets +
                static_cast<int>(sub) - kSubBuckets;
    return index < kBucketCount ? index : kBucketCount - 1;
}

int64_t
LatencyHistogram::bucketValue(int index)
{
    if (index < kExactLimit)
        return index;
    const int octave = (index - kExactLimit) / kSubBuckets + 1;
    const int64_t sub =
        (index - kExactLimit) % kSubBuckets + kSubBuckets;
    const int64_t low = sub << octave;
    return low + (int64_t{1} << (octave - 1)); // bucket midpoint
}

void
LatencyHistogram::observe(int64_t value)
{
    observeScalars(count_, sum_, min_, max_, value);
    if (value <= 0) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

double
LatencyHistogram::quantile(double q) const
{
    const int64_t n = count_.load(std::memory_order_relaxed);
    if (n <= 0)
        return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = rank < 1 ? 1 : (rank > n ? n : rank);
    int64_t remaining = rank;
    remaining -= underflow_.load(std::memory_order_relaxed);
    if (remaining <= 0)
        return 0.0; // underflow samples quantile-walk as 0
    for (int i = 1; i < kBucketCount; ++i) {
        remaining -= buckets_[i].load(std::memory_order_relaxed);
        if (remaining <= 0)
            return static_cast<double>(bucketValue(i));
    }
    // A racing observe can leave the walk short; the recorded max is
    // the honest answer for the tail in that case.
    return static_cast<double>(max_.load(std::memory_order_relaxed));
}

LatencyStats
LatencyHistogram::stats() const
{
    LatencyStats s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.underflow = underflow_.load(std::memory_order_relaxed);
    if (s.count > 0) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
        s.p50 = quantile(0.50);
        s.p99 = quantile(0.99);
        s.p999 = quantile(0.999);
    }
    return s;
}

void
LatencyHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(INT64_MAX, std::memory_order_relaxed);
    max_.store(INT64_MIN, std::memory_order_relaxed);
    underflow_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

int64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
}

namespace {

/** Locale-independent double rendering (DESIGN.md §"Locale"). */
std::string
doubleText(double value)
{
    char buf[64];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), value,
                      std::chars_format::general, 17);
    return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

} // namespace

std::string
MetricsSnapshot::str() const
{
    std::string out;
    for (const auto &[name, value] : counters)
        out += format("%-44s %lld\n", name.c_str(),
                      static_cast<long long>(value));
    for (const auto &[name, value] : gauges)
        out += format("%-44s %s\n", name.c_str(),
                      doubleText(value).c_str());
    for (const auto &[name, h] : histograms) {
        out += format("%-44s count %lld  sum %lld  min %lld  max %lld  "
                      "mean %s",
                      name.c_str(), static_cast<long long>(h.count),
                      static_cast<long long>(h.sum),
                      static_cast<long long>(h.min),
                      static_cast<long long>(h.max),
                      doubleText(h.mean()).c_str());
        // Only printed when present, so dumps of non-negative data keep
        // their historical bytes.
        if (h.underflow > 0)
            out += format("  underflow %lld",
                          static_cast<long long>(h.underflow));
        out += "\n";
    }
    for (const auto &[name, l] : latencies) {
        out += format("%-44s count %lld  p50 %s  p99 %s  p999 %s  "
                      "max %lld",
                      name.c_str(), static_cast<long long>(l.count),
                      doubleText(l.p50).c_str(),
                      doubleText(l.p99).c_str(),
                      doubleText(l.p999).c_str(),
                      static_cast<long long>(l.max));
        if (l.underflow > 0)
            out += format("  underflow %lld",
                          static_cast<long long>(l.underflow));
        out += "\n";
    }
    return out;
}

std::string
MetricsSnapshot::json() const
{
    // Metric names are [A-Za-z0-9._-] by convention, so no escaping is
    // needed; keep it that way when adding instruments.
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":";
        out += std::to_string(value);
        first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":";
        out += doubleText(value);
        first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":{\"count\":";
        out += std::to_string(h.count);
        out += ",\"sum\":";
        out += std::to_string(h.sum);
        out += ",\"min\":";
        out += std::to_string(h.min);
        out += ",\"max\":";
        out += std::to_string(h.max);
        out += ",\"mean\":";
        out += doubleText(h.mean());
        out += ",\"underflow\":";
        out += std::to_string(h.underflow);
        out += '}';
        first = false;
    }
    out += "},\"latencies\":{";
    first = true;
    for (const auto &[name, l] : latencies) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":{\"count\":";
        out += std::to_string(l.count);
        out += ",\"sum\":";
        out += std::to_string(l.sum);
        out += ",\"min\":";
        out += std::to_string(l.min);
        out += ",\"max\":";
        out += std::to_string(l.max);
        out += ",\"underflow\":";
        out += std::to_string(l.underflow);
        out += ",\"p50\":";
        out += doubleText(l.p50);
        out += ",\"p99\":";
        out += doubleText(l.p99);
        out += ",\"p999\":";
        out += doubleText(l.p999);
        out += '}';
        first = false;
    }
    out += "}}";
    return out;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

LatencyHistogram &
MetricsRegistry::latency(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = latencies_[name];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->stats();
    for (const auto &[name, l] : latencies_)
        snap.latencies[name] = l->stats();
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        c->reset();
    for (const auto &[name, g] : gauges_)
        g->reset();
    for (const auto &[name, h] : histograms_)
        h->reset();
    for (const auto &[name, l] : latencies_)
        l->reset();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace polymath::obs
