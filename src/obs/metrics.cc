#include "obs/metrics.h"

#include <bit>
#include <charconv>

#include "core/strings.h"

namespace polymath::obs {

void
Histogram::observe(int64_t value)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    const uint64_t magnitude =
        value > 0 ? static_cast<uint64_t>(value) : 0u;
    const int bucket = std::bit_width(magnitude); // 0 for value <= 0
    buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
}

HistogramStats
Histogram::stats() const
{
    HistogramStats s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    if (s.count > 0) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
    }
    return s;
}

int64_t
Histogram::bucket(int index) const
{
    if (index < 0 || index >= kBuckets)
        return 0;
    return buckets_[index].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(INT64_MAX, std::memory_order_relaxed);
    max_.store(INT64_MIN, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

int64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
}

namespace {

/** Locale-independent double rendering (DESIGN.md §"Locale"). */
std::string
doubleText(double value)
{
    char buf[64];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), value,
                      std::chars_format::general, 17);
    return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

} // namespace

std::string
MetricsSnapshot::str() const
{
    std::string out;
    for (const auto &[name, value] : counters)
        out += format("%-44s %lld\n", name.c_str(),
                      static_cast<long long>(value));
    for (const auto &[name, value] : gauges)
        out += format("%-44s %s\n", name.c_str(),
                      doubleText(value).c_str());
    for (const auto &[name, h] : histograms) {
        out += format("%-44s count %lld  sum %lld  min %lld  max %lld  "
                      "mean %s\n",
                      name.c_str(), static_cast<long long>(h.count),
                      static_cast<long long>(h.sum),
                      static_cast<long long>(h.min),
                      static_cast<long long>(h.max),
                      doubleText(h.mean()).c_str());
    }
    return out;
}

std::string
MetricsSnapshot::json() const
{
    // Metric names are [A-Za-z0-9._-] by convention, so no escaping is
    // needed; keep it that way when adding instruments.
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":";
        out += std::to_string(value);
        first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":";
        out += doubleText(value);
        first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "" : ",";
        out += '"';
        out += name;
        out += "\":{\"count\":";
        out += std::to_string(h.count);
        out += ",\"sum\":";
        out += std::to_string(h.sum);
        out += ",\"min\":";
        out += std::to_string(h.min);
        out += ",\"max\":";
        out += std::to_string(h.max);
        out += ",\"mean\":";
        out += doubleText(h.mean());
        out += '}';
        first = false;
    }
    out += "}}";
    return out;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->stats();
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_)
        c->reset();
    for (const auto &[name, g] : gauges_)
        g->reset();
    for (const auto &[name, h] : histograms_)
        h->reset();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace polymath::obs
