#include "obs/request.h"

#include "core/json.h"
#include "obs/export.h"

namespace polymath::obs {

std::string
RequestRecord::json() const
{
    std::string out = "{\"id\":" + json::quote(requestId);
    out += ",\"verb\":" + json::quote(verb);
    out += ",\"backends\":" + json::quote(backends);
    out += ",\"exit\":" + std::to_string(exitCode);
    out += ",\"cache_hits\":" + std::to_string(cacheHits);
    out += ",\"cache_misses\":" + std::to_string(cacheMisses);
    out += ",\"queue_wait_us\":" + std::to_string(queueWaitMicros);
    out += ",\"execute_us\":" + std::to_string(executeMicros);
    out += ",\"bytes_in\":" + std::to_string(bytesIn);
    out += ",\"bytes_out\":" + std::to_string(bytesOut);
    out += ",\"finished_at_us\":" + std::to_string(finishedAtMicros);
    out += ",\"trace\":[";
    for (size_t i = 0; i < trace.size(); ++i) {
        out += i ? "," : "";
        out += traceEventJson(trace[i]);
    }
    out += "]}";
    return out;
}

void
FlightRecorder::push(RequestRecord record)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(record));
        return;
    }
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
}

uint64_t
FlightRecorder::totalPushed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::vector<RequestRecord>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RequestRecord> out;
    out.reserve(ring_.size());
    // Once wrapped, next_ is the oldest slot; before that, slot 0 is.
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

std::string
FlightRecorder::json() const
{
    const auto records = snapshot();
    std::string out = "{\"capacity\":" + std::to_string(capacity_);
    out += ",\"recorded\":" + std::to_string(totalPushed());
    out += ",\"records\":[";
    for (size_t i = 0; i < records.size(); ++i) {
        out += i ? ",\n" : "";
        out += records[i].json();
    }
    out += "]}";
    return out;
}

void
RateWindow::pruneLocked(int64_t nowMicros) const
{
    const int64_t horizon = nowMicros - window_;
    while (!marks_.empty() && marks_.front().first < horizon)
        marks_.pop_front();
}

void
RateWindow::mark(int64_t nowMicros, int64_t count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pruneLocked(nowMicros);
    if (!marks_.empty() && marks_.back().first == nowMicros) {
        marks_.back().second += count;
        return;
    }
    marks_.emplace_back(nowMicros, count);
}

double
RateWindow::ratePerSecond(int64_t nowMicros) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    pruneLocked(nowMicros);
    int64_t total = 0;
    for (const auto &[ts, count] : marks_)
        total += count;
    return static_cast<double>(total) /
           (static_cast<double>(window_) / 1e6);
}

} // namespace polymath::obs
