/**
 * @file
 * Tracing spans for the whole stack (docs/OBSERVABILITY.md).
 *
 * A TraceRecorder collects timestamped events from every layer of the
 * pipeline — PMLang parse/sema, the pass pipeline, Algorithms 1/2, the
 * compile cache, the backend simulators, and the SoC runtime — into one
 * process-wide timeline that exports as Chrome-trace JSON (chrome://tracing
 * or Perfetto). Two timelines coexist in one trace:
 *
 *   - pid kRealPid: wall-clock spans measured with steady_clock, one tid
 *     per OS thread (the `-jN` pool workers show up as parallel tracks);
 *   - pid kVirtualPid: *virtual-time* spans whose timestamps are simulated
 *     seconds — each SocRuntime::execute lays its per-partition compute and
 *     DMA spans on a fresh virtual track starting at t=0.
 *
 * The recorder is disabled by default and the instrumentation is zero-cost
 * in that state: Span constructors read one relaxed atomic and touch
 * nothing else, so un-traced runs produce byte-identical reports (verified
 * by tests/test_obs.cc and tests/test_driver.cc).
 */
#ifndef POLYMATH_OBS_TRACE_H_
#define POLYMATH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace polymath::obs {

/** Chrome-trace process id of the wall-clock timeline. */
inline constexpr int kRealPid = 1;

/** Chrome-trace process id of the simulated SoC timeline. */
inline constexpr int kVirtualPid = 2;

/** One key/value annotation on an event ("args" in Chrome trace). */
struct TraceArg
{
    std::string key;
    std::string value;
    bool numeric = false; ///< render unquoted in JSON

    static TraceArg num(std::string key, int64_t value);
    static TraceArg str(std::string key, std::string value);
};

/** One trace event (Chrome trace-event format). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'X'; ///< 'X' complete span, 'i' instant
    int pid = kRealPid;
    int64_t tid = 0; ///< thread rank (real) or virtual track
    int64_t ts = 0;  ///< microseconds since recorder epoch / virtual zero
    int64_t dur = 0; ///< span duration in microseconds ('X' only)
    std::vector<TraceArg> args;
};

/** Thread-safe, process-wide event sink. */
class TraceRecorder
{
  public:
    TraceRecorder();

    /** Turns recording on or off. Off (the default) makes every record
     *  call and Span a no-op. */
    void setEnabled(bool on);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds of wall-clock time since the recorder was created. */
    int64_t nowMicros() const;

    /** Small dense id of the calling thread, stable for its lifetime. */
    static int64_t threadRank();

    /** Appends @p event verbatim (no-op when disabled). */
    void record(TraceEvent event);

    /** Records a completed wall-clock span at an explicit [ts, ts+dur]. */
    void completeReal(std::string name, std::string cat, int64_t ts,
                      int64_t dur, std::vector<TraceArg> args = {});

    /** Records an instant event at the current wall-clock time. */
    void instant(std::string name, std::string cat,
                 std::vector<TraceArg> args = {});

    /** Reserves a fresh track (tid) on the virtual timeline; each
     *  simulated execution gets its own so runs do not overlap. */
    int64_t newVirtualTrack();

    /** Labels virtual track @p track in trace viewers (a `thread_name`
     *  metadata event) — e.g. per-backend occupancy tracks of the
     *  streaming scheduler. */
    void nameVirtualTrack(int64_t track, std::string name);

    /** Records a span of simulated time on virtual track @p track. */
    void virtualSpan(std::string name, std::string cat, int64_t track,
                     double start_seconds, double duration_seconds,
                     std::vector<TraceArg> args = {});

    /** Records an instant event on the virtual timeline. */
    void virtualInstant(std::string name, std::string cat, int64_t track,
                        double at_seconds,
                        std::vector<TraceArg> args = {});

    /** Copies out the events recorded so far. */
    std::vector<TraceEvent> snapshot() const;

    size_t eventCount() const;

    /** Drops all recorded events (the enabled flag is unchanged). */
    void clear();

    /** The process-wide recorder every instrumentation site feeds. */
    static TraceRecorder &global();

  private:
    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<int64_t> next_virtual_track_{0};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * Per-request span sink (docs/OBSERVABILITY.md §"Service telemetry").
 *
 * While a RequestTraceScope is alive on a thread, every Span that
 * thread closes is also appended here, tagged to one request id —
 * regardless of whether the process-wide TraceRecorder is enabled.
 * Requests execute synchronously on one pool thread, so the sink is
 * single-writer by construction and needs no lock; the server thread
 * reads events() only after the request's future is resolved.
 */
class RequestTrace
{
  public:
    explicit RequestTrace(std::string id) : id_(std::move(id)) {}

    RequestTrace(const RequestTrace &) = delete;
    RequestTrace &operator=(const RequestTrace &) = delete;

    const std::string &id() const { return id_; }

    void append(TraceEvent event)
    {
        events_.push_back(std::move(event));
    }

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Moves the captured events out (sink becomes empty). */
    std::vector<TraceEvent> take() { return std::move(events_); }

    /** The sink installed on the calling thread, or nullptr. */
    static RequestTrace *current();

  private:
    friend class RequestTraceScope;

    std::string id_;
    std::vector<TraceEvent> events_;
};

/** RAII installer of a RequestTrace as the calling thread's current
 *  sink; restores the previous one (scopes nest) on destruction. */
class RequestTraceScope
{
  public:
    explicit RequestTraceScope(RequestTrace &trace);
    ~RequestTraceScope();

    RequestTraceScope(const RequestTraceScope &) = delete;
    RequestTraceScope &operator=(const RequestTraceScope &) = delete;

  private:
    RequestTrace *previous_ = nullptr;
};

/**
 * RAII wall-clock span: opens at construction, records at destruction.
 * When the recorder is disabled and no RequestTrace is installed on the
 * thread, construction reads one relaxed atomic plus one thread-local
 * and everything else is a no-op — safe to leave in hot paths. With a
 * RequestTrace installed, the span is captured there even when the
 * global recorder is off; with both, the global copy gains a "req" arg
 * naming the request.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "",
                  TraceRecorder &recorder = TraceRecorder::global());
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** True when the span will be recorded somewhere. */
    bool active() const { return recorder_ != nullptr; }

    /** Annotates the span; no-ops when inactive. */
    void arg(const char *key, const std::string &value);
    void arg(const char *key, int64_t value);

    /** Replaces the span name (for names only worth building when
     *  tracing); no-ops when inactive. */
    void rename(std::string name);

  private:
    TraceRecorder *recorder_ = nullptr; ///< clock + sink; null = inactive
    bool global_ = false;               ///< record into recorder_'s events
    RequestTrace *request_ = nullptr;   ///< per-request sink, if installed
    TraceEvent event_;
};

} // namespace polymath::obs

#endif // POLYMATH_OBS_TRACE_H_
