#include "report/report.h"

#include <cmath>

#include "core/error.h"
#include "core/strings.h"

namespace polymath::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += std::string(widths[c] - row[c].size() + 2, ' ');
        }
        return line + "\n";
    };
    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

double
geomean(std::span<const double> values)
{
    // Zero/negative entries have no logarithm and non-finite entries
    // (e.g. the +inf a zero-cost candidate produces in speedup()) would
    // absorb every other sample, so both are skipped; an input with no
    // usable entries — including an empty one — yields 0.0, which no
    // real geomean can produce and therefore reads as "no data".
    double log_sum = 0.0;
    int64_t n = 0;
    for (double v : values) {
        if (v <= 0 || !std::isfinite(v))
            continue;
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

double
mean(std::span<const double> values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0
                          : sum / static_cast<double>(values.size());
}

std::string
times(double value)
{
    // formatF, not printf %f: bench tables must render identically under
    // every locale (no decimal-comma output under e.g. de_DE).
    return formatF(value, 1) + "x";
}

std::string
percent(double value)
{
    return formatF(value * 100.0, 1) + "%";
}

} // namespace polymath::report
