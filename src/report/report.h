/**
 * @file
 * Fixed-width table rendering and statistics helpers shared by the bench
 * harness (one binary per paper table/figure).
 */
#ifndef POLYMATH_REPORT_REPORT_H_
#define POLYMATH_REPORT_REPORT_H_

#include <span>
#include <string>
#include <vector>

namespace polymath::report {

/** Simple left-aligned fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Adds a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Renders with a header underline. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean. Zero, negative, and non-finite entries are skipped
 *  (an all-skipped or empty input returns 0.0 — "no data", a value a
 *  real geomean cannot produce). */
double geomean(std::span<const double> values);

/** Arithmetic mean (0.0 for an empty input). */
double mean(std::span<const double> values);

/** "3.3x" style multiplier formatting (locale-independent). */
std::string times(double value);

/** "83.9%" style percentage formatting, value in [0,1]
 *  (locale-independent). */
std::string percent(double value);

} // namespace polymath::report

#endif // POLYMATH_REPORT_REPORT_H_
