#include "report/artifact.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"
#include "core/json.h"
#include "core/strings.h"

#ifndef POLYMATH_GIT_DESCRIBE
#define POLYMATH_GIT_DESCRIBE "unknown"
#endif
#ifndef POLYMATH_BUILD_CONFIG
#define POLYMATH_BUILD_CONFIG "unknown"
#endif

namespace polymath::report {

std::string
buildGitDescribe()
{
    return POLYMATH_GIT_DESCRIBE;
}

std::string
buildConfig()
{
    return POLYMATH_BUILD_CONFIG;
}

void
BenchArtifact::add(const std::string &benchmark, const std::string &metric,
                   double value)
{
    metrics.push_back(Metric{benchmark, metric, value});
}

std::string
BenchArtifact::json() const
{
    std::vector<const Metric *> sorted;
    sorted.reserve(metrics.size());
    for (const auto &m : metrics)
        sorted.push_back(&m);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Metric *a, const Metric *b) {
                         if (a->benchmark != b->benchmark)
                             return a->benchmark < b->benchmark;
                         return a->metric < b->metric;
                     });

    std::string out = "{\n";
    out += "  \"schema\": " + json::quote(kSchema) + ",\n";
    out += "  \"name\": " + json::quote(name) + ",\n";
    out += "  \"provenance\": {\"git\": " + json::quote(git) +
           ", \"config\": " + json::quote(config) +
           ", \"jobs\": " + std::to_string(jobs) + "},\n";
    out += "  \"metrics\": [";
    for (size_t i = 0; i < sorted.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += "{\"benchmark\": " + json::quote(sorted[i]->benchmark) +
               ", \"metric\": " + json::quote(sorted[i]->metric) +
               ", \"value\": " + json::numberToJson(sorted[i]->value) + "}";
    }
    out += sorted.empty() ? "]\n" : "\n  ]\n";
    return out + "}\n";
}

BenchArtifact
BenchArtifact::fromJson(const std::string &text)
{
    const json::Value root = json::parse(text);
    if (!root.has("schema") || root.at("schema").str() != kSchema) {
        fatal(std::string("bench artifact: expected schema \"") + kSchema +
              "\", got " +
              (root.has("schema") ? "\"" + root.at("schema").str() + "\""
                                  : "none"));
    }
    BenchArtifact artifact;
    artifact.name = root.has("name") ? root.at("name").str() : "";
    if (root.has("provenance")) {
        const json::Value &prov = root.at("provenance");
        if (prov.has("git"))
            artifact.git = prov.at("git").str();
        if (prov.has("config"))
            artifact.config = prov.at("config").str();
        if (prov.has("jobs"))
            artifact.jobs = prov.at("jobs").asInt();
    }
    if (root.has("metrics")) {
        for (const json::Value &row : root.at("metrics").arr()) {
            artifact.add(row.at("benchmark").str(), row.at("metric").str(),
                         json::numberFromJson(row.at("value")));
        }
    }
    return artifact;
}

void
BenchArtifact::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("bench artifact: cannot open '" + path + "' for writing");
    const std::string text = json();
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out)
        fatal("bench artifact: write to '" + path + "' failed");
}

BenchArtifact
BenchArtifact::read(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("bench artifact: cannot read '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return fromJson(text.str());
}

std::string
MetricDiff::str() const
{
    const char *verdict = "ok";
    switch (status) {
      case Status::Ok: break;
      case Status::Changed: verdict = "CHANGED"; break;
      case Status::MissingInCurrent: verdict = "MISSING in current"; break;
      case Status::MissingInBaseline: verdict = "MISSING in baseline"; break;
    }
    std::string line = benchmark + "/" + metric + ": " + verdict;
    if (status == Status::Ok || status == Status::Changed) {
        line += " (baseline " + formatG(baseline, 6) + ", current " +
                formatG(current, 6) + ", rel err " + formatG(relError, 3) +
                ")";
    } else if (status == Status::MissingInCurrent) {
        line += " (baseline " + formatG(baseline, 6) + ")";
    } else {
        line += " (current " + formatG(current, 6) + ")";
    }
    return line;
}

bool
CompareResult::ok() const
{
    for (const auto &d : diffs) {
        if (d.status != MetricDiff::Status::Ok)
            return false;
    }
    return true;
}

std::string
CompareResult::summary() const
{
    std::string out;
    int bad = 0;
    for (const auto &d : diffs) {
        if (d.status == MetricDiff::Status::Ok)
            continue;
        out += "  " + d.str() + "\n";
        ++bad;
    }
    if (bad == 0) {
        return "all " + std::to_string(compared) +
               " metrics within tolerance\n";
    }
    return std::to_string(bad) + " of " +
           std::to_string(diffs.size()) + " metric rows out of tolerance:\n" +
           out;
}

CompareResult
compareArtifacts(const BenchArtifact &baseline, const BenchArtifact &current,
                 const CompareOptions &options)
{
    auto key = [](const BenchArtifact::Metric &m) {
        return m.benchmark + "\x1f" + m.metric;
    };
    std::map<std::string, const BenchArtifact::Metric *> cur;
    for (const auto &m : current.metrics)
        cur[key(m)] = &m;

    CompareResult result;
    std::map<std::string, bool> seen;
    for (const auto &base : baseline.metrics) {
        MetricDiff d;
        d.benchmark = base.benchmark;
        d.metric = base.metric;
        d.baseline = base.value;
        auto it = cur.find(key(base));
        if (it == cur.end()) {
            d.status = MetricDiff::Status::MissingInCurrent;
            result.diffs.push_back(std::move(d));
            continue;
        }
        seen[key(base)] = true;
        ++result.compared;
        d.current = it->second->value;
        double tol = options.relTol;
        auto override_it = options.metricTol.find(base.metric);
        if (override_it != options.metricTol.end())
            tol = override_it->second;
        const double scale =
            std::max(std::abs(d.baseline), std::abs(d.current));
        const double diff = std::abs(d.current - d.baseline);
        d.relError = scale > 0 ? diff / scale : 0.0;
        // Non-finite values defeat the relative test: NaN matches only
        // NaN, an infinity only the identical infinity.
        if (!std::isfinite(d.baseline) || !std::isfinite(d.current)) {
            const bool same =
                (std::isnan(d.baseline) && std::isnan(d.current)) ||
                d.baseline == d.current;
            if (!same)
                d.status = MetricDiff::Status::Changed;
        } else if (diff > tol * scale) {
            d.status = MetricDiff::Status::Changed;
        }
        result.diffs.push_back(std::move(d));
    }
    for (const auto &m : current.metrics) {
        if (seen.count(key(m)))
            continue;
        MetricDiff d;
        d.benchmark = m.benchmark;
        d.metric = m.metric;
        d.current = m.value;
        d.status = MetricDiff::Status::MissingInBaseline;
        result.diffs.push_back(std::move(d));
    }
    return result;
}

} // namespace polymath::report
