/**
 * @file
 * Schema-versioned bench result artifacts and the perf-regression diff
 * (docs/OBSERVABILITY.md §"Bench artifacts").
 *
 * Every bench binary can serialize the numbers behind its rendered table
 * as JSON (`--json <out>`), carrying enough provenance to interpret a
 * stale file: schema version, bench name, git describe of the build, the
 * jobs count, and the build configuration. `compareArtifacts` diffs two
 * such files metric-by-metric under per-metric relative tolerances — the
 * engine of tools/bench_compare and the check.sh perf gate.
 */
#ifndef POLYMATH_REPORT_ARTIFACT_H_
#define POLYMATH_REPORT_ARTIFACT_H_

#include <map>
#include <string>
#include <vector>

namespace polymath::report {

/** The results of one bench binary, one row per (benchmark, metric). */
struct BenchArtifact
{
    /** Version tag written into every file; fromJson rejects others. */
    static constexpr const char *kSchema = "polymath-bench/1";

    /** Bench binary identity, e.g. "fig7_cpu_comparison". */
    std::string name;

    // Provenance.
    std::string git;    ///< `git describe` of the producing build
    std::string config; ///< build configuration (e.g. "Release")
    int jobs = 1;       ///< driver jobs used for the run

    struct Metric
    {
        std::string benchmark; ///< workload id ("linear_regression", ...)
        std::string metric;    ///< metric id ("speedup", "seconds", ...)
        double value = 0.0;
    };

    std::vector<Metric> metrics;

    /** Appends one row. */
    void add(const std::string &benchmark, const std::string &metric,
             double value);

    /** Serializes (locale-independent, rows sorted by benchmark then
     *  metric so concurrent producers serialize deterministically). */
    std::string json() const;

    /** Parses an artifact; @throws UserError on malformed input or a
     *  schema version this build does not understand. */
    static BenchArtifact fromJson(const std::string &text);

    /** json() to @p path; @throws UserError when unwritable. */
    void write(const std::string &path) const;

    /** fromJson over the contents of @p path; @throws UserError. */
    static BenchArtifact read(const std::string &path);
};

/** Tolerances for compareArtifacts. */
struct CompareOptions
{
    /** Default two-sided relative tolerance: a metric regresses when
     *  |cur - base| > tol * max(|base|, |cur|). The cost models are
     *  deterministic, so the default is exact-modulo-roundoff. */
    double relTol = 1e-9;

    /** Per-metric-id overrides (e.g. {"speedup", 0.05}). */
    std::map<std::string, double> metricTol;
};

/** Verdict for one compared metric row. */
struct MetricDiff
{
    enum class Status
    {
        Ok,                ///< within tolerance
        Changed,           ///< outside tolerance
        MissingInCurrent,  ///< baseline row the candidate lacks
        MissingInBaseline, ///< candidate row the baseline lacks
    };

    std::string benchmark;
    std::string metric;
    double baseline = 0.0;
    double current = 0.0;
    double relError = 0.0;
    Status status = Status::Ok;

    /** One human-readable line ("ok" rows included). */
    std::string str() const;
};

/** Full diff of two artifacts. */
struct CompareResult
{
    std::vector<MetricDiff> diffs;
    int compared = 0; ///< rows present on both sides

    /** True when every row matched within tolerance on both sides. */
    bool ok() const;

    /** Multi-line report of every non-Ok row (or "all N metrics within
     *  tolerance"). */
    std::string summary() const;
};

/**
 * Diffs @p current against @p baseline. Any out-of-tolerance value and
 * any row present on only one side makes ok() false: a vanished metric
 * is a silent coverage loss, not a pass.
 */
CompareResult compareArtifacts(const BenchArtifact &baseline,
                               const BenchArtifact &current,
                               const CompareOptions &options = {});

/** Provenance baked into this build (CMake POLYMATH_GIT_DESCRIBE;
 *  "unknown" outside a git checkout). */
std::string buildGitDescribe();

/** Build configuration string baked into this build. */
std::string buildConfig();

} // namespace polymath::report

#endif // POLYMATH_REPORT_ARTIFACT_H_
