#include "lower/accel_spec.h"

#include "core/strings.h"

namespace polymath::lower {

std::string
IrFragment::str() const
{
    std::string out = opcode + "(";
    bool first = true;
    for (const auto &in : inputs) {
        if (!first)
            out += ", ";
        first = false;
        out += in.name + in.shape.str();
    }
    out += " -> ";
    first = true;
    for (const auto &o : outputs) {
        if (!first)
            out += ", ";
        first = false;
        out += o.name + o.shape.str();
    }
    out += ")";
    for (const auto &[k, v] : attrs)
        out += " " + k + "=" + std::to_string(v);
    if (flops)
        out += format(" flops=%lld", static_cast<long long>(flops));
    return out;
}

int64_t
AccelProgram::totalFlops() const
{
    int64_t n = 0;
    for (const auto &f : fragments)
        n += f.flops;
    return n;
}

void
AcceleratorRegistry::add(AcceleratorSpec spec)
{
    specs_.push_back(std::move(spec));
    omValid_ = false;
}

const AcceleratorSpec *
AcceleratorRegistry::forDomain(Domain domain) const
{
    for (const auto &spec : specs_) {
        if (spec.domain == domain)
            return &spec;
    }
    return nullptr;
}

const AcceleratorSpec *
AcceleratorRegistry::specFor(Domain domain, ir::Op op) const
{
    for (const auto &spec : specs_) {
        if (spec.domain == domain && spec.preferredComponents.count(op))
            return &spec;
    }
    return forDomain(domain);
}

const AcceleratorSpec *
AcceleratorRegistry::byName(const std::string &name) const
{
    for (const auto &spec : specs_) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

const std::map<Domain, ir::OpSet> &
AcceleratorRegistry::supportedOpsByDomain() const
{
    if (!omValid_) {
        om_.clear();
        for (const auto &spec : specs_)
            om_[spec.domain].merge(spec.supportedOps);
        omValid_ = true;
    }
    return om_;
}

IrFragment
genericTranslate(const ir::Graph &graph, const ir::Node &node)
{
    IrFragment frag;
    frag.opcode = node.op.str();
    frag.flops = node.scalarOpCount(graph);

    auto arg_of = [&](ir::ValueId v) {
        const auto &md = graph.value(v).md;
        TensorArg arg;
        arg.name = md.name.empty() ? "%" + std::to_string(v) : md.name;
        arg.shape = md.shape;
        arg.dtype = md.dtype;
        arg.kind = md.kind;
        return arg;
    };

    for (const auto &in : graph.ins(node)) {
        if (in.isIndexOperand())
            continue; // compile-time address streams need no operand slot
        frag.inputs.push_back(arg_of(in.value));
    }
    if (node.base >= 0)
        frag.inputs.push_back(arg_of(node.base));
    for (const auto &out : graph.outs(node))
        frag.outputs.push_back(arg_of(out.value));

    // Shape/iteration attributes for the target's scheduler.
    int64_t i = 0;
    for (const auto &v : graph.domainVars(node)) {
        frag.attrs["dim" + std::to_string(i++)] = v.extent;
        if (v.reduced)
            frag.attrs["reduce_extent"] =
                frag.attrs.count("reduce_extent")
                    ? frag.attrs["reduce_extent"] * v.extent
                    : v.extent;
    }
    if (node.hasPredicate)
        frag.attrs["guarded"] = 1;
    if (ir::isMoveOp(node.op))
        frag.attrs["move_elems"] = node.domainSize(graph);
    if (node.kind == ir::NodeKind::Constant)
        frag.attrs["const_bits"] = 64;
    return frag;
}

} // namespace polymath::lower
