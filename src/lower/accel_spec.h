/**
 * @file
 * Accelerator specifications (Section IV-C).
 *
 * A specification for domain d is the pair (md, +d) of the paper: `md` maps
 * srDFG operation names to translation functions producing accelerator-IR
 * fragments, and `+d` combines fragments into the accumulated program πd.
 * The supported-operation set Ot drives Algorithm 1's lowering.
 *
 * Fragments are a schema-free (opcode, operands, attributes) record: each
 * backend's translate functions produce fragments its own
 * scheduler/simulator understands, so adding an accelerator requires no
 * change to the compilation algorithms.
 */
#ifndef POLYMATH_LOWER_ACCEL_SPEC_H_
#define POLYMATH_LOWER_ACCEL_SPEC_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "srdfg/graph.h"
#include "srdfg/op.h"

namespace polymath::lower {

using lang::Domain;

/** A tensor operand of an accelerator-IR fragment. */
struct TensorArg
{
    std::string name;
    Shape shape;
    DType dtype = DType::Float;
    ir::EdgeKind kind = ir::EdgeKind::Internal;

    /** Host-precision footprint (double / complex<double>). */
    int64_t bytes() const { return shape.numel() * dtypeSize(dtype); }

    /** Accelerator-side footprint: the FPGA/ASIC datapaths compute in
     *  fp32 / complex64 (VTA narrows further to int8 in its own model). */
    int64_t accelBytes() const
    {
        const int64_t elem = dtype == DType::Complex ? 8 : 4;
        return shape.numel() * elem;
    }
};

/** One accelerator-IR fragment: a basic operator plus its arguments. */
struct IrFragment
{
    std::string opcode;
    std::vector<TensorArg> inputs;
    std::vector<TensorArg> outputs;
    std::map<std::string, int64_t> attrs;

    /** Scalar-op work this fragment represents (from the srDFG node). */
    int64_t flops = 0;

    /** Renders "opcode(in: a[..], out: b[..]) {attr=v}". */
    std::string str() const;
};

/** πd: the accumulated accelerator program for one domain. */
struct AccelProgram
{
    std::string accel;
    Domain domain = Domain::None;
    std::vector<IrFragment> fragments;

    int64_t totalFlops() const;
};

/** Translation function: given the graph and one supported node, produce
 *  the accelerator-IR fragment for it. */
using TranslateFn =
    std::function<IrFragment(const ir::Graph &, const ir::Node &)>;

/** One accelerator's registration. */
struct AcceleratorSpec
{
    std::string name;   ///< e.g. "TABLA"
    Domain domain = Domain::None;

    /** Ot: operations this target's IR accepts directly (bitset over the
     *  interned operation space — membership is O(1)). */
    ir::OpSet supportedOps;

    /** md: per-op translation overrides. Ops in supportedOps without an
     *  entry use the generic structural translator. */
    std::map<ir::Op, TranslateFn> translators;

    /** +d: fragment combiner; default appends. */
    std::function<void(AccelProgram &, IrFragment)> combine;

    /** Component ops this accelerator should be chosen for, when several
     *  accelerators serve the same domain (e.g. Black-Scholes on
     *  HyperStreams while logistic regression stays on TABLA). */
    std::set<ir::Op> preferredComponents;

    bool supports(ir::Op op) const { return supportedOps.contains(op); }

    /** Compatibility query for rescheduling: true when Ot covers every
     *  source op in @p ops — i.e. this accelerator could execute a
     *  partition whose nodes carried those ops (soc::StreamScheduler
     *  uses it to pick online-migration targets). */
    bool supportsAll(const ir::OpSet &ops) const
    {
        return supportedOps.containsAll(ops);
    }
};

/** AccSpec of Algorithm 2: the accelerator chosen for each domain. */
class AcceleratorRegistry
{
  public:
    /** Registers @p spec. The first spec registered for a domain is its
     *  default; later ones are selected via preferredComponents. */
    void add(AcceleratorSpec spec);

    /** Default spec for @p domain; nullptr when none registered. */
    const AcceleratorSpec *forDomain(Domain domain) const;

    /** Spec chosen for one node: a same-domain spec preferring @p op,
     *  else the domain default. */
    const AcceleratorSpec *specFor(Domain domain, ir::Op op) const;

    /** Spec by accelerator name; nullptr when absent. */
    const AcceleratorSpec *byName(const std::string &name) const;

    /** The Om map of Algorithm 1: union of supported ops per domain.
     *  Cached — rebuilt only after add(), not per compile. */
    const std::map<Domain, ir::OpSet> &supportedOpsByDomain() const;

    const std::vector<AcceleratorSpec> &specs() const { return specs_; }

  private:
    std::vector<AcceleratorSpec> specs_;
    mutable std::map<Domain, ir::OpSet> om_;
    mutable bool omValid_ = false;
};

/** Builds the generic structural fragment for @p node (used when a spec
 *  lists an op as supported without a custom translator). Applies the
 *  argument-assignment steps of Section IV-C: operand tensors become
 *  inputs/outputs with their type modifiers, shapes are attached as
 *  attributes, and state edges are marked for on-chip initialization. */
IrFragment genericTranslate(const ir::Graph &graph, const ir::Node &node);

} // namespace polymath::lower

#endif // POLYMATH_LOWER_ACCEL_SPEC_H_
