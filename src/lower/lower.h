/**
 * @file
 * Algorithm 1: srDFG lowering.
 *
 * Recursively rewrites a graph so every node's operation is in the target
 * domain's supported set Ot: component nodes whose name the target does not
 * accept are replaced by their (recursively lowered) subgraphs, spliced into
 * the parent level. Because the srDFG keeps every granularity accessible,
 * the same graph lowers to layer-level IRs (VTA), vertex programs
 * (Graphicionado), or single-op dataflow (TABLA/DECO) without re-deriving
 * anything from source.
 */
#ifndef POLYMATH_LOWER_LOWER_H_
#define POLYMATH_LOWER_LOWER_H_

#include <map>

#include "srdfg/graph.h"
#include "srdfg/op.h"

namespace polymath::lower {

/** Om of Algorithm 1: per-domain supported operation sets (Ot bitsets). */
using SupportedOps = std::map<lang::Domain, ir::OpSet>;

/**
 * Lowers @p graph in place against @p om. A node's effective domain is its
 * own tag, falling back to @p default_domain when untagged. After return,
 * every live node at every remaining level is supported by its domain's
 * target.
 *
 * @throws UserError when an unsupported Map/Reduce op remains (the paper's
 * "compilation fails for that accelerator").
 */
void lowerGraph(ir::Graph &graph, const SupportedOps &om,
                lang::Domain default_domain = lang::Domain::None);

/**
 * Splices component node @p id of @p graph: its subgraph's nodes move up
 * one level, boundary values are unified with the node's outer bindings,
 * and the component node is erased.
 */
void spliceComponent(ir::Graph &graph, ir::NodeId id);

} // namespace polymath::lower

#endif // POLYMATH_LOWER_LOWER_H_
