#include "lower/compile_cache.h"

#include <charconv>
#include <cstdlib>
#include <cstring>

#include "core/error.h"
#include "core/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polymath::lower {

std::string
compileCacheKey(const std::string &source, const ir::BuildOptions &opts,
                Domain default_domain, const AcceleratorRegistry &registry,
                const std::string &salt)
{
    // Field separators use '\x1f' (unit separator) so that no field can
    // run into its neighbor and alias another key.
    std::string key;
    key.reserve(source.size() + 256);
    key += "src\x1f";
    key += source;
    key += "\x1f""entry\x1f";
    key += opts.entry;
    key += "\x1f""params\x1f";
    for (const auto &[name, value] : opts.paramConsts) {
        key += name;
        key += '=';
        key += std::to_string(value);
        key += ';';
    }
    key += "\x1f""domain\x1f";
    key += lang::toString(default_domain);
    key += "\x1f""registry\x1f";
    // Registration order matters (first spec per domain is the default),
    // so the key renders specs in order, each with its sorted op-set and
    // preferred components.
    for (const auto &spec : registry.specs()) {
        key += spec.name;
        key += '@';
        key += lang::toString(spec.domain);
        key += '[';
        // sortedNames() matches the old std::set<std::string> iteration
        // order, so cache keys survive the interned-op migration.
        for (const auto &op : spec.supportedOps.sortedNames()) {
            key += op;
            key += ',';
        }
        key += "][";
        for (const auto &comp : spec.preferredComponents) {
            key += comp.str();
            key += ',';
        }
        key += "];";
    }
    if (!salt.empty()) {
        key += "\x1f""salt\x1f";
        key += salt;
    }
    return key;
}

uint64_t
contentHash(const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull; // FNV prime
    }
    return h;
}

std::shared_ptr<const CompiledProgram>
CompileCache::getOrCompile(const std::string &key, const CompileFn &compile)
{
    auto &metrics = obs::MetricsRegistry::global();
    std::promise<std::shared_ptr<const CompiledProgram>> promise;
    Future future;
    uint64_t my_generation = 0;
    bool owner = false;
    bool coalesced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++misses_;
            future = promise.get_future().share();
            Entry entry;
            entry.future = future;
            entry.generation = nextGeneration_++;
            lru_.push_front(key);
            entry.lruPos = lru_.begin();
            my_generation = entry.generation;
            entries_.emplace(key, std::move(entry));
            owner = true;
        } else {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            future = it->second.future;
            coalesced = !it->second.ready;
            if (coalesced)
                ++coalesced_;
        }
    }
    if (!owner) {
        metrics.counter("compile_cache.hits").add(1);
        if (coalesced) {
            metrics.counter("compile_cache.coalesced").add(1);
            // May block while the owning thread compiles; rethrows its
            // error. The span makes the blocked wait visible on the
            // worker's wall-clock track.
            obs::Span span("cache:coalesced-wait", "cache");
            return future.get();
        }
        return future.get();
    }
    metrics.counter("compile_cache.misses").add(1);
    try {
        auto program =
            std::make_shared<const CompiledProgram>(compile());
        promise.set_value(program);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            // The entry may have vanished (clear()) or been replaced by
            // a newer compilation under the same key; only this owner's
            // own entry graduates to "finished" and joins the LRU pool.
            if (it != entries_.end() &&
                it->second.generation == my_generation) {
                it->second.ready = true;
                enforceCapacityLocked();
            }
        }
        return program;
    } catch (...) {
        promise.set_exception(std::current_exception());
        {
            // Evict so a later request can retry instead of replaying
            // the captured exception forever. Guard on the generation:
            // if clear() already dropped this entry and another thread
            // re-inserted a fresh in-flight compilation for the same
            // key, an unconditional erase would drop *that* thread's
            // entry and orphan its waiters' coalescing point.
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end() &&
                it->second.generation == my_generation) {
                lru_.erase(it->second.lruPos);
                entries_.erase(it);
            }
        }
        throw;
    }
}

void
CompileCache::enforceCapacityLocked()
{
    if (capacity_ == 0)
        return;
    auto &evicted = obs::MetricsRegistry::global().counter(
        "compile_cache.evictions");
    auto pos = lru_.end();
    while (entries_.size() > capacity_ && pos != lru_.begin()) {
        --pos;
        auto it = entries_.find(*pos);
        if (it == entries_.end())
            panic("compile cache LRU list references unknown key");
        if (!it->second.ready)
            continue; // in-flight: coalescing point, never dropped
        entries_.erase(it);
        pos = lru_.erase(pos);
        ++evictions_;
        evicted.add(1);
    }
}

int64_t
CompileCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

int64_t
CompileCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

int64_t
CompileCache::coalesced() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return coalesced_;
}

int64_t
CompileCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

double
CompileCache::hitRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
CompileCache::setCapacity(size_t entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = entries;
    enforceCapacityLocked();
}

size_t
CompileCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    // nextGeneration_ is deliberately *not* reset: generation ids must
    // stay unique across clears so an owner whose entry was cleared can
    // never mistake a re-inserted entry for its own.
    hits_ = 0;
    misses_ = 0;
    coalesced_ = 0;
    evictions_ = 0;
}

CompileCache &
CompileCache::global()
{
    static CompileCache cache;
    // Daemon lifetimes need a bound; batch runs default to unbounded.
    // Seeded once, thread-safely, on first use.
    static const bool seeded = [] {
        const char *env = std::getenv("POLYMATH_CACHE_ENTRIES");
        if (env != nullptr && *env != '\0') {
            int64_t value = 0;
            const char *end = env + std::strlen(env);
            const auto [ptr, ec] = std::from_chars(env, end, value);
            if (ec == std::errc{} && ptr == end && value > 0)
                cache.setCapacity(static_cast<size_t>(value));
        }
        return true;
    }();
    (void)seeded;
    return cache;
}

} // namespace polymath::lower
