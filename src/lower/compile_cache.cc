#include "lower/compile_cache.h"

#include <chrono>

#include "core/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polymath::lower {

std::string
compileCacheKey(const std::string &source, const ir::BuildOptions &opts,
                Domain default_domain, const AcceleratorRegistry &registry)
{
    // Field separators use '\x1f' (unit separator) so that no field can
    // run into its neighbor and alias another key.
    std::string key;
    key.reserve(source.size() + 256);
    key += "src\x1f";
    key += source;
    key += "\x1f""entry\x1f";
    key += opts.entry;
    key += "\x1f""params\x1f";
    for (const auto &[name, value] : opts.paramConsts) {
        key += name;
        key += '=';
        key += std::to_string(value);
        key += ';';
    }
    key += "\x1f""domain\x1f";
    key += lang::toString(default_domain);
    key += "\x1f""registry\x1f";
    // Registration order matters (first spec per domain is the default),
    // so the key renders specs in order, each with its sorted op-set and
    // preferred components.
    for (const auto &spec : registry.specs()) {
        key += spec.name;
        key += '@';
        key += lang::toString(spec.domain);
        key += '[';
        // sortedNames() matches the old std::set<std::string> iteration
        // order, so cache keys survive the interned-op migration.
        for (const auto &op : spec.supportedOps.sortedNames()) {
            key += op;
            key += ',';
        }
        key += "][";
        for (const auto &comp : spec.preferredComponents) {
            key += comp.str();
            key += ',';
        }
        key += "];";
    }
    return key;
}

uint64_t
contentHash(const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull; // FNV prime
    }
    return h;
}

std::shared_ptr<const CompiledProgram>
CompileCache::getOrCompile(const std::string &key, const CompileFn &compile)
{
    auto &metrics = obs::MetricsRegistry::global();
    std::promise<std::shared_ptr<const CompiledProgram>> promise;
    Entry entry;
    bool owner = false;
    bool coalesced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++misses_;
            entry = promise.get_future().share();
            entries_.emplace(key, entry);
            owner = true;
        } else {
            ++hits_;
            entry = it->second;
            coalesced = entry.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready;
            if (coalesced)
                ++coalesced_;
        }
    }
    if (!owner) {
        metrics.counter("compile_cache.hits").add(1);
        if (coalesced) {
            metrics.counter("compile_cache.coalesced").add(1);
            // May block while the owning thread compiles; rethrows its
            // error. The span makes the blocked wait visible on the
            // worker's wall-clock track.
            obs::Span span("cache:coalesced-wait", "cache");
            return entry.get();
        }
        return entry.get();
    }
    metrics.counter("compile_cache.misses").add(1);
    try {
        auto program =
            std::make_shared<const CompiledProgram>(compile());
        promise.set_value(program);
        return program;
    } catch (...) {
        promise.set_exception(std::current_exception());
        {
            // Evict so a later request can retry instead of replaying the
            // captured exception forever.
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key);
        }
        throw;
    }
}

int64_t
CompileCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

int64_t
CompileCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

int64_t
CompileCache::coalesced() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return coalesced_;
}

double
CompileCache::hitRate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
    coalesced_ = 0;
}

CompileCache &
CompileCache::global()
{
    static CompileCache cache;
    return cache;
}

} // namespace polymath::lower
