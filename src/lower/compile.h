/**
 * @file
 * Algorithm 2: compilation from a lowered srDFG to accelerator IR.
 *
 * Walks the lowered graph in dataflow order, applies each node's
 * translation function t from the domain's AcceleratorSpec, accumulates
 * fragments into per-domain programs πd with +d, and inserts tload/tstore
 * fragments wherever an edge crosses a domain boundary (the data-transfer
 * rule at the end of Section IV-C).
 *
 * The result also carries an execution partitioning — maximal same-domain
 * runs of the schedule with their DMA sets — which is what the SoC runtime
 * consumes for multi-acceleration.
 */
#ifndef POLYMATH_LOWER_COMPILE_H_
#define POLYMATH_LOWER_COMPILE_H_

#include <vector>

#include "core/diagnostics.h"
#include "lower/accel_spec.h"

namespace polymath::lower {

/** Accelerator name of partitions degraded to host-CPU execution (the SoC
 *  runtime has no backend of this name, so they always run on the host). */
inline constexpr const char *kHostAccel = "host-cpu";

/** One schedulable unit: a maximal same-domain run of the lowered graph. */
struct Partition
{
    Domain domain = Domain::None;
    std::string accel;
    std::vector<IrFragment> fragments;

    /** Source ops of the srDFG nodes this partition was translated from
     *  (transfer fragments excluded) — the compatibility footprint for
     *  AcceleratorSpec::supportsAll when a partition must migrate to
     *  another accelerator at runtime. */
    ir::OpSet ops;

    /** Tensors DMA'd into the accelerator before launch (graph inputs and
     *  values produced by other partitions). */
    std::vector<TensorArg> loads;

    /** Tensors DMA'd back out (graph outputs and values consumed by later
     *  partitions). */
    std::vector<TensorArg> stores;

    /** Indices of earlier partitions this one consumes data from. */
    std::vector<int> deps;

    int64_t loadBytes() const;
    int64_t storeBytes() const;
    int64_t flops() const;
};

/** The compiled multi-accelerator program: πd1 ... πdn plus schedule. */
struct CompiledProgram
{
    /** Accumulated accelerator programs πd, keyed by accelerator name
     *  (domains normally map 1:1 to accelerators; finance splits DA). */
    std::map<std::string, AccelProgram> programs;

    /** Execution schedule for the SoC host manager. */
    std::vector<Partition> partitions;

    /** Total bytes moved across domain boundaries. */
    int64_t transferBytes() const;

    /** Renders the programs and schedule. */
    std::string str() const;
};

/**
 * Algorithm 2 over a lowered top-level graph.
 * @p default_domain is used for untagged nodes (single-domain workloads
 * built without per-statement annotations).
 *
 * Without a DiagnosticEngine, an unregistered accelerator domain throws
 * UserError. With one, the nodes of such a domain degrade gracefully to a
 * kHostAccel partition (generic translation; the SoC runtime executes it
 * on the host CPU) and a warning is recorded per degraded domain.
 */
CompiledProgram compileProgram(const ir::Graph &graph,
                               const AcceleratorRegistry &registry,
                               Domain default_domain = Domain::None,
                               DiagnosticEngine *diag = nullptr);

} // namespace polymath::lower

#endif // POLYMATH_LOWER_COMPILE_H_
