/**
 * @file
 * Content-addressed compile cache for the parallel suite driver and the
 * pmcd compile service.
 *
 * The PMLang -> srDFG -> lower -> translate chain is pure: its output is
 * fully determined by the source text, the build options, the default
 * domain, and the registry's op-sets. The cache exploits that by keying
 * memoized CompiledPrograms on exactly those ingredients, so repeated
 * compilations of one benchmark (fault-sweep repetitions, multiple
 * figures over the same Table III suite, repeated pmc inputs, repeated
 * service requests) pay the pipeline cost once.
 *
 * Thread-safety: getOrCompile() is safe to call concurrently, and
 * concurrent requests for the same key are coalesced (single-flight) —
 * one caller compiles, the rest block on the shared future and count as
 * hits. Cached programs are immutable (shared_ptr<const CompiledProgram>),
 * which is what makes sharing across driver threads sound; this is also
 * why compileProgram() must stay re-entrant (see DESIGN.md).
 *
 * Lifetime: a bench run dies with its process, but the pmcd daemon does
 * not, so the cache is optionally bounded (setCapacity() /
 * POLYMATH_CACHE_ENTRIES for the process-wide instance). Eviction is
 * LRU over *finished* entries only — an in-flight compilation is never
 * dropped, because coalesced waiters hold its future and a re-request
 * must keep coalescing onto it rather than compiling again.
 */
#ifndef POLYMATH_LOWER_COMPILE_CACHE_H_
#define POLYMATH_LOWER_COMPILE_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "lower/compile.h"
#include "srdfg/builder.h"

namespace polymath::lower {

/**
 * Canonical cache key for one compilation: a deterministic rendering of
 * (source text, build options, default domain, registry op-sets). Two
 * compilations with equal keys produce bit-identical CompiledPrograms.
 *
 * @p salt distinguishes compilations whose inputs are identical but
 * whose downstream processing differs — e.g. the pmcd optimize flag or
 * a DSE machine-config signature. A non-empty salt is appended as one
 * more '\x1f'-separated field; the default empty salt keeps keys
 * byte-identical to the pre-salt rendering.
 */
std::string compileCacheKey(const std::string &source,
                            const ir::BuildOptions &opts,
                            Domain default_domain,
                            const AcceleratorRegistry &registry,
                            const std::string &salt = {});

/** 64-bit FNV-1a of @p key (the content address used for display). */
uint64_t contentHash(const std::string &key);

/** Memoizes compiled programs by content key. */
class CompileCache
{
  public:
    using CompileFn = std::function<CompiledProgram()>;

    /**
     * Returns the cached program for @p key, compiling via @p compile on
     * the first request. Concurrent identical requests coalesce onto one
     * compilation. If @p compile throws, the error propagates to every
     * coalesced caller and the key is evicted so a later call can retry
     * — but only the owner's *own* entry is evicted: when the entry was
     * already removed (clear(), LRU pressure) and a newer in-flight
     * compilation now occupies the key, that newer entry stays.
     */
    std::shared_ptr<const CompiledProgram> getOrCompile(
        const std::string &key, const CompileFn &compile);

    /** Requests served from the cache (including coalesced waits). */
    int64_t hits() const;
    /** Requests that ran the compiler. */
    int64_t misses() const;
    /** Hits that blocked on an in-flight compilation (single-flight
     *  coalescing) rather than finding a finished entry. */
    int64_t coalesced() const;
    /** Finished entries dropped by LRU pressure (not by clear() or
     *  failed-compile eviction). */
    int64_t evictions() const;
    /** hits / (hits + misses); 0 when empty. */
    double hitRate() const;
    /** Distinct programs currently cached (including in-flight). */
    size_t size() const;

    /**
     * Bounds the cache to @p entries finished programs (0 = unbounded,
     * the default). Shrinking below the current population evicts
     * least-recently-used finished entries immediately; in-flight
     * compilations are never dropped, so the cache may transiently
     * exceed the cap while many keys compile at once.
     */
    void setCapacity(size_t entries);

    /** Current entry cap; 0 = unbounded. */
    size_t capacity() const;

    /** Drops all entries and resets the counters. In-flight
     *  compilations keep running; their owners just re-insert nothing
     *  (the results are still handed to their waiters). */
    void clear();

    /**
     * Process-wide cache shared by the bench driver, pmc, and pmcd.
     * Its capacity is seeded once from POLYMATH_CACHE_ENTRIES (positive
     * integer; unset/invalid/0 = unbounded).
     */
    static CompileCache &global();

  private:
    using Future =
        std::shared_future<std::shared_ptr<const CompiledProgram>>;

    struct Entry
    {
        Future future;
        /** Monotonic id distinguishing this in-flight compilation from
         *  any later one re-inserted under the same key. */
        uint64_t generation = 0;
        /** Position in lru_ (most-recent at front). */
        std::list<std::string>::iterator lruPos;
        bool ready = false; ///< owner finished successfully
    };

    /** Evicts LRU finished entries until size() <= capacity_ (caller
     *  holds mutex_). In-flight entries are skipped, never dropped. */
    void enforceCapacityLocked();

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< keys, most recently used first
    uint64_t nextGeneration_ = 1;
    size_t capacity_ = 0; ///< 0 = unbounded
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t coalesced_ = 0;
    int64_t evictions_ = 0;
};

} // namespace polymath::lower

#endif // POLYMATH_LOWER_COMPILE_CACHE_H_
