/**
 * @file
 * Content-addressed compile cache for the parallel suite driver.
 *
 * The PMLang -> srDFG -> lower -> translate chain is pure: its output is
 * fully determined by the source text, the build options, the default
 * domain, and the registry's op-sets. The cache exploits that by keying
 * memoized CompiledPrograms on exactly those ingredients, so repeated
 * compilations of one benchmark (fault-sweep repetitions, multiple
 * figures over the same Table III suite, repeated pmc inputs) pay the
 * pipeline cost once.
 *
 * Thread-safety: getOrCompile() is safe to call concurrently, and
 * concurrent requests for the same key are coalesced (single-flight) —
 * one caller compiles, the rest block on the shared future and count as
 * hits. Cached programs are immutable (shared_ptr<const CompiledProgram>),
 * which is what makes sharing across driver threads sound; this is also
 * why compileProgram() must stay re-entrant (see DESIGN.md).
 */
#ifndef POLYMATH_LOWER_COMPILE_CACHE_H_
#define POLYMATH_LOWER_COMPILE_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "lower/compile.h"
#include "srdfg/builder.h"

namespace polymath::lower {

/**
 * Canonical cache key for one compilation: a deterministic rendering of
 * (source text, build options, default domain, registry op-sets). Two
 * compilations with equal keys produce bit-identical CompiledPrograms.
 */
std::string compileCacheKey(const std::string &source,
                            const ir::BuildOptions &opts,
                            Domain default_domain,
                            const AcceleratorRegistry &registry);

/** 64-bit FNV-1a of @p key (the content address used for display). */
uint64_t contentHash(const std::string &key);

/** Memoizes compiled programs by content key. */
class CompileCache
{
  public:
    using CompileFn = std::function<CompiledProgram()>;

    /**
     * Returns the cached program for @p key, compiling via @p compile on
     * the first request. Concurrent identical requests coalesce onto one
     * compilation. If @p compile throws, the error propagates to every
     * coalesced caller and the key is evicted so a later call can retry.
     */
    std::shared_ptr<const CompiledProgram> getOrCompile(
        const std::string &key, const CompileFn &compile);

    /** Requests served from the cache (including coalesced waits). */
    int64_t hits() const;
    /** Requests that ran the compiler. */
    int64_t misses() const;
    /** Hits that blocked on an in-flight compilation (single-flight
     *  coalescing) rather than finding a finished entry. */
    int64_t coalesced() const;
    /** hits / (hits + misses); 0 when empty. */
    double hitRate() const;
    /** Distinct programs currently cached. */
    size_t size() const;

    /** Drops all entries and resets the counters. */
    void clear();

    /** Process-wide cache shared by the bench driver and pmc. */
    static CompileCache &global();

  private:
    using Entry =
        std::shared_future<std::shared_ptr<const CompiledProgram>>;

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t coalesced_ = 0;
};

} // namespace polymath::lower

#endif // POLYMATH_LOWER_COMPILE_CACHE_H_
