#include "lower/compile.h"

#include <set>

#include "core/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "srdfg/traversal.h"

namespace polymath::lower {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::ValueId;

int64_t
Partition::loadBytes() const
{
    int64_t n = 0;
    for (const auto &t : loads)
        n += t.bytes();
    return n;
}

int64_t
Partition::storeBytes() const
{
    int64_t n = 0;
    for (const auto &t : stores)
        n += t.bytes();
    return n;
}

int64_t
Partition::flops() const
{
    int64_t n = 0;
    for (const auto &f : fragments)
        n += f.flops;
    return n;
}

int64_t
CompiledProgram::transferBytes() const
{
    int64_t n = 0;
    for (const auto &p : partitions)
        n += p.loadBytes() + p.storeBytes();
    return n;
}

std::string
CompiledProgram::str() const
{
    std::string out;
    for (const auto &[accel, prog] : programs) {
        out += "program " + lang::toString(prog.domain) + " on " + accel +
               " (" + std::to_string(prog.fragments.size()) +
               " fragments)\n";
        for (const auto &f : prog.fragments)
            out += "  " + f.str() + "\n";
    }
    out += format("schedule: %zu partitions, %lld boundary bytes\n",
                  partitions.size(),
                  static_cast<long long>(transferBytes()));
    for (size_t i = 0; i < partitions.size(); ++i) {
        const auto &p = partitions[i];
        out += format("  [%zu] %s %s: %zu frags, load %lld B, store %lld B,"
                      " deps:",
                      i, lang::toString(p.domain).c_str(), p.accel.c_str(),
                      p.fragments.size(),
                      static_cast<long long>(p.loadBytes()),
                      static_cast<long long>(p.storeBytes()));
        for (int d : p.deps)
            out += " " + std::to_string(d);
        out += "\n";
    }
    return out;
}

namespace {

TensorArg
argOf(const Graph &graph, ValueId v)
{
    const auto &md = graph.value(v).md;
    TensorArg arg;
    arg.name = md.name.empty() ? "%" + std::to_string(v) : md.name;
    arg.shape = md.shape;
    arg.dtype = md.dtype;
    arg.kind = md.kind;
    return arg;
}

IrFragment
transferFragment(const Graph &graph, ValueId v, bool is_load)
{
    IrFragment frag;
    frag.opcode = is_load ? "tload" : "tstore";
    if (is_load)
        frag.inputs.push_back(argOf(graph, v));
    else
        frag.outputs.push_back(argOf(graph, v));
    frag.attrs["bytes"] = argOf(graph, v).bytes();
    return frag;
}

/**
 * Kahn scheduling with accelerator affinity: among ready nodes, stay on
 * the current accelerator as long as possible so the host manager sees
 * maximal same-target partitions (fewer DMA round-trips).
 */
std::vector<NodeId>
affinitySchedule(const Graph &graph,
                 const std::function<std::string(const Node &)> &accel_of)
{
    std::vector<int> pending(graph.nodeCount(), 0);
    std::vector<std::vector<NodeId>> waiters(graph.values.size());
    std::map<std::string, std::vector<NodeId>> ready;
    auto value_pending = [&](ValueId v) {
        return v >= 0 && graph.value(v).producer >= 0 &&
               graph.node(graph.value(v).producer);
    };
    for (const Node &node : graph.nodePool()) {
        if (!node.live())
            continue;
        int count = 0;
        auto dep = [&](ValueId v) {
            if (value_pending(v)) {
                ++count;
                waiters[static_cast<size_t>(v)].push_back(node.id);
            }
        };
        for (const auto &in : graph.ins(node))
            dep(in.isIndexOperand() ? -1 : in.value);
        dep(node.base);
        pending[static_cast<size_t>(node.id)] = count;
        if (count == 0)
            ready[accel_of(node)].push_back(node.id);
    }
    std::vector<NodeId> order;
    std::string current;
    while (true) {
        auto bucket = ready.find(current);
        if (bucket == ready.end() || bucket->second.empty()) {
            bucket = ready.begin();
            while (bucket != ready.end() && bucket->second.empty())
                ++bucket;
            if (bucket == ready.end())
                break;
            current = bucket->first;
        }
        const NodeId id = bucket->second.back();
        bucket->second.pop_back();
        order.push_back(id);
        for (const auto &o : graph.outs(*graph.node(id))) {
            if (o.value < 0)
                continue;
            for (NodeId w : waiters[static_cast<size_t>(o.value)]) {
                if (--pending[static_cast<size_t>(w)] == 0)
                    ready[accel_of(*graph.node(w))].push_back(w);
            }
        }
    }
    if (static_cast<int64_t>(order.size()) != graph.liveNodeCount())
        panic("affinitySchedule(): dataflow cycle");
    return order;
}

} // namespace

CompiledProgram
compileProgram(const Graph &graph, const AcceleratorRegistry &registry,
               Domain default_domain, DiagnosticEngine *diag)
{
    auto &recorder = obs::TraceRecorder::global();
    obs::Span compile_span("lower:compile", "compile");
    CompiledProgram out;

    // Degraded execution target for domains with no registered
    // accelerator: generic translation, host-CPU execution on the SoC.
    AcceleratorSpec host_spec;
    host_spec.name = kHostAccel;
    std::set<Domain> degraded_domains;

    // Producer partition per value (graph inputs: -1).
    std::vector<int> partition_of_value(graph.values.size(), -1);

    Partition *current = nullptr;
    int current_index = -1;

    // Per-partition compile spans: each maximal same-accelerator run of
    // the schedule gets a wall-clock span covering its translation.
    int64_t partition_span_start = 0;
    auto close_partition_span = [&]() {
        if (!recorder.enabled() || !current)
            return;
        const int64_t now = recorder.nowMicros();
        recorder.completeReal(
            format("compile:partition[%d] %s", current_index,
                   current->accel.c_str()),
            "compile", partition_span_start, now - partition_span_start,
            {obs::TraceArg::str("accel", current->accel),
             obs::TraceArg::num(
                 "fragments",
                 static_cast<int64_t>(current->fragments.size()))});
    };
    auto open_partition = [&](Domain dom, const AcceleratorSpec &spec) {
        close_partition_span();
        if (recorder.enabled())
            partition_span_start = recorder.nowMicros();
        out.partitions.push_back(Partition{});
        current = &out.partitions.back();
        current_index = static_cast<int>(out.partitions.size()) - 1;
        current->domain = dom;
        current->accel = spec.name;
    };

    auto domain_name = [](Domain dom) {
        return lang::toString(dom).empty() ? "<none>" : lang::toString(dom);
    };
    auto accel_of = [&](const Node &node) -> std::string {
        const Domain dom =
            node.domain != Domain::None ? node.domain : default_domain;
        const AcceleratorSpec *spec = registry.specFor(dom, node.op);
        if (!spec && diag)
            return host_spec.name;
        return spec ? spec->name : "";
    };
    for (NodeId id : affinitySchedule(graph, accel_of)) {
        const Node &node = *graph.node(id);
        const Domain dom =
            node.domain != Domain::None ? node.domain : default_domain;
        const AcceleratorSpec *spec = registry.specFor(dom, node.op);
        if (!spec) {
            if (!diag) {
                fatal("no accelerator registered for domain " +
                      domain_name(dom));
            }
            if (degraded_domains.insert(dom).second) {
                diag->warning("no accelerator registered for domain " +
                              domain_name(dom) +
                              "; degrading its nodes to a host-CPU "
                              "partition");
            }
            host_spec.domain = dom;
            spec = &host_spec;
        }

        if (!current || current->accel != spec->name)
            open_partition(dom, *spec);

        // Cross-boundary loads: operands produced outside this partition.
        auto needs_load = [&](ValueId v) {
            if (v < 0)
                return false;
            return partition_of_value[static_cast<size_t>(v)] !=
                   current_index;
        };
        std::set<ValueId> loaded;
        auto add_load = [&](ValueId v) {
            if (!needs_load(v) || !loaded.insert(v).second)
                return;
            bool already = false;
            for (const auto &l : current->loads)
                already = already || l.name == argOf(graph, v).name;
            if (already)
                return;
            current->loads.push_back(argOf(graph, v));
            const int src = partition_of_value[static_cast<size_t>(v)];
            if (src >= 0) {
                bool dep_known = false;
                for (int d : current->deps)
                    dep_known = dep_known || d == src;
                if (!dep_known)
                    current->deps.push_back(src);
                // The producing partition must store the value out.
                auto &producer = out.partitions[static_cast<size_t>(src)];
                bool stored = false;
                for (const auto &s : producer.stores)
                    stored = stored || s.name == argOf(graph, v).name;
                if (!stored) {
                    producer.stores.push_back(argOf(graph, v));
                    out.programs[producer.accel].fragments.push_back(
                        transferFragment(graph, v, false));
                }
            }
            out.programs[spec->name].fragments.push_back(
                transferFragment(graph, v, true));
            current->fragments.push_back(transferFragment(graph, v, true));
        };
        for (const auto &in : graph.ins(node)) {
            if (!in.isIndexOperand())
                add_load(in.value);
        }
        if (node.base >= 0)
            add_load(node.base);

        // Translate the node: spec override or the generic translator.
        auto &prog = out.programs[spec->name];
        if (prog.accel.empty()) {
            prog.accel = spec->name;
            prog.domain = dom;
        }
        IrFragment frag;
        auto t = spec->translators.find(node.op);
        if (t != spec->translators.end())
            frag = t->second(graph, node);
        else
            frag = genericTranslate(graph, node);
        if (spec->combine)
            spec->combine(prog, frag);
        else
            prog.fragments.push_back(frag);
        current->fragments.push_back(std::move(frag));
        current->ops.insert(node.op);

        for (const auto &o : graph.outs(node))
            partition_of_value[static_cast<size_t>(o.value)] =
                current_index;
    }

    close_partition_span();

    // Graph outputs leave the last producing partitions.
    for (ValueId v : graph.outputs) {
        const int src = partition_of_value[static_cast<size_t>(v)];
        if (src < 0)
            continue;
        auto &producer = out.partitions[static_cast<size_t>(src)];
        bool stored = false;
        for (const auto &s : producer.stores)
            stored = stored || s.name == argOf(graph, v).name;
        if (!stored) {
            producer.stores.push_back(argOf(graph, v));
            out.programs[producer.accel].fragments.push_back(
                transferFragment(graph, v, false));
        }
    }

    auto &metrics = obs::MetricsRegistry::global();
    metrics.counter("compile.runs").add(1);
    metrics.counter("compile.partitions")
        .add(static_cast<int64_t>(out.partitions.size()));
    metrics.counter("compile.boundary_bytes").add(out.transferBytes());
    // IR storage footprint of the graph just compiled: live nodes across
    // all recursion levels and the flat-pool arena bytes backing them.
    // Gauges (last-write-wins) — surfaced by `pmc --stats` and the
    // daemon's `metrics` verb.
    int64_t live_nodes = 0;
    ir::forEachNodeRecursive(graph, [&](const ir::Graph &,
                                        const ir::Node &) { ++live_nodes; });
    metrics.gauge("ir.nodes.live").set(static_cast<double>(live_nodes));
    metrics.gauge("ir.arena.bytes")
        .set(static_cast<double>(graph.arenaBytes()));
    compile_span.arg("partitions",
                     static_cast<int64_t>(out.partitions.size()));
    compile_span.arg("boundary_bytes", out.transferBytes());
    return out;
}

} // namespace polymath::lower
