#include "lower/lower.h"

#include <vector>

#include "obs/trace.h"
#include "passes/rewrite.h"

namespace polymath::lower {

using ir::Access;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::ValueId;
using lang::Domain;

void
spliceComponent(Graph &graph, NodeId id)
{
    Node *comp = graph.node(id);
    if (!comp || comp->kind != NodeKind::Component)
        panic("spliceComponent(): not a component node");
    // The subgraph object itself never moves when the parent's node pool
    // reallocates (the Node only holds a pointer to it), so this reference
    // stays valid across the addNode calls below — unlike `comp`.
    Graph &sub = *comp->subgraph;
    const Domain comp_domain = comp->domain;

    // Map subgraph value ids to parent value ids.
    std::vector<ValueId> vmap(sub.values.size(), -1);
    const auto comp_ins = graph.ins(*comp);
    const auto comp_outs = graph.outs(*comp);
    for (size_t i = 0; i < sub.inputs.size(); ++i)
        vmap[static_cast<size_t>(sub.inputs[i])] = comp_ins[i].value;
    for (size_t i = 0; i < sub.outputs.size(); ++i) {
        const ValueId sv = sub.outputs[i];
        const ValueId outer = comp_outs[i].value;
        if (vmap[static_cast<size_t>(sv)] >= 0) {
            // Pass-through (e.g. unwritten state): the outer output value
            // is just an alias of the outer input; rewrite its uses.
            const ValueId inner_as_outer = vmap[static_cast<size_t>(sv)];
            pass::replaceUses(graph, outer, inner_as_outer);
            for (auto &gv : graph.outputs) {
                if (gv == outer)
                    gv = inner_as_outer;
            }
        } else {
            vmap[static_cast<size_t>(sv)] = outer;
        }
    }
    for (const auto &v : sub.values) {
        if (vmap[static_cast<size_t>(v.id)] < 0)
            vmap[static_cast<size_t>(v.id)] = graph.addValue(v.md);
    }

    // Move nodes up, remapping value references. addNode relocates the
    // parent pool, so `comp` (and the spans read above) are dead past this
    // point — everything needed from them was captured into locals.
    for (Node &snode : sub.nodePool()) {
        if (!snode.live())
            continue;
        Node &moved = *graph.node(graph.addNode(snode.kind, snode.op));
        moved.domain = snode.domain != Domain::None ? snode.domain
                                                    : comp_domain;
        graph.setDomainVars(moved, sub.domainVars(snode));
        moved.predicate = std::move(snode.predicate);
        moved.hasPredicate = snode.hasPredicate;
        moved.cval = snode.cval;
        moved.subgraph = std::move(snode.subgraph);
        for (const Access &in : sub.ins(snode)) {
            Access a = graph.importAccess(sub, in);
            if (!a.isIndexOperand())
                a.value = vmap[static_cast<size_t>(in.value)];
            graph.addInput(moved, a);
        }
        if (snode.base >= 0)
            graph.setBase(moved, vmap[static_cast<size_t>(snode.base)]);
        for (const Access &out : sub.outs(snode)) {
            Access a = graph.importAccess(sub, out);
            a.value = vmap[static_cast<size_t>(out.value)];
            graph.addOutput(moved, a);
            graph.value(a.value).producer = moved.id;
        }
    }
    // The splice rewires boundary values with raw surgery; drop the use
    // cache rather than replaying every move through the incremental
    // helpers.
    graph.touchUses();
    graph.eraseNode(id);
}

namespace {

/** Effective domain of a node for Ot lookup. */
Domain
effectiveDomain(const Node &node, Domain fallback)
{
    return node.domain != Domain::None ? node.domain : fallback;
}

} // namespace

void
lowerGraph(Graph &graph, const SupportedOps &om, Domain default_domain)
{
    obs::Span span("lower:graph", "lower");
    span.arg("nodes_before", graph.liveNodeCount());
    // Iterate until stable: splicing appends nodes that may themselves
    // need lowering.
    bool changed = true;
    while (changed) {
        changed = false;
        const size_t count = graph.nodeCount();
        for (size_t i = 0; i < count; ++i) {
            Node *node = graph.node(static_cast<NodeId>(i));
            if (!node)
                continue;
            const Domain dom = effectiveDomain(*node, default_domain);
            const auto om_it = om.find(dom);
            // "@custom_reduce" in Ot admits any user-defined reduction
            // (vertex programs define their own combiners).
            static const ir::Op custom_reduce =
                ir::Op::intern("@custom_reduce");
            const bool supported =
                om_it != om.end() &&
                (om_it->second.contains(node->op) ||
                 (node->kind == NodeKind::Reduce &&
                  om_it->second.contains(custom_reduce)));
            if (supported)
                continue;
            if (node->kind == NodeKind::Component) {
                // Lower the subgraph first (Algorithm 1's recursion), then
                // splice it into this level.
                lowerGraph(*node->subgraph, om, dom);
                spliceComponent(graph, node->id);
                changed = true;
            } else if (node->kind == NodeKind::Constant) {
                continue; // constants are always representable
            } else {
                fatal("operation '" + node->op.str() +
                      "' is not supported by the accelerator for domain " +
                      (toString(dom).empty() ? "<none>" : toString(dom)) +
                      "; compilation fails for this target");
            }
        }
    }
    graph.validate();
    span.arg("nodes_after", graph.liveNodeCount());
}

} // namespace polymath::lower
