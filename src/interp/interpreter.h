/**
 * @file
 * Reference interpreter for srDFGs.
 *
 * Executes a graph functionally on dense Tensors, implementing the srDFG
 * semantics of Section III-B: a node fires once its operand edges are ready
 * (realized here as a topological schedule), group reductions fold their
 * guarded domains, and `state` edges persist across invocations — run() is
 * one invocation of the entry component, after which every state input is
 * rebound to its updated version, matching MPC-style iterative semantics.
 *
 * The interpreter is the stack's executable specification: every workload's
 * output is validated against a hand-written native implementation in the
 * test suite.
 */
#ifndef POLYMATH_INTERP_INTERPRETER_H_
#define POLYMATH_INTERP_INTERPRETER_H_

#include <map>
#include <string>

#include "core/tensor.h"
#include "srdfg/graph.h"

namespace polymath::interp {

/**
 * Scalar-operation counts observed during execution. The totals are
 * defined to match ir::Graph::scalarOpCount() exactly (map applications
 * excluding identity moves, reduction combines as tree ops, guard
 * evaluations), so tests can validate the analytic counting the
 * performance models rely on against a real run.
 */
struct ExecStats
{
    int64_t mapOps = 0;        ///< non-move map applications
    int64_t moveElems = 0;     ///< identity-move elements
    int64_t reduceCombines = 0; ///< combiner applications beyond the first
    int64_t guardEvals = 0;    ///< reduction-guard evaluations

    int64_t scalarOps() const
    {
        return mapOps + reduceCombines + guardEvals;
    }

    ExecStats &operator+=(const ExecStats &other)
    {
        mapOps += other.mapOps;
        moveElems += other.moveElems;
        reduceCombines += other.reduceCombines;
        guardEvals += other.guardEvals;
        return *this;
    }
};

/** Stateful interpreter over one srDFG. */
class Interpreter
{
  public:
    /** @p graph must outlive the interpreter. */
    explicit Interpreter(const ir::Graph &graph);

    /** Binds a graph input (or state) by PMLang name.
     *  @throws UserError on unknown name or shape/dtype mismatch. */
    void setInput(const std::string &name, Tensor tensor);

    /** True when every non-state input has been bound. */
    bool ready() const;

    /** Executes one invocation. State inputs carry over from the previous
     *  invocation (or their initial binding). */
    void run();

    /** Fetches an output (or updated state) of the last run() by name. */
    const Tensor &output(const std::string &name) const;

    /** Number of run() calls so far. */
    int64_t invocations() const { return invocations_; }

    /** Operation counts accumulated over every run(). */
    const ExecStats &stats() const { return stats_; }

  private:
    const ir::Graph &graph_;
    std::map<std::string, Tensor> bindings_; ///< by input name
    std::map<std::string, Tensor> results_;  ///< by output name
    int64_t invocations_ = 0;
    ExecStats stats_;
};

/** One-shot convenience: bind @p inputs, run once, return all outputs.
 *  When @p stats is non-null it receives the run's operation counts. */
std::map<std::string, Tensor> evaluate(
    const ir::Graph &graph, const std::map<std::string, Tensor> &inputs,
    ExecStats *stats = nullptr);

} // namespace polymath::interp

#endif // POLYMATH_INTERP_INTERPRETER_H_
