#include "interp/interpreter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "pmlang/builtins.h"
#include "srdfg/ops.h"
#include "srdfg/traversal.h"

namespace polymath::interp {

namespace {

using ir::Access;
using ir::Graph;
using ir::Node;
using ir::NodeKind;
using ir::ValueId;

/** Evaluates a custom-reduction body over (a, b). */
double
evalKernel(const lang::Expr &e, double a, double b,
           const lang::ReductionDecl &red)
{
    using lang::ExprKind;
    switch (e.kind) {
      case ExprKind::Number:
        return e.value;
      case ExprKind::Ref:
        return e.name == red.paramA ? a : b;
      case ExprKind::Unary: {
        const double x = evalKernel(*e.lhs, a, b, red);
        return lang::resolveUnaryOp(e.op) == lang::UnaryOp::Neg
                   ? -x
                   : (x == 0.0 ? 1.0 : 0.0);
      }
      case ExprKind::Binary: {
        const double l = evalKernel(*e.lhs, a, b, red);
        const double r = evalKernel(*e.rhs, a, b, red);
        return lang::applyBinaryOp(lang::resolveBinaryOp(e.op), l, r);
      }
      case ExprKind::Ternary:
        return evalKernel(*e.lhs, a, b, red) != 0.0
                   ? evalKernel(*e.rhs, a, b, red)
                   : evalKernel(*e.third, a, b, red);
      case ExprKind::Call: {
        if (e.args.size() == 1) {
            return lang::evalBuiltin1(e.name,
                                      evalKernel(*e.args[0], a, b, red));
        }
        return lang::evalBuiltin2(e.name,
                                  evalKernel(*e.args[0], a, b, red),
                                  evalKernel(*e.args[1], a, b, red));
      }
      case ExprKind::Reduce:
        break;
    }
    panic("bad kernel expression");
}

/** Advances a mixed-radix counter; returns false after the last point. */
bool
nextPoint(std::vector<int64_t> *idx, std::span<const int64_t> extents)
{
    for (size_t i = idx->size(); i-- > 0;) {
        if (++(*idx)[i] < extents[i])
            return true;
        (*idx)[i] = 0;
    }
    return false;
}

/** Executes one graph level given tensors for its input values. */
class GraphRunner
{
  public:
    explicit GraphRunner(const Graph &graph, ExecStats *stats = nullptr)
        : graph_(graph), stats_(stats)
    {
        env_.resize(graph.values.size());
        have_.assign(graph.values.size(), false);
    }

    void bindInput(ValueId v, Tensor t)
    {
        env_[static_cast<size_t>(v)] = std::move(t);
        have_[static_cast<size_t>(v)] = true;
    }

    void run();

    const Tensor &tensorOf(ValueId v) const
    {
        if (!have_[static_cast<size_t>(v)])
            panic("value " + std::to_string(v) + " not computed");
        return env_[static_cast<size_t>(v)];
    }

  private:
    void execConstant(const Node &node);
    void execMap(const Node &node);
    void execReduce(const Node &node);
    void execComponent(const Node &node);

    /** Reads one element through an access at a domain point. */
    double readReal(const Access &a, std::span<const int64_t> point) const;
    std::complex<double> readComplex(const Access &a,
                                     std::span<const int64_t> point) const;

    int64_t flatIndex(const Tensor &t, const Access &a,
                      std::span<const int64_t> point) const;

    void store(ValueId v, Tensor t)
    {
        env_[static_cast<size_t>(v)] = std::move(t);
        have_[static_cast<size_t>(v)] = true;
    }

    const Graph &graph_;
    ExecStats *stats_;
    std::vector<Tensor> env_;
    std::vector<bool> have_;
};

int64_t
GraphRunner::flatIndex(const Tensor &t, const Access &a,
                       std::span<const int64_t> point) const
{
    const auto cs = graph_.coords(a);
    if (cs.empty()) {
        if (t.numel() != 1)
            panic("whole-tensor access used as scalar");
        return 0;
    }
    int64_t flat = 0;
    const auto &dims = t.shape().dims();
    if (cs.size() != dims.size()) {
        panic("access arity " + std::to_string(cs.size()) +
              " vs tensor rank " + std::to_string(dims.size()) +
              " in graph '" + graph_.name + "'");
    }
    for (size_t d = 0; d < cs.size(); ++d) {
        const int64_t c = cs[d].eval(point);
        if (c < 0 || c >= dims[d]) {
            fatal("index " + std::to_string(c) + " out of bounds for dim " +
                  std::to_string(d) + " of " + t.shape().str() +
                  " while executing graph '" + graph_.name + "'");
        }
        flat = flat * dims[d] + c;
    }
    return flat;
}

double
GraphRunner::readReal(const Access &a, std::span<const int64_t> point) const
{
    if (a.isIndexOperand())
        return static_cast<double>(graph_.coords(a)[0].eval(point));
    const Tensor &t = tensorOf(a.value);
    if (t.isComplex())
        fatal("complex operand in a real context");
    return t.at(flatIndex(t, a, point));
}

std::complex<double>
GraphRunner::readComplex(const Access &a,
                         std::span<const int64_t> point) const
{
    if (a.isIndexOperand())
        return {static_cast<double>(graph_.coords(a)[0].eval(point)), 0.0};
    const Tensor &t = tensorOf(a.value);
    return t.asComplex(flatIndex(t, a, point));
}

void
GraphRunner::execConstant(const Node &node)
{
    const ValueId out_v = graph_.outs(node)[0].value;
    const auto &md = graph_.value(out_v).md;
    Tensor t(md.dtype == DType::Complex ? DType::Complex : md.dtype,
             Shape{});
    if (t.isComplex())
        t.cat(0) = {node.cval, 0.0};
    else
        t.at(0) = node.cval;
    store(out_v, std::move(t));
}

void
GraphRunner::execMap(const Node &node)
{
    const ir::ScalarOp op = ir::resolveScalarOp(node.op);
    const auto ins = graph_.ins(node);
    const Access out_access = graph_.outs(node)[0];
    const auto &out_md = graph_.value(out_access.value).md;
    Tensor out(out_md.dtype, out_md.shape);

    // Seed with the base version (partial writes) or zeros.
    if (node.base >= 0) {
        const Tensor &base = tensorOf(node.base);
        out = base.cast(out_md.dtype);
    }

    bool complex_path = out.isComplex();
    for (const auto &in : ins) {
        if (!in.isIndexOperand() && tensorOf(in.value).isComplex())
            complex_path = true;
    }

    std::vector<int64_t> extents;
    for (const auto &v : graph_.domainVars(node))
        extents.push_back(v.extent);
    std::vector<int64_t> point(extents.size(), 0);

    const bool int_out = out_md.dtype == DType::Int;
    const bool bin_out = out_md.dtype == DType::Bin;
    if (stats_) {
        if (node.op == ir::OpCode::Identity)
            stats_->moveElems += node.domainSize(graph_);
        else
            stats_->mapOps += node.domainSize(graph_);
    }
    do {
        const int64_t out_flat = flatIndex(out, out_access, point);
        if (complex_path) {
            std::complex<double> args[3];
            for (size_t i = 0; i < ins.size(); ++i)
                args[i] = readComplex(ins[i], point);
            const auto r = ir::applyScalarOpComplex(
                op, std::span<const std::complex<double>>(args, ins.size()));
            if (out.isComplex())
                out.cat(out_flat) = r;
            else
                out.at(out_flat) = r.real();
        } else {
            double args[3];
            for (size_t i = 0; i < ins.size(); ++i)
                args[i] = readReal(ins[i], point);
            double r = ir::applyScalarOp(
                op, std::span<const double>(args, ins.size()));
            if (int_out)
                r = std::trunc(r);
            else if (bin_out)
                r = r != 0.0 ? 1.0 : 0.0;
            out.at(out_flat) = r;
        }
    } while (nextPoint(&point, extents));

    store(out_access.value, std::move(out));
}

void
GraphRunner::execReduce(const Node &node)
{
    const auto ins = graph_.ins(node);
    const Access out_access = graph_.outs(node)[0];
    const auto &out_md = graph_.value(out_access.value).md;
    Tensor out(out_md.dtype, out_md.shape);

    const bool builtin = ir::isBuiltinReductionOp(node.op);
    const ir::OpCode rcode = node.op.code();
    const lang::ReductionDecl *custom = nullptr;
    if (!builtin) {
        auto it = graph_.context->reductions.find(node.op.str());
        if (it == graph_.context->reductions.end())
            panic("unknown reduction '" + node.op.str() + "'");
        custom = it->second;
    }

    const bool complex_in =
        !ins[0].isIndexOperand() && tensorOf(ins[0].value).isComplex();
    if (complex_in && rcode != ir::OpCode::Sum &&
        rcode != ir::OpCode::Prod) {
        fatal("only sum/prod reductions are defined on complex data");
    }

    std::vector<int64_t> extents;
    for (const auto &v : graph_.domainVars(node))
        extents.push_back(v.extent);
    std::vector<int64_t> point(extents.size(), 0);

    std::vector<bool> touched(static_cast<size_t>(out.numel()), false);
    std::vector<std::complex<double>> cacc;
    if (complex_in && out.isComplex())
        cacc.assign(static_cast<size_t>(out.numel()),
                    {rcode == ir::OpCode::Prod ? 1.0 : 0.0, 0.0});

    if (builtin && !complex_in) {
        const double init = lang::reductionIdentity(node.op.str());
        for (int64_t i = 0; i < out.numel(); ++i)
            out.at(i) = init;
    }

    do {
        if (node.hasPredicate) {
            if (stats_)
                ++stats_->guardEvals;
            if (node.predicate.eval(point) == 0)
                continue;
        }
        const int64_t out_flat = flatIndex(out, out_access, point);
        // Tree-equivalent combine count: ops beyond the first element.
        if (stats_ && touched[static_cast<size_t>(out_flat)])
            ++stats_->reduceCombines;
        if (complex_in) {
            const auto x = readComplex(ins[0], point);
            if (rcode == ir::OpCode::Sum)
                cacc[static_cast<size_t>(out_flat)] += x;
            else
                cacc[static_cast<size_t>(out_flat)] *= x;
            touched[static_cast<size_t>(out_flat)] = true;
            continue;
        }
        const double x = readReal(ins[0], point);
        double &acc = out.at(out_flat);
        if (builtin) {
            // The combiner dispatches on the resolved opcode once per
            // element — no string comparison in the reduction loop.
            switch (rcode) {
              case ir::OpCode::Sum: acc += x; break;
              case ir::OpCode::Prod: acc *= x; break;
              case ir::OpCode::Max: acc = acc > x ? acc : x; break;
              case ir::OpCode::Min: acc = acc < x ? acc : x; break;
              default: panic("unhandled builtin reduction");
            }
        } else if (!touched[static_cast<size_t>(out_flat)]) {
            acc = x;
        } else {
            acc = evalKernel(*custom->body, acc, x, *custom);
        }
        touched[static_cast<size_t>(out_flat)] = true;
    } while (nextPoint(&point, extents));

    if (complex_in) {
        for (int64_t i = 0; i < out.numel(); ++i) {
            out.cat(i) = touched[static_cast<size_t>(i)]
                             ? cacc[static_cast<size_t>(i)]
                             : std::complex<double>{0.0, 0.0};
        }
    } else {
        // Guarded-out (or empty custom) cells read as zero.
        for (int64_t i = 0; i < out.numel(); ++i) {
            if (!touched[static_cast<size_t>(i)] && !builtin)
                out.at(i) = 0.0;
            if (!touched[static_cast<size_t>(i)] && builtin &&
                (rcode == ir::OpCode::Max || rcode == ir::OpCode::Min)) {
                out.at(i) = 0.0;
            }
        }
        if (out_md.dtype == DType::Int) {
            for (int64_t i = 0; i < out.numel(); ++i)
                out.at(i) = std::trunc(out.at(i));
        }
    }

    store(out_access.value, std::move(out));
}

void
GraphRunner::execComponent(const Node &node)
{
    GraphRunner inner(*node.subgraph, stats_);
    const auto ins = graph_.ins(node);
    const auto outs = graph_.outs(node);
    for (size_t i = 0; i < ins.size(); ++i)
        inner.bindInput(node.subgraph->inputs[i], tensorOf(ins[i].value));
    inner.run();
    for (size_t i = 0; i < outs.size(); ++i)
        store(outs[i].value, inner.tensorOf(node.subgraph->outputs[i]));
}

void
GraphRunner::run()
{
    for (ir::NodeId id : ir::topoOrder(graph_)) {
        const Node &node = *graph_.node(id);
        switch (node.kind) {
          case NodeKind::Constant: execConstant(node); break;
          case NodeKind::Map: execMap(node); break;
          case NodeKind::Reduce: execReduce(node); break;
          case NodeKind::Component: execComponent(node); break;
        }
    }
}

} // namespace

Interpreter::Interpreter(const ir::Graph &graph) : graph_(graph) {}

void
Interpreter::setInput(const std::string &name, Tensor tensor)
{
    // The name index resolves the binding in O(1); inputs are created
    // before any internal value, so a named input is always the first
    // value carrying its name.
    const ValueId v = graph_.findValueByName(name);
    const bool is_input =
        v >= 0 && std::find(graph_.inputs.begin(), graph_.inputs.end(), v) !=
                      graph_.inputs.end();
    if (!is_input) {
        fatal("graph '" + graph_.name + "' has no input named '" + name +
              "'");
    }
    const auto &md = graph_.value(v).md;
    if (!(md.shape == tensor.shape())) {
        fatal("input '" + name + "' expects shape " + md.shape.str() +
              ", got " + tensor.shape().str());
    }
    bindings_[name] = std::move(tensor);
}

bool
Interpreter::ready() const
{
    for (ValueId v : graph_.inputs) {
        if (!bindings_.count(graph_.value(v).md.name))
            return false;
    }
    return true;
}

void
Interpreter::run()
{
    GraphRunner runner(graph_, &stats_);
    for (ValueId v : graph_.inputs) {
        const auto &md = graph_.value(v).md;
        auto it = bindings_.find(md.name);
        if (it == bindings_.end())
            fatal("input '" + md.name + "' is unbound");
        runner.bindInput(v, it->second);
    }
    runner.run();
    results_.clear();
    for (ValueId v : graph_.outputs) {
        const auto &md = graph_.value(v).md;
        results_[md.name] = runner.tensorOf(v);
        // State carry-over: updated versions feed the next invocation.
        if (md.kind == ir::EdgeKind::State)
            bindings_[md.name] = results_[md.name];
    }
    ++invocations_;
}

const Tensor &
Interpreter::output(const std::string &name) const
{
    auto it = results_.find(name);
    if (it == results_.end())
        fatal("no output named '" + name + "' (did run() happen?)");
    return it->second;
}

std::map<std::string, Tensor>
evaluate(const ir::Graph &graph, const std::map<std::string, Tensor> &inputs,
         ExecStats *stats)
{
    Interpreter interp(graph);
    for (const auto &[name, tensor] : inputs)
        interp.setInput(name, tensor);
    interp.run();
    if (stats)
        *stats = interp.stats();
    std::map<std::string, Tensor> out;
    for (ValueId v : graph.outputs)
        out[graph.value(v).md.name] = interp.output(graph.value(v).md.name);
    return out;
}

} // namespace polymath::interp
