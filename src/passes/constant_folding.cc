#include <span>

#include "passes/passes.h"
#include "passes/rewrite.h"
#include "srdfg/ops.h"

namespace polymath::pass {

namespace {

using ir::Node;
using ir::NodeKind;

/** Folds scalar Map nodes whose operands are all compile-time constants. */
class ConstantFolding : public Pass
{
  public:
    std::string name() const override { return "constant-folding"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        for (Node &node : graph.nodePool()) {
            if (!node.live() || node.kind != NodeKind::Map)
                continue;
            if (!graph.domainVars(node).empty() || node.base >= 0)
                continue;
            // Only genuine scalars fold; a domain-free scatter store (one
            // element of a tensor) must stay a Map.
            const auto outs = graph.outs(node);
            if (outs[0].hasCoords() ||
                !graph.value(outs[0].value).md.shape.isScalar()) {
                continue;
            }
            if (graph.value(outs[0].value).md.dtype == DType::Complex)
                continue;
            double args[3];
            bool all_const = true;
            const auto ins = graph.ins(node);
            for (size_t i = 0; i < ins.size(); ++i) {
                const auto &in = ins[i];
                if (in.isIndexOperand()) {
                    const auto cs = graph.coords(in);
                    if (!cs[0].isConst()) {
                        all_const = false;
                        break;
                    }
                    args[i] = static_cast<double>(cs[0].eval({}));
                    continue;
                }
                const auto c = scalarConstOf(graph, in.value);
                if (!c) {
                    all_const = false;
                    break;
                }
                args[i] = *c;
            }
            if (!all_const)
                continue;
            const double result = ir::applyScalarOp(
                ir::resolveScalarOp(node.op),
                std::span<const double>(args, ins.size()));
            node.kind = NodeKind::Constant;
            node.op = ir::OpCode::Const;
            node.cval = result;
            graph.setInputs(node, {});
            graph.outsMut(node)[0].coords = {};
            changed = true;
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createConstantFolding()
{
    return std::make_unique<ConstantFolding>();
}

} // namespace polymath::pass
