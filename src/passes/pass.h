/**
 * @file
 * The modular pass framework of Section IV-B: target-independent passes
 * take an srDFG and produce a transformed srDFG; a PassManager applies
 * pipelines of passes and records per-pass instrumentation.
 */
#ifndef POLYMATH_PASSES_PASS_H_
#define POLYMATH_PASSES_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "srdfg/graph.h"

namespace polymath::pass {

/** Base class for srDFG-to-srDFG transformations. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name for reports. */
    virtual std::string name() const = 0;

    /** Applies the pass to @p graph (all recursion levels).
     *  @return true when anything changed. */
    bool run(ir::Graph &graph);

  protected:
    /** Transforms one recursion level; the framework recurses into
     *  component subgraphs before calling this (bottom-up). */
    virtual bool runOnLevel(ir::Graph &graph) = 0;
};

/** Outcome of one pass application. */
struct PassResult
{
    std::string name;
    bool changed = false;
    int64_t micros = 0;
};

/** Applies a pipeline of passes in order. */
class PassManager
{
  public:
    /** Appends a pass to the pipeline. */
    void add(std::unique_ptr<Pass> pass);

    /** Runs the pipeline once, validating the graph after each pass that
     *  reports a change (unchanged passes skip validation; validation time
     *  lands in the `pass.validate.micros` histogram).
     *  @return per-pass results, in order. */
    std::vector<PassResult> run(ir::Graph &graph) const;

    /** Runs the pipeline repeatedly until no pass reports a change
     *  (at most @p max_rounds). */
    std::vector<PassResult> runToFixpoint(ir::Graph &graph,
                                          int max_rounds = 8) const;

    size_t size() const { return passes_.size(); }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** The default optimization pipeline: constant folding, simplification,
 *  CSE, algebraic combination, dead-node elimination. */
PassManager standardPipeline();

} // namespace polymath::pass

#endif // POLYMATH_PASSES_PASS_H_
