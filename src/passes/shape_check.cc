#include "passes/passes.h"

namespace polymath::pass {

namespace {

using ir::Node;
using ir::NodeKind;

/** Structural shape verification; never mutates the graph. */
class ShapeCheck : public Pass
{
  public:
    std::string name() const override { return "shape-check"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        graph.validate();
        for (const auto &node : graph.nodes) {
            if (!node)
                continue;
            if (node->kind != NodeKind::Map &&
                node->kind != NodeKind::Reduce) {
                continue;
            }
            // When the output scatter is the identity over the free axes,
            // the output shape must equal the free extents.
            const auto &out = node->outs[0];
            std::vector<int64_t> free_extents;
            std::vector<int> free_slots;
            for (size_t i = 0; i < node->domainVars.size(); ++i) {
                if (!node->domainVars[i].reduced) {
                    free_extents.push_back(node->domainVars[i].extent);
                    free_slots.push_back(static_cast<int>(i));
                }
            }
            bool identity = out.coords.size() == free_extents.size();
            for (size_t i = 0; identity && i < out.coords.size(); ++i)
                identity = out.coords[i].isIdentityVar(free_slots[i]);
            if (!identity)
                continue;
            const auto &shape = graph.value(out.value).md.shape;
            if (node->base >= 0)
                continue; // partial writes inherit the base shape
            if (!(shape == Shape(free_extents))) {
                panic("node '" + node->op.str() + "' in graph '" + graph.name +
                      "' writes shape " + Shape(free_extents).str() +
                      " into value of shape " + shape.str());
            }
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Pass>
createShapeCheck()
{
    return std::make_unique<ShapeCheck>();
}

} // namespace polymath::pass
