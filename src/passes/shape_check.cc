#include "passes/passes.h"

namespace polymath::pass {

namespace {

using ir::Node;
using ir::NodeKind;

/** Structural shape verification; never mutates the graph. */
class ShapeCheck : public Pass
{
  public:
    std::string name() const override { return "shape-check"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        graph.validate();
        for (const ir::Node &node : graph.nodePool()) {
            if (!node.live())
                continue;
            if (node.kind != NodeKind::Map && node.kind != NodeKind::Reduce)
                continue;
            // When the output scatter is the identity over the free axes,
            // the output shape must equal the free extents.
            const auto &out = graph.outs(node)[0];
            const auto out_cs = graph.coords(out);
            std::vector<int64_t> free_extents;
            std::vector<int> free_slots;
            const auto dvars = graph.domainVars(node);
            for (size_t i = 0; i < dvars.size(); ++i) {
                if (!dvars[i].reduced) {
                    free_extents.push_back(dvars[i].extent);
                    free_slots.push_back(static_cast<int>(i));
                }
            }
            bool identity = out_cs.size() == free_extents.size();
            for (size_t i = 0; identity && i < out_cs.size(); ++i)
                identity = out_cs[i].isIdentityVar(free_slots[i]);
            if (!identity)
                continue;
            const auto &shape = graph.value(out.value).md.shape;
            if (node.base >= 0)
                continue; // partial writes inherit the base shape
            if (!(shape == Shape(free_extents))) {
                panic("node '" + node.op.str() + "' in graph '" + graph.name +
                      "' writes shape " + Shape(free_extents).str() +
                      " into value of shape " + shape.str());
            }
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Pass>
createShapeCheck()
{
    return std::make_unique<ShapeCheck>();
}

} // namespace polymath::pass
