/**
 * @file
 * Factories for the built-in srDFG passes.
 */
#ifndef POLYMATH_PASSES_PASSES_H_
#define POLYMATH_PASSES_PASSES_H_

#include <memory>

#include "passes/pass.h"

namespace polymath::pass {

/** Folds Map nodes over all-constant scalar operands into Constants. */
std::unique_ptr<Pass> createConstantFolding();

/** Algebraic identities: x*1, x+0, x-0, x*0, x/1, select on a constant
 *  condition, pow(x,1). Rewrites to identity moves or constants. */
std::unique_ptr<Pass> createSimplify();

/** Hash-based common-subexpression elimination over Constants and
 *  unnamed Map/Reduce intermediates. */
std::unique_ptr<Pass> createCse();

/** Removes nodes whose results are never consumed, to fixpoint. */
std::unique_ptr<Pass> createDeadNodeElimination();

/** Checks that every value's recorded shape matches what its producer's
 *  iteration domain implies; changes nothing. */
std::unique_ptr<Pass> createShapeCheck();

/**
 * Gather elision: consumers of pure copy/gather moves read the source
 * directly through composed address arithmetic, eliminating the move
 * (what a hand-tuned kernel does). Kept out of the standard pipeline so
 * the Fig. 9 overhead measurement reflects PolyMath's emitted moves; the
 * ablation bench quantifies its effect.
 */
std::unique_ptr<Pass> createIdentityElision();

/**
 * The paper's cross-granularity example (Section IV-B): when the outputs
 * of two matrix-vector products are added — whether the products live at
 * this level or inside component subgraphs such as `mvmul` — fuse them
 * into a single product over concatenated operands.
 */
std::unique_ptr<Pass> createAlgebraicCombination();

} // namespace polymath::pass

#endif // POLYMATH_PASSES_PASSES_H_
