#include "passes/passes.h"

namespace polymath::pass {

namespace {

/** Removes nodes none of whose outputs reach a graph output. */
class DeadNodeElimination : public Pass
{
  public:
    std::string name() const override { return "dce"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        // Backward reachability from boundary outputs (dense bitmap —
        // value ids are small and contiguous).
        std::vector<char> live_values(graph.values.size(), 0);
        std::vector<ir::ValueId> work(graph.outputs.begin(),
                                      graph.outputs.end());
        while (!work.empty()) {
            const ir::ValueId v = work.back();
            work.pop_back();
            if (v < 0 || live_values[static_cast<size_t>(v)])
                continue;
            live_values[static_cast<size_t>(v)] = 1;
            const auto producer = graph.value(v).producer;
            if (producer < 0)
                continue;
            const auto *node = graph.node(producer);
            if (!node)
                continue;
            for (const auto &in : graph.ins(*node)) {
                if (!in.isIndexOperand())
                    work.push_back(in.value);
            }
            work.push_back(node->base);
            // All outputs of a live node stay live (components).
            for (const auto &out : graph.outs(*node))
                work.push_back(out.value);
        }

        bool changed = false;
        for (ir::Node &node : graph.nodePool()) {
            if (!node.live())
                continue;
            bool live = false;
            for (const auto &out : graph.outs(node))
                live = live || live_values[static_cast<size_t>(out.value)];
            if (!live) {
                graph.eraseNode(node.id);
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createDeadNodeElimination()
{
    return std::make_unique<DeadNodeElimination>();
}

} // namespace polymath::pass
