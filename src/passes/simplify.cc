#include "passes/passes.h"
#include "passes/rewrite.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::Node;
using ir::NodeKind;
using ir::OpCode;

/** Rewrites @p node into an identity move of @p kept. */
void
toIdentity(ir::Graph &graph, Node *node, Access kept)
{
    node->op = OpCode::Identity;
    graph.setInputs(*node, {kept});
}

/** Rewrites the node @p id into a broadcast of constant @p value. */
void
toConstantBroadcast(ir::Graph &graph, ir::NodeId id, double value)
{
    Node *node = graph.node(id);
    const auto dtype = graph.value(graph.outs(*node)[0].value).md.dtype;
    const auto cv = emitConstant(graph, value, dtype);
    node = graph.node(id); // emitConstant may relocate the node pool
    toIdentity(graph, node, Access{cv, {}});
}

/** Algebraic identities on Map nodes. */
class Simplify : public Pass
{
  public:
    std::string name() const override { return "simplify"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        // Snapshot the count once; the loop only rewrites nodes in place
        // (emitConstant appends, but appended constants need no visit).
        const size_t node_count = graph.nodeCount();
        for (size_t i = 0; i < node_count; ++i) {
            const auto id = static_cast<ir::NodeId>(i);
            Node *node = graph.node(id);
            if (!node || node->kind != NodeKind::Map)
                continue;
            auto const_of = [&](size_t k) -> std::optional<double> {
                const Access in = graph.ins(*node)[k];
                if (in.isIndexOperand()) {
                    const auto cs = graph.coords(in);
                    if (!cs[0].isConst())
                        return std::nullopt;
                    return static_cast<double>(cs[0].eval({}));
                }
                return scalarConstOf(graph, in.value);
            };
            if (node->op == OpCode::Add || node->op == OpCode::Sub) {
                const auto rhs = const_of(1);
                if (rhs && *rhs == 0.0) {
                    toIdentity(graph, node, graph.ins(*node)[0]);
                    changed = true;
                    continue;
                }
                if (node->op == OpCode::Add) {
                    const auto lhs = const_of(0);
                    if (lhs && *lhs == 0.0) {
                        toIdentity(graph, node, graph.ins(*node)[1]);
                        changed = true;
                        continue;
                    }
                }
            } else if (node->op == OpCode::Mul) {
                const auto lhs = const_of(0);
                const auto rhs = const_of(1);
                if ((lhs && *lhs == 1.0)) {
                    toIdentity(graph, node, graph.ins(*node)[1]);
                    changed = true;
                } else if (rhs && *rhs == 1.0) {
                    toIdentity(graph, node, graph.ins(*node)[0]);
                    changed = true;
                } else if ((lhs && *lhs == 0.0) || (rhs && *rhs == 0.0)) {
                    toConstantBroadcast(graph, id, 0.0);
                    changed = true;
                }
            } else if (node->op == OpCode::Div || node->op == OpCode::Pow) {
                const auto rhs = const_of(1);
                if (rhs && *rhs == 1.0) {
                    toIdentity(graph, node, graph.ins(*node)[0]);
                    changed = true;
                }
            } else if (node->op == OpCode::Select) {
                const auto cond = const_of(0);
                if (cond) {
                    toIdentity(graph, node,
                               *cond != 0.0 ? graph.ins(*node)[1]
                                            : graph.ins(*node)[2]);
                    changed = true;
                }
            } else if (node->op == OpCode::Neg) {
                // neg(neg(x)) -> identity(x)
                const Access in = graph.ins(*node)[0];
                if (!in.isIndexOperand()) {
                    const auto producer = graph.value(in.value).producer;
                    const Node *p =
                        producer >= 0 ? graph.node(producer) : nullptr;
                    const auto cs = graph.coords(in);
                    bool identity_read =
                        !cs.empty() || graph.domainVars(*node).empty();
                    for (size_t k = 0; k < cs.size(); ++k) {
                        identity_read = identity_read &&
                                        cs[k].isIdentityVar(
                                            static_cast<int>(k));
                    }
                    const bool inner_whole =
                        identity_read && p && p->kind == NodeKind::Map &&
                        p->op == OpCode::Neg &&
                        p->domainVarNames(graph) == node->domainVarNames(graph) &&
                        isAnonymousIntermediate(graph, in.value);
                    if (inner_whole) {
                        toIdentity(graph, node, graph.ins(*p)[0]);
                        changed = true;
                    }
                }
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createSimplify()
{
    return std::make_unique<Simplify>();
}

} // namespace polymath::pass
