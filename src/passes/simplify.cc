#include "passes/passes.h"
#include "passes/rewrite.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::Node;
using ir::NodeKind;
using ir::OpCode;

/** Rewrites @p node into an identity move of @p kept. */
void
toIdentity(ir::Graph &graph, Node *node, Access kept)
{
    node->op = OpCode::Identity;
    graph.setInputs(*node, {std::move(kept)});
}

/** Rewrites @p node into a broadcast of constant @p value. */
void
toConstantBroadcast(ir::Graph &graph, Node *node, double value)
{
    const auto cv =
        emitConstant(graph, value,
                     graph.value(node->outs[0].value).md.dtype);
    toIdentity(graph, node, Access{cv, {}});
}

/** Algebraic identities on Map nodes. */
class Simplify : public Pass
{
  public:
    std::string name() const override { return "simplify"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        // Index by value id once; the loop only rewrites nodes in place.
        const size_t node_count = graph.nodes.size();
        for (size_t i = 0; i < node_count; ++i) {
            Node *node = graph.nodes[i].get();
            if (!node || node->kind != NodeKind::Map)
                continue;
            auto const_of = [&](size_t k) -> std::optional<double> {
                const auto &in = node->ins[k];
                if (in.isIndexOperand()) {
                    if (!in.coords[0].isConst())
                        return std::nullopt;
                    return static_cast<double>(in.coords[0].eval({}));
                }
                return scalarConstOf(graph, in.value);
            };
            if (node->op == OpCode::Add || node->op == OpCode::Sub) {
                const auto rhs = const_of(1);
                if (rhs && *rhs == 0.0) {
                    toIdentity(graph, node, node->ins[0]);
                    changed = true;
                    continue;
                }
                if (node->op == OpCode::Add) {
                    const auto lhs = const_of(0);
                    if (lhs && *lhs == 0.0) {
                        toIdentity(graph, node, node->ins[1]);
                        changed = true;
                        continue;
                    }
                }
            } else if (node->op == OpCode::Mul) {
                const auto lhs = const_of(0);
                const auto rhs = const_of(1);
                if ((lhs && *lhs == 1.0)) {
                    toIdentity(graph, node, node->ins[1]);
                    changed = true;
                } else if (rhs && *rhs == 1.0) {
                    toIdentity(graph, node, node->ins[0]);
                    changed = true;
                } else if ((lhs && *lhs == 0.0) || (rhs && *rhs == 0.0)) {
                    toConstantBroadcast(graph, node, 0.0);
                    changed = true;
                }
            } else if (node->op == OpCode::Div || node->op == OpCode::Pow) {
                const auto rhs = const_of(1);
                if (rhs && *rhs == 1.0) {
                    toIdentity(graph, node, node->ins[0]);
                    changed = true;
                }
            } else if (node->op == OpCode::Select) {
                const auto cond = const_of(0);
                if (cond) {
                    toIdentity(graph, node,
                               *cond != 0.0 ? node->ins[1] : node->ins[2]);
                    changed = true;
                }
            } else if (node->op == OpCode::Neg) {
                // neg(neg(x)) -> identity(x)
                const auto &in = node->ins[0];
                if (!in.isIndexOperand()) {
                    const auto producer = graph.value(in.value).producer;
                    const Node *p =
                        producer >= 0 ? graph.node(producer) : nullptr;
                    bool identity_read =
                        !in.coords.empty() || node->domainVars.empty();
                    for (size_t k = 0; k < in.coords.size(); ++k) {
                        identity_read = identity_read &&
                                        in.coords[k].isIdentityVar(
                                            static_cast<int>(k));
                    }
                    const bool inner_whole =
                        identity_read && p && p->kind == NodeKind::Map &&
                        p->op == OpCode::Neg &&
                        p->domainVarNames() == node->domainVarNames() &&
                        isAnonymousIntermediate(graph, in.value);
                    if (inner_whole) {
                        Access a = p->ins[0];
                        toIdentity(graph, node, std::move(a));
                        changed = true;
                    }
                }
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createSimplify()
{
    return std::make_unique<Simplify>();
}

} // namespace polymath::pass
