#include <cstring>
#include <map>

#include "passes/passes.h"
#include "passes/rewrite.h"
#include "srdfg/traversal.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::Node;
using ir::NodeKind;

std::string
accessKey(const Access &a)
{
    std::string key = "v" + std::to_string(a.value);
    const std::vector<std::string> no_names;
    for (const auto &c : a.coords)
        key += "[" + c.str(no_names) + "]";
    return key;
}

std::string
nodeKey(const Node &node)
{
    std::string key = node.op + "|";
    for (const auto &v : node.domainVars) {
        key += std::to_string(v.extent);
        key += v.reduced ? "r" : "f";
        key += ",";
    }
    key += "|";
    for (const auto &in : node.ins)
        key += accessKey(in) + ";";
    key += "|b" + std::to_string(node.base);
    if (node.hasPredicate) {
        const std::vector<std::string> no_names;
        key += "|p" + node.predicate.str(no_names);
    }
    key += "|o";
    for (const auto &c : node.outs[0].coords) {
        const std::vector<std::string> no_names;
        key += "[" + c.str(no_names) + "]";
    }
    return key;
}

std::string
outShapeKey(const ir::Graph &graph, const Node &node)
{
    const auto &md = graph.value(node.outs[0].value).md;
    return md.shape.str() + toString(md.dtype);
}

/** Hash-based common-subexpression elimination at one level. */
class Cse : public Pass
{
  public:
    std::string name() const override { return "cse"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        std::map<std::string, ir::ValueId> seen;
        for (ir::NodeId id : ir::topoOrder(graph)) {
            Node *node = graph.node(id);
            std::string key;
            if (node->kind != NodeKind::Component && node->outs.empty()) {
                // Every value-producing node must have an output access;
                // keying on outs[0] below would be UB on a malformed
                // graph, so fail loudly instead.
                panic("cse: node '" + node->op + "' (id " +
                      std::to_string(node->id) + ") has no outputs");
            }
            if (node->kind == NodeKind::Constant) {
                char bits[sizeof(double)];
                std::memcpy(bits, &node->cval, sizeof(double));
                key = "const|" + std::string(bits, sizeof(double)) + "|" +
                      toString(graph.value(node->outs[0].value).md.dtype);
            } else if (node->kind == NodeKind::Map ||
                       node->kind == NodeKind::Reduce) {
                if (!isAnonymousIntermediate(graph, node->outs[0].value))
                    continue;
                key = (node->kind == NodeKind::Map ? "m|" : "r|") +
                      nodeKey(*node) + "|" + outShapeKey(graph, *node);
            } else {
                continue; // components are never merged
            }
            auto [it, inserted] = seen.emplace(key, node->outs[0].value);
            if (inserted)
                continue;
            if (it->second == node->outs[0].value)
                continue;
            if (node->kind == NodeKind::Constant &&
                !isAnonymousIntermediate(graph, node->outs[0].value)) {
                continue;
            }
            replaceUses(graph, node->outs[0].value, it->second);
            graph.eraseNode(node->id);
            changed = true;
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createCse()
{
    return std::make_unique<Cse>();
}

} // namespace polymath::pass
