#include <cstring>
#include <unordered_map>
#include <vector>

#include "passes/passes.h"
#include "passes/rewrite.h"
#include "srdfg/traversal.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::IndexExpr;
using ir::Node;
using ir::NodeKind;

/** Integer-tuple structural key of a node. Every field is appended with an
 *  unambiguous prefix encoding (tag + count + payload), so two nodes share
 *  a key iff they are structurally identical — no string rendering on the
 *  compile path's hottest pass. */
using NodeKey = std::vector<int64_t>;

void
encodeIndexExpr(const IndexExpr &e, NodeKey *key)
{
    key->push_back(static_cast<int64_t>(e.kind()));
    switch (e.kind()) {
      case IndexExpr::Kind::Const:
        key->push_back(e.constValue());
        break;
      case IndexExpr::Kind::Var:
        key->push_back(e.varSlot());
        break;
      default:
        key->push_back(static_cast<int64_t>(e.children().size()));
        for (const auto &c : e.children())
            encodeIndexExpr(c, key);
    }
}

void
encodeAccess(const ir::Graph &graph, const Access &a, NodeKey *key)
{
    key->push_back(a.value);
    const auto cs = graph.coords(a);
    key->push_back(static_cast<int64_t>(cs.size()));
    for (const auto &c : cs)
        encodeIndexExpr(c, key);
}

void
encodeNode(const ir::Graph &graph, const Node &node, NodeKey *key)
{
    key->push_back(node.kind == NodeKind::Map ? 1 : 2);
    key->push_back(static_cast<int64_t>(node.op.bits()));
    const auto dvars = graph.domainVars(node);
    key->push_back(static_cast<int64_t>(dvars.size()));
    for (const auto &v : dvars)
        key->push_back(v.extent * 2 + (v.reduced ? 1 : 0));
    const auto ins = graph.ins(node);
    key->push_back(static_cast<int64_t>(ins.size()));
    for (const auto &in : ins)
        encodeAccess(graph, in, key);
    key->push_back(node.base);
    key->push_back(node.hasPredicate ? 1 : 0);
    if (node.hasPredicate)
        encodeIndexExpr(node.predicate, key);
    const Access &out0 = graph.outs(node)[0];
    const auto out_cs = graph.coords(out0);
    key->push_back(static_cast<int64_t>(out_cs.size()));
    for (const auto &c : out_cs)
        encodeIndexExpr(c, key);
    const auto &md = graph.value(out0.value).md;
    key->push_back(static_cast<int64_t>(md.dtype));
    key->push_back(md.shape.rank());
    for (int64_t d : md.shape.dims())
        key->push_back(d);
}

struct NodeKeyHash
{
    size_t operator()(const NodeKey &key) const
    {
        // FNV-1a over the raw words.
        uint64_t h = 1469598103934665603ull;
        for (int64_t w : key) {
            h ^= static_cast<uint64_t>(w);
            h *= 1099511628211ull;
        }
        return static_cast<size_t>(h);
    }
};

/** Hash-based common-subexpression elimination at one level. */
class Cse : public Pass
{
  public:
    std::string name() const override { return "cse"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        std::unordered_map<NodeKey, ir::ValueId, NodeKeyHash> seen;
        NodeKey key;
        for (ir::NodeId id : ir::topoOrder(graph)) {
            Node *node = graph.node(id);
            const auto outs = graph.outs(*node);
            key.clear();
            if (node->kind != NodeKind::Component && outs.empty()) {
                // Every value-producing node must have an output access;
                // keying on outs[0] below would be UB on a malformed
                // graph, so fail loudly instead.
                panic("cse: node '" + node->op.str() + "' (id " +
                      std::to_string(node->id) + ") has no outputs");
            }
            if (node->kind == NodeKind::Constant) {
                key.push_back(0);
                int64_t bits;
                std::memcpy(&bits, &node->cval, sizeof(double));
                key.push_back(bits);
                key.push_back(static_cast<int64_t>(
                    graph.value(outs[0].value).md.dtype));
            } else if (node->kind == NodeKind::Map ||
                       node->kind == NodeKind::Reduce) {
                if (!isAnonymousIntermediate(graph, outs[0].value))
                    continue;
                encodeNode(graph, *node, &key);
            } else {
                continue; // components are never merged
            }
            auto it = seen.find(key);
            if (it == seen.end()) {
                seen.emplace(key, outs[0].value);
                continue;
            }
            if (it->second == outs[0].value)
                continue;
            if (node->kind == NodeKind::Constant &&
                !isAnonymousIntermediate(graph, outs[0].value)) {
                continue;
            }
            replaceUses(graph, outs[0].value, it->second);
            graph.eraseNode(node->id);
            changed = true;
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createCse()
{
    return std::make_unique<Cse>();
}

} // namespace polymath::pass
