/**
 * @file
 * Shared rewriting helpers for srDFG passes.
 */
#ifndef POLYMATH_PASSES_REWRITE_H_
#define POLYMATH_PASSES_REWRITE_H_

#include <optional>

#include "srdfg/graph.h"

namespace polymath::pass {

/** Redirects every use (ins/base) of @p from to @p to at this level.
 *  Shapes of the two values must match. @return number of uses rewritten.*/
int replaceUses(ir::Graph &graph, ir::ValueId from, ir::ValueId to);

/** The constant a value carries, when produced by a Constant node. */
std::optional<double> scalarConstOf(const ir::Graph &graph, ir::ValueId v);

/** Emits a Constant node producing @p value; returns its output value. */
ir::ValueId emitConstant(ir::Graph &graph, double value, DType dtype);

/** True when @p v may be merged away: internal, unnamed, not a graph
 *  output. */
bool isAnonymousIntermediate(const ir::Graph &graph, ir::ValueId v);

} // namespace polymath::pass

#endif // POLYMATH_PASSES_REWRITE_H_
