#include "passes/passes.h"
#include "passes/rewrite.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::IndexExpr;
using ir::Node;
using ir::NodeKind;

/** True when @p node is a pure gather: an identity Map with no base whose
 *  output scatter is the identity over its whole (complete) value. */
bool
isPureGather(const ir::Graph &graph, const Node &node)
{
    const auto ins = graph.ins(node);
    if (node.kind != NodeKind::Map || node.op != ir::OpCode::Identity ||
        node.base >= 0 || ins.size() != 1 || ins[0].isIndexOperand()) {
        return false;
    }
    const Access &out = graph.outs(node)[0];
    const auto out_cs = graph.coords(out);
    const auto dvars = graph.domainVars(node);
    if (out_cs.size() != dvars.size())
        return false;
    for (size_t i = 0; i < out_cs.size(); ++i) {
        if (!out_cs[i].isIdentityVar(static_cast<int>(i)))
            return false;
    }
    // The write must cover the output value completely.
    const auto &shape = graph.value(out.value).md.shape;
    if (shape.rank() != static_cast<int>(dvars.size()))
        return false;
    for (int d = 0; d < shape.rank(); ++d) {
        if (shape.dim(d) != dvars[static_cast<size_t>(d)].extent)
            return false;
    }
    return true;
}

/**
 * Gather elision: a consumer reading a pure-gather's output through
 * coordinates C sees exactly gather.in composed with C, so the
 * intermediate copy can be bypassed (the move disappears once DCE runs).
 * This is the optimization an expert performs by folding address
 * arithmetic into the consuming kernel; it is *not* part of the standard
 * pipeline because the paper's Fig. 9 overhead story depends on PolyMath
 * emitting those moves — it quantifies what the pass buys (see the
 * ablation bench).
 */
class IdentityElision : public Pass
{
  public:
    std::string name() const override { return "identity-elision"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        for (Node &node : graph.nodePool()) {
            if (!node.live() || node.kind == NodeKind::Constant)
                continue;
            const size_t nins = graph.ins(node).size();
            for (size_t slot = 0; slot < nins; ++slot) {
                const Access in = graph.ins(node)[slot];
                if (in.isIndexOperand() || !in.hasCoords())
                    continue;
                const auto producer = graph.value(in.value).producer;
                if (producer < 0)
                    continue;
                const Node *gather = graph.node(producer);
                if (!gather || gather == &node ||
                    !isPureGather(graph, *gather)) {
                    continue;
                }
                // Compose: replace this access with the gather's source
                // access, its coords evaluated at our coords. Build the
                // composed coords fully before interning them (makeAccess
                // grows the coord arena, invalidating the spans read here).
                const Access gin = graph.ins(*gather)[0];
                std::vector<IndexExpr> composed_coords;
                const auto in_cs = graph.coords(in);
                for (const auto &c : graph.coords(gin))
                    composed_coords.push_back(c.substituted(in_cs));
                graph.setInput(node, slot,
                               graph.makeAccess(gin.value, composed_coords));
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createIdentityElision()
{
    return std::make_unique<IdentityElision>();
}

} // namespace polymath::pass
