#include "passes/passes.h"
#include "passes/rewrite.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::IndexExpr;
using ir::Node;
using ir::NodeKind;

/** True when @p node is a pure gather: an identity Map with no base whose
 *  output scatter is the identity over its whole (complete) value. */
bool
isPureGather(const ir::Graph &graph, const Node &node)
{
    if (node.kind != NodeKind::Map || node.op != ir::OpCode::Identity ||
        node.base >= 0 || node.ins.size() != 1 ||
        node.ins[0].isIndexOperand()) {
        return false;
    }
    const auto &out = node.outs[0];
    if (out.coords.size() != node.domainVars.size())
        return false;
    for (size_t i = 0; i < out.coords.size(); ++i) {
        if (!out.coords[i].isIdentityVar(static_cast<int>(i)))
            return false;
    }
    // The write must cover the output value completely.
    const auto &shape = graph.value(out.value).md.shape;
    if (shape.rank() != static_cast<int>(node.domainVars.size()))
        return false;
    for (int d = 0; d < shape.rank(); ++d) {
        if (shape.dim(d) != node.domainVars[static_cast<size_t>(d)].extent)
            return false;
    }
    return true;
}

/**
 * Gather elision: a consumer reading a pure-gather's output through
 * coordinates C sees exactly gather.in composed with C, so the
 * intermediate copy can be bypassed (the move disappears once DCE runs).
 * This is the optimization an expert performs by folding address
 * arithmetic into the consuming kernel; it is *not* part of the standard
 * pipeline because the paper's Fig. 9 overhead story depends on PolyMath
 * emitting those moves — it quantifies what the pass buys (see the
 * ablation bench).
 */
class IdentityElision : public Pass
{
  public:
    std::string name() const override { return "identity-elision"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        for (auto &node : graph.nodes) {
            if (!node || node->kind == NodeKind::Constant)
                continue;
            for (size_t slot = 0; slot < node->ins.size(); ++slot) {
                const Access &in = node->ins[slot];
                if (in.isIndexOperand() || in.coords.empty())
                    continue;
                const auto producer = graph.value(in.value).producer;
                if (producer < 0)
                    continue;
                const Node *gather = graph.node(producer);
                if (!gather || gather == node.get() ||
                    !isPureGather(graph, *gather)) {
                    continue;
                }
                // Compose: replace this access with the gather's source
                // access, its coords evaluated at our coords.
                Access composed;
                composed.value = gather->ins[0].value;
                for (const auto &c : gather->ins[0].coords)
                    composed.coords.push_back(c.substituted(in.coords));
                graph.setInput(*node, slot, std::move(composed));
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createIdentityElision()
{
    return std::make_unique<IdentityElision>();
}

} // namespace polymath::pass
