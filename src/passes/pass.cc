#include "passes/pass.h"

#include <chrono>

#include "passes/passes.h"

namespace polymath::pass {

bool
Pass::run(ir::Graph &graph)
{
    bool changed = false;
    // Bottom-up: transform component subgraphs first so this level sees
    // their simplified form.
    for (auto &node : graph.nodes) {
        if (node && node->subgraph)
            changed |= run(*node->subgraph);
    }
    changed |= runOnLevel(graph);
    return changed;
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

std::vector<PassResult>
PassManager::run(ir::Graph &graph) const
{
    std::vector<PassResult> results;
    for (const auto &pass : passes_) {
        const auto start = std::chrono::steady_clock::now();
        PassResult r;
        r.name = pass->name();
        r.changed = pass->run(graph);
        r.micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        if (r.changed)
            graph.validate();
        results.push_back(std::move(r));
    }
    return results;
}

std::vector<PassResult>
PassManager::runToFixpoint(ir::Graph &graph, int max_rounds) const
{
    std::vector<PassResult> all;
    for (int round = 0; round < max_rounds; ++round) {
        auto results = run(graph);
        bool changed = false;
        for (const auto &r : results)
            changed |= r.changed;
        all.insert(all.end(), std::make_move_iterator(results.begin()),
                   std::make_move_iterator(results.end()));
        if (!changed)
            break;
    }
    return all;
}

PassManager
standardPipeline()
{
    PassManager pm;
    pm.add(createConstantFolding());
    pm.add(createSimplify());
    pm.add(createCse());
    pm.add(createAlgebraicCombination());
    pm.add(createDeadNodeElimination());
    return pm;
}

} // namespace polymath::pass
