#include "passes/pass.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "passes/passes.h"

namespace polymath::pass {

bool
Pass::run(ir::Graph &graph)
{
    bool changed = false;
    // Bottom-up: transform component subgraphs first so this level sees
    // their simplified form.
    for (ir::Node &node : graph.nodePool()) {
        if (node.live() && node.subgraph)
            changed |= run(*node.subgraph);
    }
    changed |= runOnLevel(graph);
    return changed;
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

std::vector<PassResult>
PassManager::run(ir::Graph &graph) const
{
    auto &recorder = obs::TraceRecorder::global();
    auto &metrics = obs::MetricsRegistry::global();
    std::vector<PassResult> results;
    for (const auto &pass : passes_) {
        PassResult r;
        r.name = pass->name();
        // One timing measurement serves both the PassResult and the
        // trace span, so the two views can never disagree.
        const int64_t span_ts = recorder.enabled() ? recorder.nowMicros()
                                                   : 0;
        const auto start = std::chrono::steady_clock::now();
        r.changed = pass->run(graph);
        r.micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        if (recorder.enabled()) {
            recorder.completeReal(
                "pass:" + r.name, "pass", span_ts, r.micros,
                {obs::TraceArg::num("changed", r.changed ? 1 : 0)});
        }
        metrics.histogram("pass." + r.name + ".micros").observe(r.micros);
        if (r.changed)
            metrics.counter("pass." + r.name + ".changed").add(1);
        results.push_back(std::move(r));
    }
    // One validation per pipeline invocation covers every pass that
    // changed the graph; it is skipped entirely when the run was a
    // no-op (the graph is bit-identical), and its cost is attributed
    // separately from the passes proper.
    const bool any_changed =
        std::any_of(results.begin(), results.end(),
                    [](const PassResult &r) { return r.changed; });
    if (any_changed) {
        const auto vstart = std::chrono::steady_clock::now();
        graph.validate();
        const int64_t vmicros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - vstart)
                .count();
        metrics.histogram("pass.validate.micros").observe(vmicros);
    }
    return results;
}

std::vector<PassResult>
PassManager::runToFixpoint(ir::Graph &graph, int max_rounds) const
{
    obs::Span span("pass:fixpoint", "pass");
    std::vector<PassResult> all;
    int rounds = 0;
    for (int round = 0; round < max_rounds; ++round) {
        auto results = run(graph);
        ++rounds;
        bool changed = false;
        for (const auto &r : results)
            changed |= r.changed;
        all.insert(all.end(), std::make_move_iterator(results.begin()),
                   std::make_move_iterator(results.end()));
        if (!changed)
            break;
    }
    span.arg("rounds", rounds);
    return all;
}

PassManager
standardPipeline()
{
    PassManager pm;
    pm.add(createConstantFolding());
    pm.add(createSimplify());
    pm.add(createCse());
    pm.add(createAlgebraicCombination());
    pm.add(createDeadNodeElimination());
    return pm;
}

} // namespace polymath::pass
