#include "passes/rewrite.h"

#include <algorithm>

namespace polymath::pass {

using ir::Graph;
using ir::NodeKind;
using ir::ValueId;

int
replaceUses(Graph &graph, ValueId from, ValueId to)
{
    if (!(graph.value(from).md.shape == graph.value(to).md.shape))
        panic("replaceUses(): shape mismatch");
    // Walk only the nodes the use cache says reference `from` (one entry
    // per referencing access; the copy tolerates in-place rewiring).
    const std::vector<ir::NodeId> users(graph.uses(from));
    int count = 0;
    for (ir::NodeId id : users) {
        ir::Node *node = graph.node(id);
        if (!node)
            continue;
        for (size_t i = 0; i < node->ins.size(); ++i) {
            if (node->ins[i].value == from) {
                graph.setInput(*node, i,
                               ir::Access{to, node->ins[i].coords});
                ++count;
            }
        }
        if (node->base == from) {
            graph.setBase(*node, to);
            ++count;
        }
    }
    return count;
}

std::optional<double>
scalarConstOf(const Graph &graph, ValueId v)
{
    if (v < 0)
        return std::nullopt;
    const auto producer = graph.value(v).producer;
    if (producer < 0)
        return std::nullopt;
    const auto *node = graph.node(producer);
    if (!node || node->kind != NodeKind::Constant)
        return std::nullopt;
    return node->cval;
}

ValueId
emitConstant(Graph &graph, double value, DType dtype)
{
    auto &node = graph.addNode(NodeKind::Constant, ir::OpCode::Const);
    node.cval = value;
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    const ValueId v = graph.addValue(md, node.id);
    node.outs.push_back(ir::Access{v, {}});
    return v;
}

bool
isAnonymousIntermediate(const Graph &graph, ValueId v)
{
    const auto &md = graph.value(v).md;
    if (md.kind != ir::EdgeKind::Internal)
        return false;
    return std::find(graph.outputs.begin(), graph.outputs.end(), v) ==
           graph.outputs.end();
}

} // namespace polymath::pass
