#include "passes/rewrite.h"

#include <algorithm>

namespace polymath::pass {

using ir::Graph;
using ir::NodeKind;
using ir::ValueId;

int
replaceUses(Graph &graph, ValueId from, ValueId to)
{
    if (!(graph.value(from).md.shape == graph.value(to).md.shape))
        panic("replaceUses(): shape mismatch");
    int count = 0;
    for (auto &node : graph.nodes) {
        if (!node)
            continue;
        for (auto &in : node->ins) {
            if (in.value == from) {
                in.value = to;
                ++count;
            }
        }
        if (node->base == from) {
            node->base = to;
            ++count;
        }
    }
    return count;
}

std::optional<double>
scalarConstOf(const Graph &graph, ValueId v)
{
    if (v < 0)
        return std::nullopt;
    const auto producer = graph.value(v).producer;
    if (producer < 0)
        return std::nullopt;
    const auto *node = graph.node(producer);
    if (!node || node->kind != NodeKind::Constant)
        return std::nullopt;
    return node->cval;
}

ValueId
emitConstant(Graph &graph, double value, DType dtype)
{
    auto &node = graph.addNode(NodeKind::Constant, "const");
    node.cval = value;
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    const ValueId v = graph.addValue(md, node.id);
    node.outs.push_back(ir::Access{v, {}});
    return v;
}

bool
isAnonymousIntermediate(const Graph &graph, ValueId v)
{
    const auto &md = graph.value(v).md;
    if (md.kind != ir::EdgeKind::Internal)
        return false;
    return std::find(graph.outputs.begin(), graph.outputs.end(), v) ==
           graph.outputs.end();
}

} // namespace polymath::pass
