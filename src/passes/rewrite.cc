#include "passes/rewrite.h"

#include <algorithm>

namespace polymath::pass {

using ir::Graph;
using ir::NodeKind;
using ir::ValueId;

int
replaceUses(Graph &graph, ValueId from, ValueId to)
{
    if (!(graph.value(from).md.shape == graph.value(to).md.shape))
        panic("replaceUses(): shape mismatch");
    // Walk only the nodes the use cache says reference `from` (one entry
    // per referencing access; the copy tolerates in-place rewiring).
    const auto cached = graph.uses(from);
    const std::vector<ir::NodeId> users(cached.begin(), cached.end());
    int count = 0;
    for (ir::NodeId id : users) {
        ir::Node *node = graph.node(id);
        if (!node)
            continue;
        const auto ins = graph.ins(*node);
        for (size_t i = 0; i < ins.size(); ++i) {
            if (ins[i].value == from) {
                // Same graph: the coord span carries over verbatim.
                graph.setInput(*node, i, ir::Access{to, ins[i].coords});
                ++count;
            }
        }
        if (node->base == from) {
            graph.setBase(*node, to);
            ++count;
        }
    }
    return count;
}

std::optional<double>
scalarConstOf(const Graph &graph, ValueId v)
{
    if (v < 0)
        return std::nullopt;
    const auto producer = graph.value(v).producer;
    if (producer < 0)
        return std::nullopt;
    const auto *node = graph.node(producer);
    if (!node || node->kind != NodeKind::Constant)
        return std::nullopt;
    return node->cval;
}

ValueId
emitConstant(Graph &graph, double value, DType dtype)
{
    ir::Node &node =
        *graph.node(graph.addNode(NodeKind::Constant, ir::OpCode::Const));
    node.cval = value;
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    const ValueId v = graph.addValue(md, node.id);
    graph.addOutput(node, ir::Access{v, {}});
    return v;
}

bool
isAnonymousIntermediate(const Graph &graph, ValueId v)
{
    const auto &md = graph.value(v).md;
    if (md.kind != ir::EdgeKind::Internal)
        return false;
    return std::find(graph.outputs.begin(), graph.outputs.end(), v) ==
           graph.outputs.end();
}

} // namespace polymath::pass
