#include <optional>

#include "passes/passes.h"
#include "passes/rewrite.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::Graph;
using ir::IndexExpr;
using ir::IndexVar;
using ir::Node;
using ir::NodeKind;
using ir::ValueId;

/** A recognized y[j] = sum_k(A[j][k] * x[k]) computation. */
struct MatvecMatch
{
    ValueId matrix = -1; ///< [m][n], at the level of the add node
    ValueId vector = -1; ///< [n]
    int64_t m = 0;
    int64_t n = 0;
};

bool
isIdentityCoords(const std::vector<IndexExpr> &coords)
{
    for (size_t i = 0; i < coords.size(); ++i) {
        if (!coords[i].isIdentityVar(static_cast<int>(i)))
            return false;
    }
    return true;
}

/** Matches the sum-of-products chain producing @p v at this level. */
std::optional<MatvecMatch>
matchAtLevel(const Graph &g, ValueId v, int depth = 0)
{
    if (depth > 8)
        return std::nullopt;
    const auto producer = g.value(v).producer;
    if (producer < 0)
        return std::nullopt;
    const Node *node = g.node(producer);
    if (!node)
        return std::nullopt;

    // Peel a whole-tensor identity move.
    if (node->kind == NodeKind::Map && node->op == ir::OpCode::Identity &&
        node->base < 0 && node->domainVars.size() == 1 &&
        !node->ins[0].isIndexOperand() &&
        isIdentityCoords(node->ins[0].coords) &&
        isIdentityCoords(node->outs[0].coords) &&
        node->ins[0].coords.size() == 1) {
        return matchAtLevel(g, node->ins[0].value, depth + 1);
    }

    // The component case: a matvec packaged as e.g. `mvmul`, matched inside
    // its subgraph with operands mapped back through the boundary — the
    // cross-granularity fusion the paper describes.
    if (node->kind == NodeKind::Component) {
        const Graph &sub = *node->subgraph;
        for (size_t oi = 0; oi < node->outs.size(); ++oi) {
            if (node->outs[oi].value != v)
                continue;
            auto inner = matchAtLevel(sub, sub.outputs[oi], depth + 1);
            if (!inner)
                return std::nullopt;
            auto outer_of = [&](ValueId sv) -> ValueId {
                for (size_t ii = 0; ii < sub.inputs.size(); ++ii) {
                    if (sub.inputs[ii] == sv)
                        return node->ins[ii].value;
                }
                return -1;
            };
            MatvecMatch out = *inner;
            out.matrix = outer_of(inner->matrix);
            out.vector = outer_of(inner->vector);
            if (out.matrix < 0 || out.vector < 0)
                return std::nullopt;
            return out;
        }
        return std::nullopt;
    }

    // Core pattern: Reduce(sum over k) of Map(mul) of A[j][k], x[k].
    if (node->kind != NodeKind::Reduce || node->op != ir::OpCode::Sum ||
        node->hasPredicate || node->domainVars.size() != 2 ||
        node->domainVars[0].reduced || !node->domainVars[1].reduced ||
        !isIdentityCoords(node->ins[0].coords) ||
        node->ins[0].isIndexOperand()) {
        return std::nullopt;
    }
    const auto mul_producer = g.value(node->ins[0].value).producer;
    const Node *mul = mul_producer >= 0 ? g.node(mul_producer) : nullptr;
    if (!mul || mul->kind != NodeKind::Map || mul->op != ir::OpCode::Mul ||
        mul->domainVars.size() != 2 ||
        mul->domainVars[0].extent != node->domainVars[0].extent ||
        mul->domainVars[1].extent != node->domainVars[1].extent) {
        return std::nullopt;
    }
    // One operand must be A[j][k], the other x[k] (either order).
    auto classify = [&](const Access &a, MatvecMatch *out) {
        if (a.isIndexOperand())
            return false;
        if (a.coords.size() == 2 && a.coords[0].isIdentityVar(0) &&
            a.coords[1].isIdentityVar(1)) {
            out->matrix = a.value;
            return true;
        }
        if (a.coords.size() == 1 && a.coords[0].isIdentityVar(1)) {
            out->vector = a.value;
            return true;
        }
        return false;
    };
    MatvecMatch out;
    if (!classify(mul->ins[0], &out) || !classify(mul->ins[1], &out))
        return std::nullopt;
    if (out.matrix < 0 || out.vector < 0)
        return std::nullopt;
    out.m = node->domainVars[0].extent;
    out.n = node->domainVars[1].extent;
    return out;
}

/** Emits concat of two rank-1 values into a fresh [n1+n2] value. */
ValueId
concatVectors(Graph &g, ValueId a, int64_t n1, ValueId b, int64_t n2,
              DType dtype)
{
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    md.shape = Shape{n1 + n2};

    Node &s1 = g.addNode(NodeKind::Map, ir::OpCode::Identity);
    s1.domainVars.push_back(IndexVar{"k", n1, false});
    g.addInput(s1, Access{a, {IndexExpr::var(0)}});
    const ValueId v1 = g.addValue(md, s1.id);
    s1.outs.push_back(Access{v1, {IndexExpr::var(0)}});

    Node &s2 = g.addNode(NodeKind::Map, ir::OpCode::Identity);
    s2.domainVars.push_back(IndexVar{"k", n2, false});
    g.addInput(s2, Access{b, {IndexExpr::var(0)}});
    g.setBase(s2, v1);
    const ValueId v2 = g.addValue(md, s2.id);
    s2.outs.push_back(
        Access{v2, {IndexExpr::binary(IndexExpr::Kind::Add,
                                      IndexExpr::var(0),
                                      IndexExpr::constant(n1))}});
    return v2;
}

/** Emits column-concat of two [m][n*] values into [m][n1+n2]. */
ValueId
concatMatrices(Graph &g, ValueId a, ValueId b, int64_t m, int64_t n1,
               int64_t n2, DType dtype)
{
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    md.shape = Shape{m, n1 + n2};

    Node &s1 = g.addNode(NodeKind::Map, ir::OpCode::Identity);
    s1.domainVars.push_back(IndexVar{"j", m, false});
    s1.domainVars.push_back(IndexVar{"k", n1, false});
    g.addInput(s1, Access{a, {IndexExpr::var(0), IndexExpr::var(1)}});
    const ValueId v1 = g.addValue(md, s1.id);
    s1.outs.push_back(Access{v1, {IndexExpr::var(0), IndexExpr::var(1)}});

    Node &s2 = g.addNode(NodeKind::Map, ir::OpCode::Identity);
    s2.domainVars.push_back(IndexVar{"j", m, false});
    s2.domainVars.push_back(IndexVar{"k", n2, false});
    g.addInput(s2, Access{b, {IndexExpr::var(0), IndexExpr::var(1)}});
    g.setBase(s2, v1);
    const ValueId v2 = g.addValue(md, s2.id);
    s2.outs.push_back(
        Access{v2, {IndexExpr::var(0),
                    IndexExpr::binary(IndexExpr::Kind::Add,
                                      IndexExpr::var(1),
                                      IndexExpr::constant(n1))}});
    return v2;
}

/** Fuses add-of-two-matvecs into one matvec over concatenated operands. */
class AlgebraicCombination : public Pass
{
  public:
    std::string name() const override { return "algebraic-combination"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        const size_t node_count = graph.nodes.size();
        for (size_t i = 0; i < node_count; ++i) {
            Node *add = graph.nodes[i].get();
            if (!add || add->kind != NodeKind::Map || add->op != ir::OpCode::Add ||
                add->base >= 0 || add->domainVars.size() != 1 ||
                !isIdentityCoords(add->outs[0].coords) ||
                add->outs[0].coords.size() != 1) {
                continue;
            }
            if (add->ins[0].isIndexOperand() ||
                add->ins[1].isIndexOperand() ||
                !isIdentityCoords(add->ins[0].coords) ||
                !isIdentityCoords(add->ins[1].coords) ||
                add->ins[0].coords.size() != 1 ||
                add->ins[1].coords.size() != 1) {
                continue;
            }
            const auto lhs = matchAtLevel(graph, add->ins[0].value);
            const auto rhs = matchAtLevel(graph, add->ins[1].value);
            if (!lhs || !rhs || lhs->m != rhs->m ||
                lhs->m != add->domainVars[0].extent) {
                continue;
            }
            const DType dtype = graph.value(add->outs[0].value).md.dtype;

            const ValueId xy = concatVectors(graph, lhs->vector, lhs->n,
                                             rhs->vector, rhs->n, dtype);
            const ValueId ab =
                concatMatrices(graph, lhs->matrix, rhs->matrix, lhs->m,
                               lhs->n, rhs->n, dtype);

            const int64_t n = lhs->n + rhs->n;
            Node &mul = graph.addNode(NodeKind::Map, ir::OpCode::Mul);
            mul.domainVars.push_back(IndexVar{"j", lhs->m, false});
            mul.domainVars.push_back(IndexVar{"k", n, false});
            graph.addInput(
                mul, Access{ab, {IndexExpr::var(0), IndexExpr::var(1)}});
            graph.addInput(mul, Access{xy, {IndexExpr::var(1)}});
            ir::EdgeMeta pmd;
            pmd.dtype = dtype;
            pmd.kind = ir::EdgeKind::Internal;
            pmd.shape = Shape{lhs->m, n};
            const ValueId prod = graph.addValue(pmd, mul.id);
            mul.outs.push_back(
                Access{prod, {IndexExpr::var(0), IndexExpr::var(1)}});

            Node &red = graph.addNode(NodeKind::Reduce, ir::OpCode::Sum);
            red.domainVars.push_back(IndexVar{"j", lhs->m, false});
            red.domainVars.push_back(IndexVar{"k", n, true});
            graph.addInput(
                red, Access{prod, {IndexExpr::var(0), IndexExpr::var(1)}});

            // The fused reduce takes over the add's output value, so names
            // and boundary roles are preserved; the stale chains die in DCE.
            const ValueId out = add->outs[0].value;
            red.outs.push_back(Access{out, {IndexExpr::var(0)}});
            graph.value(out).producer = red.id;
            graph.eraseNode(add->id);

            // addNode may have reallocated; refresh nothing beyond `add`.
            changed = true;
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createAlgebraicCombination()
{
    return std::make_unique<AlgebraicCombination>();
}

} // namespace polymath::pass
