#include <optional>

#include "passes/passes.h"
#include "passes/rewrite.h"

namespace polymath::pass {

namespace {

using ir::Access;
using ir::Graph;
using ir::IndexExpr;
using ir::IndexVar;
using ir::Node;
using ir::NodeKind;
using ir::ValueId;

/** A recognized y[j] = sum_k(A[j][k] * x[k]) computation. */
struct MatvecMatch
{
    ValueId matrix = -1; ///< [m][n], at the level of the add node
    ValueId vector = -1; ///< [n]
    int64_t m = 0;
    int64_t n = 0;
};

bool
isIdentityCoords(std::span<const IndexExpr> coords)
{
    for (size_t i = 0; i < coords.size(); ++i) {
        if (!coords[i].isIdentityVar(static_cast<int>(i)))
            return false;
    }
    return true;
}

/** Matches the sum-of-products chain producing @p v at this level. */
std::optional<MatvecMatch>
matchAtLevel(const Graph &g, ValueId v, int depth = 0)
{
    if (depth > 8)
        return std::nullopt;
    const auto producer = g.value(v).producer;
    if (producer < 0)
        return std::nullopt;
    const Node *node = g.node(producer);
    if (!node)
        return std::nullopt;
    const auto ins = g.ins(*node);
    const auto outs = g.outs(*node);
    const auto dvars = g.domainVars(*node);

    // Peel a whole-tensor identity move.
    if (node->kind == NodeKind::Map && node->op == ir::OpCode::Identity &&
        node->base < 0 && dvars.size() == 1 && !ins[0].isIndexOperand() &&
        isIdentityCoords(g.coords(ins[0])) &&
        isIdentityCoords(g.coords(outs[0])) &&
        g.coords(ins[0]).size() == 1) {
        return matchAtLevel(g, ins[0].value, depth + 1);
    }

    // The component case: a matvec packaged as e.g. `mvmul`, matched inside
    // its subgraph with operands mapped back through the boundary — the
    // cross-granularity fusion the paper describes.
    if (node->kind == NodeKind::Component) {
        const Graph &sub = *node->subgraph;
        for (size_t oi = 0; oi < outs.size(); ++oi) {
            if (outs[oi].value != v)
                continue;
            auto inner = matchAtLevel(sub, sub.outputs[oi], depth + 1);
            if (!inner)
                return std::nullopt;
            auto outer_of = [&](ValueId sv) -> ValueId {
                for (size_t ii = 0; ii < sub.inputs.size(); ++ii) {
                    if (sub.inputs[ii] == sv)
                        return ins[ii].value;
                }
                return -1;
            };
            MatvecMatch out = *inner;
            out.matrix = outer_of(inner->matrix);
            out.vector = outer_of(inner->vector);
            if (out.matrix < 0 || out.vector < 0)
                return std::nullopt;
            return out;
        }
        return std::nullopt;
    }

    // Core pattern: Reduce(sum over k) of Map(mul) of A[j][k], x[k].
    if (node->kind != NodeKind::Reduce || node->op != ir::OpCode::Sum ||
        node->hasPredicate || dvars.size() != 2 || dvars[0].reduced ||
        !dvars[1].reduced || !isIdentityCoords(g.coords(ins[0])) ||
        ins[0].isIndexOperand()) {
        return std::nullopt;
    }
    const auto mul_producer = g.value(ins[0].value).producer;
    const Node *mul = mul_producer >= 0 ? g.node(mul_producer) : nullptr;
    if (!mul || mul->kind != NodeKind::Map || mul->op != ir::OpCode::Mul)
        return std::nullopt;
    const auto mul_dvars = g.domainVars(*mul);
    if (mul_dvars.size() != 2 || mul_dvars[0].extent != dvars[0].extent ||
        mul_dvars[1].extent != dvars[1].extent) {
        return std::nullopt;
    }
    // One operand must be A[j][k], the other x[k] (either order).
    auto classify = [&](const Access &a, MatvecMatch *out) {
        if (a.isIndexOperand())
            return false;
        const auto cs = g.coords(a);
        if (cs.size() == 2 && cs[0].isIdentityVar(0) &&
            cs[1].isIdentityVar(1)) {
            out->matrix = a.value;
            return true;
        }
        if (cs.size() == 1 && cs[0].isIdentityVar(1)) {
            out->vector = a.value;
            return true;
        }
        return false;
    };
    MatvecMatch out;
    const auto mul_ins = g.ins(*mul);
    if (!classify(mul_ins[0], &out) || !classify(mul_ins[1], &out))
        return std::nullopt;
    if (out.matrix < 0 || out.vector < 0)
        return std::nullopt;
    out.m = dvars[0].extent;
    out.n = dvars[1].extent;
    return out;
}

/** Emits concat of two rank-1 values into a fresh [n1+n2] value. */
ValueId
concatVectors(Graph &g, ValueId a, int64_t n1, ValueId b, int64_t n2,
              DType dtype)
{
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    md.shape = Shape{n1 + n2};
    const std::vector<IndexExpr> ident{IndexExpr::var(0)};

    Node &s1 = *g.node(g.addNode(NodeKind::Map, ir::OpCode::Identity));
    g.addDomainVar(s1, IndexVar{"k", n1, false});
    g.addInput(s1, g.makeAccess(a, ident));
    const ValueId v1 = g.addValue(md, s1.id);
    g.addOutput(s1, g.makeAccess(v1, ident));

    Node &s2 = *g.node(g.addNode(NodeKind::Map, ir::OpCode::Identity));
    g.addDomainVar(s2, IndexVar{"k", n2, false});
    g.addInput(s2, g.makeAccess(b, ident));
    g.setBase(s2, v1);
    const ValueId v2 = g.addValue(md, s2.id);
    const std::vector<IndexExpr> shifted{IndexExpr::binary(
        IndexExpr::Kind::Add, IndexExpr::var(0), IndexExpr::constant(n1))};
    g.addOutput(s2, g.makeAccess(v2, shifted));
    return v2;
}

/** Emits column-concat of two [m][n*] values into [m][n1+n2]. */
ValueId
concatMatrices(Graph &g, ValueId a, ValueId b, int64_t m, int64_t n1,
               int64_t n2, DType dtype)
{
    ir::EdgeMeta md;
    md.dtype = dtype;
    md.kind = ir::EdgeKind::Internal;
    md.shape = Shape{m, n1 + n2};
    const std::vector<IndexExpr> ident{IndexExpr::var(0), IndexExpr::var(1)};

    Node &s1 = *g.node(g.addNode(NodeKind::Map, ir::OpCode::Identity));
    g.addDomainVar(s1, IndexVar{"j", m, false});
    g.addDomainVar(s1, IndexVar{"k", n1, false});
    g.addInput(s1, g.makeAccess(a, ident));
    const ValueId v1 = g.addValue(md, s1.id);
    g.addOutput(s1, g.makeAccess(v1, ident));

    Node &s2 = *g.node(g.addNode(NodeKind::Map, ir::OpCode::Identity));
    g.addDomainVar(s2, IndexVar{"j", m, false});
    g.addDomainVar(s2, IndexVar{"k", n2, false});
    g.addInput(s2, g.makeAccess(b, ident));
    g.setBase(s2, v1);
    const ValueId v2 = g.addValue(md, s2.id);
    const std::vector<IndexExpr> shifted{
        IndexExpr::var(0),
        IndexExpr::binary(IndexExpr::Kind::Add, IndexExpr::var(1),
                          IndexExpr::constant(n1))};
    g.addOutput(s2, g.makeAccess(v2, shifted));
    return v2;
}

/** Fuses add-of-two-matvecs into one matvec over concatenated operands. */
class AlgebraicCombination : public Pass
{
  public:
    std::string name() const override { return "algebraic-combination"; }

  protected:
    bool runOnLevel(ir::Graph &graph) override
    {
        bool changed = false;
        const size_t node_count = graph.nodeCount();
        for (size_t i = 0; i < node_count; ++i) {
            const auto add_id = static_cast<ir::NodeId>(i);
            const Node *add = graph.node(add_id);
            if (!add || add->kind != NodeKind::Map ||
                add->op != ir::OpCode::Add || add->base >= 0 ||
                graph.domainVars(*add).size() != 1) {
                continue;
            }
            const auto aouts = graph.outs(*add);
            const auto out_cs = graph.coords(aouts[0]);
            if (!isIdentityCoords(out_cs) || out_cs.size() != 1)
                continue;
            const auto ains = graph.ins(*add);
            if (ains[0].isIndexOperand() || ains[1].isIndexOperand() ||
                !isIdentityCoords(graph.coords(ains[0])) ||
                !isIdentityCoords(graph.coords(ains[1])) ||
                graph.coords(ains[0]).size() != 1 ||
                graph.coords(ains[1]).size() != 1) {
                continue;
            }
            const auto lhs = matchAtLevel(graph, ains[0].value);
            const auto rhs = matchAtLevel(graph, ains[1].value);
            if (!lhs || !rhs || lhs->m != rhs->m ||
                lhs->m != graph.domainVars(*add)[0].extent) {
                continue;
            }
            // Capture everything needed from `add` before emitting: the
            // concat/mul/reduce emissions below grow the node pool and the
            // arenas, invalidating `add` and every span read above.
            const ValueId out = aouts[0].value;
            const DType dtype = graph.value(out).md.dtype;

            const ValueId xy = concatVectors(graph, lhs->vector, lhs->n,
                                             rhs->vector, rhs->n, dtype);
            const ValueId ab =
                concatMatrices(graph, lhs->matrix, rhs->matrix, lhs->m,
                               lhs->n, rhs->n, dtype);

            const int64_t n = lhs->n + rhs->n;
            const std::vector<IndexExpr> jk{IndexExpr::var(0),
                                            IndexExpr::var(1)};
            Node &mul =
                *graph.node(graph.addNode(NodeKind::Map, ir::OpCode::Mul));
            graph.addDomainVar(mul, IndexVar{"j", lhs->m, false});
            graph.addDomainVar(mul, IndexVar{"k", n, false});
            graph.addInput(mul, graph.makeAccess(ab, jk));
            graph.addInput(mul, graph.makeAccess(
                                    xy, std::vector<IndexExpr>{
                                            IndexExpr::var(1)}));
            ir::EdgeMeta pmd;
            pmd.dtype = dtype;
            pmd.kind = ir::EdgeKind::Internal;
            pmd.shape = Shape{lhs->m, n};
            const ValueId prod = graph.addValue(pmd, mul.id);
            graph.addOutput(mul, graph.makeAccess(prod, jk));

            Node &red =
                *graph.node(graph.addNode(NodeKind::Reduce, ir::OpCode::Sum));
            graph.addDomainVar(red, IndexVar{"j", lhs->m, false});
            graph.addDomainVar(red, IndexVar{"k", n, true});
            graph.addInput(red, graph.makeAccess(prod, jk));

            // The fused reduce takes over the add's output value, so names
            // and boundary roles are preserved; the stale chains die in DCE.
            graph.addOutput(red, graph.makeAccess(
                                     out, std::vector<IndexExpr>{
                                              IndexExpr::var(0)}));
            graph.value(out).producer = red.id;
            graph.eraseNode(add_id);
            changed = true;
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<Pass>
createAlgebraicCombination()
{
    return std::make_unique<AlgebraicCombination>();
}

} // namespace polymath::pass
