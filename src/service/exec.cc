#include "service/exec.h"

#include <fstream>
#include <optional>
#include <set>

#include "core/diagnostics.h"
#include "core/error.h"
#include "core/json.h"
#include "core/strings.h"
#include "dse/artifact.h"
#include "dse/dse.h"
#include "lower/lower.h"
#include "passes/pass.h"
#include "pmlang/parser.h"
#include "soc/soc.h"
#include "srdfg/builder.h"
#include "targets/common/cost_ledger.h"
#include "targets/deco/chain_mapper.h"
#include "targets/tabla/scheduler.h"

namespace polymath::service {

lang::Domain
domainFromKeyword(const std::string &word)
{
    if (word == "ALL") return lang::Domain::None; // per-statement tags
    if (word == "RBT") return lang::Domain::RBT;
    if (word == "GA") return lang::Domain::GA;
    if (word == "DSP") return lang::Domain::DSP;
    if (word == "DA") return lang::Domain::DA;
    if (word == "DL") return lang::Domain::DL;
    fatal("unknown domain '" + word +
          "' (expected RBT|GA|DSP|DA|DL or ALL)");
}

bool
preflightDiagnostics(const std::string &source, std::string &err)
{
    DiagnosticEngine diag;
    lang::parseWithRecovery(source, diag);
    if (!diag.empty())
        err += diag.str();
    if (diag.hasErrors()) {
        err += format("pmc: %zu error(s)\n", diag.errorCount());
        return true;
    }
    return false;
}

ExecResult
runRequest(const Request &req, lower::CompileCache &cache)
{
    if (!isWorkVerb(req.verb))
        panic("runRequest called with non-work verb '" +
              std::string(toString(req.verb)) + "'");
    if (req.target.empty())
        fatal("a " + std::string(toString(req.verb)) +
              " request needs a target domain (RBT|GA|DSP|DA|DL|ALL)");
    const bool simulate =
        req.verb == Verb::Simulate || req.verb == Verb::Profile;
    const bool profile = req.verb == Verb::Profile;
    const bool want_doc = profile || req.profileDoc;

    const auto domain = domainFromKeyword(req.target);
    const auto registry = target::standardRegistry();
    ir::BuildOptions build;
    build.entry = req.entry;
    build.paramConsts = req.params;

    // Compile through the shared cache. The key covers (source, build
    // options, domain, registry) but not the pass pipeline, so the
    // optimize flag is salted in to keep optimized and unoptimized
    // programs distinct.
    const std::string key = lower::compileCacheKey(
        req.source, build, domain, registry,
        req.optimize ? "optimize=1" : "optimize=0");
    ExecResult result;
    bool compiled_here = false;
    result.program = cache.getOrCompile(key, [&] {
        compiled_here = true;
        auto fresh = ir::compileToSrdfg(req.source, build);
        if (req.optimize)
            pass::standardPipeline().runToFixpoint(*fresh);
        lower::lowerGraph(*fresh, registry.supportedOpsByDomain(),
                          domain);
        return lower::compileProgram(*fresh, registry, domain);
    });
    result.cacheHit = !compiled_here;
    const lower::CompiledProgram &compiled = *result.program;

    if (req.verb == Verb::Dse) {
        // Design-space search over every searchable accelerator among
        // the compiled partitions (docs/DSE.md). Single-threaded per
        // request: the server's fairness unit is the request, and the
        // search is deterministic at any fan-out anyway.
        dse::SearchOptions opts;
        opts.space = dse::ConfigSpace::kindFromString(req.dseSpace);
        opts.driver =
            dse::SearchOptions::driverFromString(req.dseSearch);
        opts.samples = req.dseSamples;
        opts.rounds = req.dseRounds;
        opts.seed = req.dseSeed;
        opts.jobs = 1;
        target::WorkloadProfile workload;
        workload.invocations = req.invocations;
        std::vector<dse::WorkloadStudy> studies;
        std::set<std::string> swept;
        for (const auto &partition : compiled.partitions) {
            if (!dse::ConfigSpace::searchable(partition.accel) ||
                !swept.insert(partition.accel).second)
                continue;
            studies.push_back(dse::explore(
                req.file, partition.accel,
                dse::partitionsFor(compiled, partition.accel), workload,
                opts));
        }
        if (studies.empty())
            fatal("dse: the compiled program has no partitions on a "
                  "searchable accelerator");
        for (const auto &study : studies)
            result.out += dse::frontTable(study) + "\n";
        result.out += "best configs:\n" + dse::bestTable(studies);
        return result;
    }

    result.out += compiled.str();

    if (req.schedule) {
        for (const auto &partition : compiled.partitions) {
            if (partition.accel == "TABLA") {
                result.out += "TABLA PE schedule:\n" +
                              target::listSchedule(partition, {}).str();
            } else if (partition.accel == "DECO") {
                result.out += "DECO chain mapping:\n" +
                              target::mapChains(partition, {}).str();
            }
        }
    }
    if (!simulate)
        return result;

    if (want_doc) {
        // Sticky process-wide switch (one relaxed-atomic branch when
        // off); reports stay byte-identical either way, so leaving it
        // on after the first profile request is safe for neighbors.
        target::setProfilingEnabled(true);
    }
    soc::SocRuntime runtime;
    if (req.faultRate != 0) { // negative => validation error
        soc::FaultConfig faults;
        faults.seed = req.faultSeed;
        faults.accelUnavailableRate = req.faultRate / 5.0;
        faults.dmaFailureRate = req.faultRate;
        faults.watchdogRate = req.faultRate / 2.0;
        runtime.setFaultModel(soc::FaultModel(faults));
    }
    target::WorkloadProfile workload;
    workload.invocations = req.invocations;
    const auto sim = runtime.execute(compiled, workload);
    result.out += format("simulated: %s\n", sim.total.str().c_str());
    if (req.faultRate > 0) {
        result.out += format("reliability: %s\n",
                             sim.reliability.str().c_str());
    }
    if (profile) {
        for (size_t pi = 0; pi < sim.partitions.size(); ++pi) {
            result.out += format("partition %zu ", pi);
            result.out += target::profileTable(
                sim.partitions[pi], static_cast<int>(req.profileTop));
        }
    }
    if (want_doc) {
        std::string doc = "{\"schema\":\"polymath-profile/1\"";
        doc += ",\"file\":" + json::quote(req.file);
        doc += ",\"partitions\":[";
        for (size_t pi = 0; pi < sim.partitions.size(); ++pi) {
            if (pi)
                doc += ",";
            doc += target::profileJson(sim.partitions[pi]);
        }
        doc += "],\"total\":" + target::profileJson(sim.total) + "}\n";
        result.profileJson = std::move(doc);
    }
    return result;
}

namespace {

/** Distinct accelerators of @p program in partition order, joined with
 *  commas — the "backend mix" a request record reports. */
std::string
backendMix(const lower::CompiledProgram &program)
{
    std::string mix;
    std::set<std::string> seen;
    for (const auto &partition : program.partitions) {
        if (!seen.insert(partition.accel).second)
            continue;
        if (!mix.empty())
            mix += ",";
        mix += partition.accel;
    }
    return mix;
}

} // namespace

Response
runRequestGuarded(const Request &req, lower::CompileCache &cache,
                  RequestTelemetry *telemetry)
{
    Response resp;
    resp.id = req.id;
    // Request-scoped telemetry: the trace sink is installed for the
    // whole guarded body, so preflight, compile, and simulate spans of
    // *this* request (and no other) are captured even when the global
    // recorder is off. The nullptr path touches nothing.
    obs::RequestTrace rtrace(telemetry != nullptr ? telemetry->requestId
                                                  : std::string());
    std::optional<obs::RequestTraceScope> scope;
    if (telemetry != nullptr && telemetry->captureTrace)
        scope.emplace(rtrace);
    const int64_t begin_us =
        telemetry != nullptr
            ? obs::TraceRecorder::global().nowMicros()
            : 0;
    // Pre-flight syntax check with statement-level error recovery so
    // one response surfaces *every* syntax error, not just the first —
    // exactly the local pmc behavior.
    if (preflightDiagnostics(req.source, resp.error)) {
        resp.ok = false;
        resp.code = 1;
        if (telemetry != nullptr) {
            telemetry->executeMicros =
                obs::TraceRecorder::global().nowMicros() - begin_us;
            telemetry->trace = rtrace.take();
        }
        return resp;
    }
    try {
        ExecResult result = runRequest(req, cache);
        if (telemetry != nullptr) {
            if (result.program)
                telemetry->backends = backendMix(*result.program);
            (result.cacheHit ? telemetry->cacheHits
                             : telemetry->cacheMisses) += 1;
        }
        resp.output = std::move(result.out);
        resp.profileJson = std::move(result.profileJson);
        resp.cacheHit = result.cacheHit;
        resp.ok = true;
        resp.code = 0;
    } catch (const UserError &e) {
        const Diagnostic diag{Severity::Error, e.message(), e.loc()};
        resp.error += format("pmc: %s\n", diag.str().c_str());
        resp.ok = false;
        resp.code = 1;
    } catch (const InternalError &e) {
        resp.error += format("pmc: %s\n", e.what());
        resp.ok = false;
        resp.code = 2;
    } catch (const std::exception &e) {
        resp.error += format("pmc: internal error: %s\n", e.what());
        resp.ok = false;
        resp.code = 2;
    }
    if (telemetry != nullptr) {
        telemetry->executeMicros =
            obs::TraceRecorder::global().nowMicros() - begin_us;
        telemetry->trace = rtrace.take();
    }
    return resp;
}

} // namespace polymath::service
