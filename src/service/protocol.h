/**
 * @file
 * JSON-line wire protocol of the pmcd compile service (docs/SERVICE.md).
 *
 * One request object per '\n'-terminated line in, one response object
 * per line out. Requests carry a verb:
 *
 *   - "compile"  — compile the source for a target domain and return
 *                  the rendered accelerator program(s);
 *   - "simulate" — compile + simulate on the SoC ("simulated: ..."
 *                  lines appended, faults honored);
 *   - "profile"  — simulate with cost ledgers; the response adds the
 *                  hotspot tables and a polymath-profile/1 document;
 *   - "dse"      — compile + design-space search over the target
 *                  accelerator's machine configs (docs/DSE.md); the
 *                  response carries the Pareto-front tables;
 *   - "stats"    — server/cache counters (answered inline, not queued);
 *   - "dump"     — the flight recorder's retained request records as
 *                  JSON (answered inline; needs --flight-entries > 0);
 *   - "metrics"  — live metrics snapshot: Prometheus text exposition in
 *                  `output`, the JSON snapshot in `metricsJson`
 *                  (answered inline; `metricsDelta` scrapes since-last);
 *   - "shutdown" — drain all queued + in-flight work, answer, exit.
 *
 * Responses carry the exact bytes the local pmc CLI would print for the
 * same flags (`output` = stdout, `error` = stderr), which is what makes
 * `pmc --connect` byte-identical to local execution. Responses to one
 * connection may arrive out of request order (work is scheduled fairly
 * across all clients); match them by `id`.
 *
 * When the server runs with telemetry (--flight-entries > 0) every
 * response also carries `requestId`: the server-assigned (or
 * client-supplied `requestId`) attribution id that tags the request's
 * spans, flight-recorder record, and per-request counters. With
 * telemetry off the field is absent and the wire bytes are identical
 * to the pre-telemetry protocol.
 */
#ifndef POLYMATH_SERVICE_PROTOCOL_H_
#define POLYMATH_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>

namespace polymath::service {

/** Request verbs. */
enum class Verb
{
    Compile,
    Simulate,
    Profile,
    Dse,
    Stats,
    Dump,
    Metrics,
    Shutdown,
};

const char *toString(Verb verb);

/** True for the verbs that enter the admission queue and count toward
 *  the offered/accepted/rejected/completed conservation law. */
bool isWorkVerb(Verb verb);

/** One service request. */
struct Request
{
    int64_t id = 0;   ///< echoed in the response; client-chosen
    Verb verb = Verb::Simulate;

    /** Telemetry attribution id. Empty = the server assigns one when
     *  telemetry is enabled; a client-supplied id is used verbatim
     *  (e.g. to correlate with the client's own logs). */
    std::string requestId;

    /** metrics verb: report counter/histogram deltas since the last
     *  delta scrape instead of lifetime totals (docs/SERVICE.md). */
    bool metricsDelta = false;

    std::string file = "<request>"; ///< display name for diagnostics
    std::string source;             ///< PMLang program text
    std::string entry = "main";
    std::map<std::string, int64_t> params; ///< compile-time scalar binds
    bool optimize = false;
    std::string target;   ///< domain keyword (RBT|GA|DSP|DA|DL|ALL)
    bool schedule = false;
    int64_t invocations = 1;
    double faultRate = 0.0;
    uint64_t faultSeed = 0x5eed;
    int64_t profileTop = 10;
    /** simulate verb: also build the polymath-profile/1 document
     *  without printing hotspot tables (pmc's `--profile-json` without
     *  `--profile`). The profile verb always builds it. */
    bool profileDoc = false;

    /** dse verb: config-space kind ("small"|"full", docs/DSE.md). */
    std::string dseSpace = "small";
    /** dse verb: search driver ("auto"|"grid"|"random"). */
    std::string dseSearch = "auto";
    /** dse verb: random-driver sample budget per round. */
    int64_t dseSamples = 48;
    /** dse verb: random-driver successive-halving rounds. */
    int64_t dseRounds = 3;
    /** dse verb: search seed (decimal string on the wire, like
     *  faultSeed — full uint64s don't survive a JSON double). */
    uint64_t dseSeed = 0x5eed;

    /** One-line JSON rendering (no trailing newline). */
    std::string json() const;

    /** Parses one request line. @throws UserError on malformed JSON,
     *  a non-object document, an unknown verb, or a bad field type. */
    static Request fromJson(const std::string &line);
};

/** One service response. */
struct Response
{
    int64_t id = 0;
    bool ok = false;
    bool rejected = false; ///< admission control turned the request away
    /** pmc-style exit code: 0 ok, 1 user error, 2 internal/protocol
     *  error, 3 admission rejection. */
    int code = 0;
    bool cacheHit = false; ///< compile served from the shared cache

    /** Telemetry attribution id of the request this answers; absent
     *  (empty) when the server runs without telemetry. */
    std::string requestId;

    std::string output; ///< exactly local pmc's stdout bytes
    std::string error;  ///< exactly local pmc's stderr bytes

    /** profile verb: the polymath-profile/1 JSON document (the bytes
     *  `pmc --profile-json` writes), carried as a string field. */
    std::string profileJson;

    /** stats/shutdown verbs: flat counter name -> value map. */
    std::map<std::string, double> stats;

    /** metrics verb: the MetricsSnapshot JSON document (the Prometheus
     *  text exposition of the same snapshot rides in `output`). */
    std::string metricsJson;

    /** One-line JSON rendering (no trailing newline). */
    std::string json() const;

    /** Parses one response line. @throws UserError when malformed. */
    static Response fromJson(const std::string &line);
};

} // namespace polymath::service

#endif // POLYMATH_SERVICE_PROTOCOL_H_
