#include "service/protocol.h"

#include <charconv>
#include <cmath>

#include "core/error.h"
#include "core/json.h"

namespace polymath::service {

namespace {

bool
asBool(const json::Value &v, const std::string &key)
{
    if (!std::holds_alternative<bool>(v.data))
        fatal("service: field '" + key + "' must be a boolean");
    return std::get<bool>(v.data);
}

/** Integer field: JSON doubles are exact up to 2^53, far beyond any
 *  id/count the protocol carries. */
int64_t
getInt(const json::Object &obj, const std::string &key, int64_t dflt)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return dflt;
    const double d = it->second.num();
    if (!std::isfinite(d) || d != std::floor(d))
        fatal("service: field '" + key + "' must be an integer");
    return static_cast<int64_t>(d);
}

double
getNum(const json::Object &obj, const std::string &key, double dflt)
{
    auto it = obj.find(key);
    return it == obj.end() ? dflt : it->second.num();
}

bool
getBool(const json::Object &obj, const std::string &key, bool dflt)
{
    auto it = obj.find(key);
    return it == obj.end() ? dflt : asBool(it->second, key);
}

std::string
getString(const json::Object &obj, const std::string &key,
          const std::string &dflt)
{
    auto it = obj.find(key);
    return it == obj.end() ? dflt : it->second.str();
}

/** Seed field: full uint64 carried as a decimal string (a JSON double
 *  truncates past 2^53). */
uint64_t
getSeed(const json::Object &obj, const std::string &key, uint64_t dflt)
{
    const std::string seed = getString(obj, key, std::to_string(dflt));
    uint64_t value = 0;
    const char *begin = seed.data();
    const char *end = begin + seed.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        fatal("service: field '" + key +
              "' must be a decimal unsigned integer string (got '" +
              seed + "')");
    return value;
}

} // namespace

const char *
toString(Verb verb)
{
    switch (verb) {
      case Verb::Compile: return "compile";
      case Verb::Simulate: return "simulate";
      case Verb::Profile: return "profile";
      case Verb::Dse: return "dse";
      case Verb::Stats: return "stats";
      case Verb::Dump: return "dump";
      case Verb::Metrics: return "metrics";
      case Verb::Shutdown: return "shutdown";
    }
    return "?";
}

bool
isWorkVerb(Verb verb)
{
    return verb == Verb::Compile || verb == Verb::Simulate ||
           verb == Verb::Profile || verb == Verb::Dse;
}

namespace {

Verb
verbFromString(const std::string &word)
{
    if (word == "compile") return Verb::Compile;
    if (word == "simulate") return Verb::Simulate;
    if (word == "profile") return Verb::Profile;
    if (word == "dse") return Verb::Dse;
    if (word == "stats") return Verb::Stats;
    if (word == "dump") return Verb::Dump;
    if (word == "metrics") return Verb::Metrics;
    if (word == "shutdown") return Verb::Shutdown;
    fatal("service: unknown verb '" + word +
          "' (expected compile|simulate|profile|dse|stats|dump|"
          "metrics|shutdown)");
}

} // namespace

std::string
Request::json() const
{
    std::string doc = "{\"id\":" + std::to_string(id);
    doc += ",\"verb\":" + json::quote(toString(verb));
    if (!requestId.empty())
        doc += ",\"requestId\":" + json::quote(requestId);
    if (metricsDelta)
        doc += ",\"metricsDelta\":true";
    doc += ",\"file\":" + json::quote(file);
    doc += ",\"source\":" + json::quote(source);
    doc += ",\"entry\":" + json::quote(entry);
    if (!params.empty()) {
        doc += ",\"params\":{";
        bool first = true;
        for (const auto &[name, value] : params) {
            if (!first)
                doc += ",";
            first = false;
            doc += json::quote(name) + ":" + std::to_string(value);
        }
        doc += "}";
    }
    if (optimize)
        doc += ",\"optimize\":true";
    if (!target.empty())
        doc += ",\"target\":" + json::quote(target);
    if (schedule)
        doc += ",\"schedule\":true";
    doc += ",\"invocations\":" + std::to_string(invocations);
    if (faultRate != 0.0)
        doc += ",\"faultRate\":" + json::numberToJson(faultRate);
    // Seeds are full uint64s; a JSON double would truncate past 2^53,
    // so the seed travels as a decimal string.
    doc += ",\"faultSeed\":" + json::quote(std::to_string(faultSeed));
    doc += ",\"profileTop\":" + std::to_string(profileTop);
    if (profileDoc)
        doc += ",\"profileDoc\":true";
    if (verb == Verb::Dse) {
        doc += ",\"dseSpace\":" + json::quote(dseSpace);
        doc += ",\"dseSearch\":" + json::quote(dseSearch);
        doc += ",\"dseSamples\":" + std::to_string(dseSamples);
        doc += ",\"dseRounds\":" + std::to_string(dseRounds);
        // Same uint64-as-decimal-string convention as faultSeed.
        doc += ",\"dseSeed\":" + json::quote(std::to_string(dseSeed));
    }
    doc += "}";
    return doc;
}

Request
Request::fromJson(const std::string &line)
{
    const json::Value doc = json::parse(line);
    const json::Object &obj = doc.obj();
    Request req;
    auto verb_it = obj.find("verb");
    if (verb_it == obj.end())
        fatal("service: request has no 'verb'");
    req.verb = verbFromString(verb_it->second.str());
    req.id = getInt(obj, "id", 0);
    req.requestId = getString(obj, "requestId", "");
    req.metricsDelta = getBool(obj, "metricsDelta", false);
    req.file = getString(obj, "file", req.file);
    req.source = getString(obj, "source", "");
    req.entry = getString(obj, "entry", req.entry);
    auto params_it = obj.find("params");
    if (params_it != obj.end()) {
        for (const auto &[name, value] : params_it->second.obj()) {
            const double d = value.num();
            if (!std::isfinite(d) || d != std::floor(d))
                fatal("service: param '" + name +
                      "' must be an integer");
            req.params[name] = static_cast<int64_t>(d);
        }
    }
    req.optimize = getBool(obj, "optimize", false);
    req.target = getString(obj, "target", "");
    req.schedule = getBool(obj, "schedule", false);
    req.invocations = getInt(obj, "invocations", 1);
    req.faultRate = getNum(obj, "faultRate", 0.0);
    req.faultSeed = getSeed(obj, "faultSeed", req.faultSeed);
    req.profileTop = getInt(obj, "profileTop", 10);
    req.profileDoc = getBool(obj, "profileDoc", false);
    req.dseSpace = getString(obj, "dseSpace", req.dseSpace);
    req.dseSearch = getString(obj, "dseSearch", req.dseSearch);
    req.dseSamples = getInt(obj, "dseSamples", req.dseSamples);
    req.dseRounds = getInt(obj, "dseRounds", req.dseRounds);
    req.dseSeed = getSeed(obj, "dseSeed", req.dseSeed);
    if (req.profileTop < 1)
        fatal("service: field 'profileTop' must be positive");
    if (req.invocations < 1)
        fatal("service: field 'invocations' must be positive");
    if (req.dseSamples < 1)
        fatal("service: field 'dseSamples' must be positive");
    if (req.dseRounds < 1)
        fatal("service: field 'dseRounds' must be positive");
    return req;
}

std::string
Response::json() const
{
    std::string doc = "{\"id\":" + std::to_string(id);
    doc += ",\"ok\":";
    doc += ok ? "true" : "false";
    if (rejected)
        doc += ",\"rejected\":true";
    doc += ",\"code\":" + std::to_string(code);
    if (cacheHit)
        doc += ",\"cacheHit\":true";
    if (!requestId.empty())
        doc += ",\"requestId\":" + json::quote(requestId);
    if (!output.empty())
        doc += ",\"output\":" + json::quote(output);
    if (!error.empty())
        doc += ",\"error\":" + json::quote(error);
    if (!profileJson.empty())
        doc += ",\"profileJson\":" + json::quote(profileJson);
    if (!metricsJson.empty())
        doc += ",\"metricsJson\":" + json::quote(metricsJson);
    if (!stats.empty()) {
        doc += ",\"stats\":{";
        bool first = true;
        for (const auto &[name, value] : stats) {
            if (!first)
                doc += ",";
            first = false;
            doc += json::quote(name) + ":" + json::numberToJson(value);
        }
        doc += "}";
    }
    doc += "}";
    return doc;
}

Response
Response::fromJson(const std::string &line)
{
    const json::Value doc = json::parse(line);
    const json::Object &obj = doc.obj();
    Response resp;
    resp.id = getInt(obj, "id", 0);
    resp.ok = getBool(obj, "ok", false);
    resp.rejected = getBool(obj, "rejected", false);
    resp.code = static_cast<int>(getInt(obj, "code", 0));
    resp.cacheHit = getBool(obj, "cacheHit", false);
    resp.requestId = getString(obj, "requestId", "");
    resp.output = getString(obj, "output", "");
    resp.error = getString(obj, "error", "");
    resp.profileJson = getString(obj, "profileJson", "");
    resp.metricsJson = getString(obj, "metricsJson", "");
    auto stats_it = obj.find("stats");
    if (stats_it != obj.end()) {
        for (const auto &[name, value] : stats_it->second.obj())
            resp.stats[name] = json::numberFromJson(value);
    }
    return resp;
}

} // namespace polymath::service
