/**
 * @file
 * Request execution shared by the pmc CLI and the pmcd server.
 *
 * Both front ends funnel compile/simulate/profile work through
 * runRequest(), so a served response is byte-identical to local
 * execution *by construction* — there is exactly one implementation of
 * "what pmc prints for these flags", and the daemon transports its
 * bytes instead of re-deriving them. Compilations go through the shared
 * CompileCache (single-flight, optionally LRU-bounded), which is the
 * whole point of keeping the process alive across requests.
 */
#ifndef POLYMATH_SERVICE_EXEC_H_
#define POLYMATH_SERVICE_EXEC_H_

#include <memory>
#include <string>
#include <vector>

#include "lower/compile_cache.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace polymath::service {

/** Maps a --target keyword (RBT|GA|DSP|DA|DL, or ALL for per-statement
 *  annotations) to its domain. @throws UserError on anything else. */
lang::Domain domainFromKeyword(const std::string &word);

/**
 * Statement-level recovery parse of @p source, appending the
 * pmc-canonical diagnostic rendering (every error, not just the first)
 * to @p err. Returns true when errors were found — the caller stops
 * with exit code 1.
 */
bool preflightDiagnostics(const std::string &source, std::string &err);

/** What runRequest() produced for one work request. */
struct ExecResult
{
    std::string out; ///< pmc stdout bytes for the compiled program
    std::string profileJson; ///< polymath-profile/1 doc (profile verb)
    bool cacheHit = false;   ///< served (or coalesced) from the cache
    std::shared_ptr<const lower::CompiledProgram> program;
};

/**
 * Executes one compile/simulate/profile request through @p cache.
 * Exceptions (UserError/InternalError) propagate to the caller — the
 * CLI's existing guard and the server's runRequestGuarded() render them
 * identically. @p req.verb must be a work verb.
 */
ExecResult runRequest(const Request &req, lower::CompileCache &cache);

/**
 * Per-request telemetry contract of runRequestGuarded (docs/
 * OBSERVABILITY.md §"Service telemetry"). The caller fills requestId
 * and captureTrace; the callee fills the rest. With captureTrace set,
 * the whole execution runs under an obs::RequestTraceScope, so every
 * span the request closes — and only this request's spans — lands in
 * `trace`, tagged to requestId, whether or not the global recorder is
 * on.
 */
struct RequestTelemetry
{
    std::string requestId;    ///< in: attribution id
    bool captureTrace = false; ///< in: collect the span trace
    int64_t executeMicros = 0; ///< out: wall time inside the guard
    std::string backends;      ///< out: comma-joined backend mix
    int64_t cacheHits = 0;     ///< out: compiles served from cache
    int64_t cacheMisses = 0;   ///< out: compiles done here
    std::vector<obs::TraceEvent> trace; ///< out (captureTrace only)
};

/**
 * The server-side wrapper: preflight diagnostics + runRequest with the
 * exception-to-exit-code policy of the pmc process applied, rendered
 * into a Response whose output/error fields carry exactly the bytes
 * local pmc would print. @p telemetry, when non-null, scopes the
 * execution to that request id and reports what it did; with nullptr
 * the behavior (and cost) is exactly the pre-telemetry path.
 */
Response runRequestGuarded(const Request &req, lower::CompileCache &cache,
                           RequestTelemetry *telemetry = nullptr);

} // namespace polymath::service

#endif // POLYMATH_SERVICE_EXEC_H_
