#include "service/client.h"

#include "core/error.h"

namespace polymath::service {

Client::Client(const std::string &socketPath)
    : fd_(core::connectUnix(socketPath)), reader_(fd_)
{
}

Client::~Client()
{
    core::closeFd(fd_);
}

void
Client::send(const Request &request)
{
    if (!core::writeAll(fd_, request.json() + "\n"))
        fatal("service: connection lost while sending request");
}

bool
Client::recv(Response &response)
{
    std::string line;
    if (!reader_.readLine(line))
        return false;
    response = Response::fromJson(line);
    return true;
}

Response
Client::call(const Request &request)
{
    send(request);
    Response response;
    if (!recv(response))
        fatal("service: connection closed before a response arrived");
    return response;
}

} // namespace polymath::service
