#include "service/server.h"

#include <sys/socket.h>

#include "core/error.h"
#include "obs/metrics.h"
#include "service/exec.h"

namespace polymath::service {

std::map<std::string, double>
ServerStats::toMap(const lower::CompileCache &cache) const
{
    return {
        {"offered", static_cast<double>(offered)},
        {"accepted", static_cast<double>(accepted)},
        {"rejected", static_cast<double>(rejected)},
        {"completed", static_cast<double>(completed)},
        {"malformed", static_cast<double>(malformed)},
        {"pending", static_cast<double>(pending)},
        {"executing", static_cast<double>(executing)},
        {"connections", static_cast<double>(connections)},
        {"cacheHits", static_cast<double>(cache.hits())},
        {"cacheMisses", static_cast<double>(cache.misses())},
        {"cacheCoalesced", static_cast<double>(cache.coalesced())},
        {"cacheEvictions", static_cast<double>(cache.evictions())},
        {"cacheEntries", static_cast<double>(cache.size())},
        {"cacheCapacity", static_cast<double>(cache.capacity())},
        {"cacheHitRate", cache.hitRate()},
    };
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache != nullptr ? config_.cache
                                      : &lower::CompileCache::global())
{
    if (config_.cacheEntries > 0)
        cache_->setCapacity(config_.cacheEntries);
    config_.jobs = core::resolveJobs(config_.jobs);
}

Server::~Server()
{
    try {
        requestStop();
        wait();
    } catch (...) {
        // Destructors must not throw; the process is going away anyway.
    }
}

void
Server::start()
{
    listener_.listen(config_.socketPath);
    pool_ = std::make_unique<core::ThreadPool>(config_.jobs);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        started_ = true;
        stopping_ = false;
        stopped_ = false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = listener_.accept();
        if (fd < 0)
            return; // listener closed: shutdown path
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        bool admit = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!stopped_) {
                conns_.push_back(conn);
                admit = true;
            }
        }
        if (!admit) {
            core::closeFd(fd);
            continue;
        }
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
        // Opportunistic cleanup of finished connections so a long-lived
        // daemon's connection table does not grow without bound.
        std::vector<std::shared_ptr<Conn>> dead;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            reapConnectionsLocked();
            dead.swap(reaped_);
        }
        for (auto &c : dead) {
            if (c->reader.joinable())
                c->reader.join();
            core::closeFd(c->fd);
        }
    }
}

void
Server::reapConnectionsLocked()
{
    // A connection is dead once its reader exited, its queue drained,
    // and no worker still holds it for a response write. The join and
    // fd close happen outside the lock (the reader's last act is to
    // take mutex_ and mark itself closed — joining under the lock
    // would deadlock against that).
    auto it = conns_.begin();
    while (it != conns_.end()) {
        auto &c = *it;
        if (!c->open && c->queue.empty() && c->inFlight == 0) {
            reaped_.push_back(c);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::readerLoop(const std::shared_ptr<Conn> &conn)
{
    core::LineReader reader(conn->fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.empty())
            continue; // blank keep-alive lines are tolerated
        Request req;
        try {
            req = Request::fromJson(line);
        } catch (const std::exception &e) {
            // A malformed or truncated request line gets a structured
            // error, never a dropped connection or a crash.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++malformed_;
            }
            Response resp;
            resp.ok = false;
            resp.code = 2;
            resp.error = std::string("request error: ") + e.what() + "\n";
            writeResponse(*conn, resp);
            continue;
        }
        if (req.verb == Verb::Stats) {
            writeResponse(*conn, statsResponse(req.id));
            continue;
        }
        if (req.verb == Verb::Shutdown) {
            handleShutdown(*conn, req.id);
            break;
        }
        // Work verb: admission control, then hand to the pool. The
        // rejection response is written inline by this reader — cheap,
        // and it keeps the pool free for admitted work.
        const int64_t request_id = req.id;
        const char *reject_reason = nullptr;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++offered_;
            if (stopping_) {
                reject_reason = "server shutting down";
            } else if (config_.maxPending > 0 &&
                       pending_ >= config_.maxPending) {
                reject_reason = "admission queue full";
            } else {
                ++accepted_;
                ++pending_;
                conn->queue.push_back(std::move(req));
            }
            if (reject_reason != nullptr)
                ++rejected_;
        }
        if (reject_reason != nullptr) {
            obs::MetricsRegistry::global()
                .counter("service.rejected")
                .add(1);
            Response resp;
            resp.id = request_id;
            resp.ok = false;
            resp.rejected = true;
            resp.code = 3;
            resp.error = std::string(reject_reason) + "\n";
            writeResponse(*conn, resp);
        } else {
            pool_->submit([this] { slotTask(); });
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    conn->open = false;
}

void
Server::slotTask()
{
    // One slot is submitted per admitted request, but a slot does not
    // execute "its" request: it pulls the next request round-robin
    // across connections, which is what keeps one chatty client from
    // starving the others — backlog depth costs only its own latency.
    std::shared_ptr<Conn> conn;
    Request req;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const size_t n = conns_.size();
        for (size_t k = 0; k < n; ++k) {
            auto &c = conns_[(rrCursor_ + k) % n];
            if (c->queue.empty())
                continue;
            req = std::move(c->queue.front());
            c->queue.pop_front();
            --pending_;
            ++executing_;
            ++c->inFlight;
            conn = c;
            rrCursor_ = (rrCursor_ + k + 1) % n;
            break;
        }
    }
    if (!conn)
        return; // admitted == slots, so this only races a drain
    Response resp = runRequestGuarded(req, *cache_);
    writeResponse(*conn, resp);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++completed_;
        --executing_;
        --conn->inFlight;
        if (pending_ == 0 && executing_ == 0)
            drained_.notify_all();
    }
    obs::MetricsRegistry::global().counter("service.completed").add(1);
}

void
Server::handleShutdown(Conn &conn, int64_t request_id)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
        // Drain: every admitted request is answered before the
        // shutdown response leaves. New work is rejected (accounted)
        // while this waits, so the wait terminates.
        drained_.wait(lock, [&] {
            return pending_ == 0 && executing_ == 0;
        });
    }
    Response resp = statsResponse(request_id);
    writeResponse(conn, resp);
    beginStop();
}

void
Server::requestStop()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!started_)
            return;
        stopping_ = true;
        drained_.wait(lock, [&] {
            return stopped_ || (pending_ == 0 && executing_ == 0);
        });
    }
    beginStop();
}

void
Server::beginStop()
{
    std::vector<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        conns = conns_;
    }
    listener_.close();
    // Wake every reader blocked in recv; their loops exit on EOF.
    for (auto &c : conns)
        ::shutdown(c->fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mutex_);
    drained_.notify_all();
}

void
Server::wait()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!started_)
            return;
        drained_.wait(lock, [&] { return stopped_; });
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        conns.swap(conns_);
        conns.insert(conns.end(), reaped_.begin(), reaped_.end());
        reaped_.clear();
    }
    for (auto &c : conns) {
        if (c->reader.joinable())
            c->reader.join();
        core::closeFd(c->fd);
    }
    pool_.reset(); // drains (already empty) and joins the workers
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats s;
    s.offered = offered_;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.malformed = malformed_;
    s.pending = pending_;
    s.executing = executing_;
    for (const auto &c : conns_)
        s.connections += c->open ? 1 : 0;
    return s;
}

Response
Server::statsResponse(int64_t request_id) const
{
    Response resp;
    resp.id = request_id;
    resp.ok = true;
    resp.code = 0;
    resp.stats = stats().toMap(*cache_);
    return resp;
}

void
Server::writeResponse(Conn &conn, const Response &resp)
{
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    // A vanished client (EPIPE, thanks to MSG_NOSIGNAL) just loses its
    // response; the request still counts as completed — conservation
    // is about work done, not deliveries.
    core::writeAll(conn.fd, resp.json() + "\n");
}

} // namespace polymath::service
