#include "service/server.h"

#include <sys/socket.h>

#include "core/error.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/exec.h"

namespace polymath::service {

std::map<std::string, double>
ServerStats::toMap(const lower::CompileCache &cache) const
{
    return {
        {"offered", static_cast<double>(offered)},
        {"accepted", static_cast<double>(accepted)},
        {"rejected", static_cast<double>(rejected)},
        {"completed", static_cast<double>(completed)},
        {"malformed", static_cast<double>(malformed)},
        {"pending", static_cast<double>(pending)},
        {"executing", static_cast<double>(executing)},
        {"connections", static_cast<double>(connections)},
        {"cacheHits", static_cast<double>(cache.hits())},
        {"cacheMisses", static_cast<double>(cache.misses())},
        {"cacheCoalesced", static_cast<double>(cache.coalesced())},
        {"cacheEvictions", static_cast<double>(cache.evictions())},
        {"cacheEntries", static_cast<double>(cache.size())},
        {"cacheCapacity", static_cast<double>(cache.capacity())},
        {"cacheHitRate", cache.hitRate()},
    };
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache != nullptr ? config_.cache
                                      : &lower::CompileCache::global()),
      flight_(config_.flightEntries)
{
    if (config_.cacheEntries > 0)
        cache_->setCapacity(config_.cacheEntries);
    config_.jobs = core::resolveJobs(config_.jobs);
}

Server::~Server()
{
    try {
        requestStop();
        wait();
    } catch (...) {
        // Destructors must not throw; the process is going away anyway.
    }
}

void
Server::start()
{
    listener_.listen(config_.socketPath);
    pool_ = std::make_unique<core::ThreadPool>(config_.jobs);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        started_ = true;
        stopping_ = false;
        stopped_ = false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = listener_.accept();
        if (fd < 0)
            return; // listener closed: shutdown path
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        bool admit = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!stopped_) {
                conns_.push_back(conn);
                admit = true;
            }
        }
        if (!admit) {
            core::closeFd(fd);
            continue;
        }
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
        // Opportunistic cleanup of finished connections so a long-lived
        // daemon's connection table does not grow without bound.
        std::vector<std::shared_ptr<Conn>> dead;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            reapConnectionsLocked();
            dead.swap(reaped_);
        }
        for (auto &c : dead) {
            if (c->reader.joinable())
                c->reader.join();
            core::closeFd(c->fd);
        }
    }
}

void
Server::reapConnectionsLocked()
{
    // A connection is dead once its reader exited, its queue drained,
    // and no worker still holds it for a response write. The join and
    // fd close happen outside the lock (the reader's last act is to
    // take mutex_ and mark itself closed — joining under the lock
    // would deadlock against that).
    auto it = conns_.begin();
    while (it != conns_.end()) {
        auto &c = *it;
        if (!c->open && c->queue.empty() && c->inFlight == 0) {
            reaped_.push_back(c);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::readerLoop(const std::shared_ptr<Conn> &conn)
{
    core::LineReader reader(conn->fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.empty())
            continue; // blank keep-alive lines are tolerated
        Request req;
        try {
            req = Request::fromJson(line);
        } catch (const std::exception &e) {
            // A malformed or truncated request line gets a structured
            // error, never a dropped connection or a crash.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++malformed_;
            }
            Response resp;
            resp.ok = false;
            resp.code = 2;
            resp.error = std::string("request error: ") + e.what() + "\n";
            writeResponse(*conn, resp);
            continue;
        }
        if (req.verb == Verb::Stats) {
            Response resp = statsResponse(req.id);
            resp.requestId = assignRequestId(req.requestId);
            writeResponse(*conn, resp);
            continue;
        }
        if (req.verb == Verb::Dump) {
            Response resp = dumpResponse(req);
            resp.requestId = assignRequestId(req.requestId);
            writeResponse(*conn, resp);
            continue;
        }
        if (req.verb == Verb::Metrics) {
            Response resp = metricsResponse(req);
            resp.requestId = assignRequestId(req.requestId);
            writeResponse(*conn, resp);
            continue;
        }
        if (req.verb == Verb::Shutdown) {
            handleShutdown(*conn, req);
            break;
        }
        // Work verb: admission control, then hand to the pool. The
        // rejection response is written inline by this reader — cheap,
        // and it keeps the pool free for admitted work.
        const int64_t request_id = req.id;
        req.requestId = assignRequestId(req.requestId);
        const std::string attribution = req.requestId;
        const int64_t now_us =
            telemetryEnabled()
                ? obs::TraceRecorder::global().nowMicros()
                : 0;
        const char *reject_reason = nullptr;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++offered_;
            if (stopping_) {
                reject_reason = "server shutting down";
            } else if (config_.maxPending > 0 &&
                       pending_ >= config_.maxPending) {
                reject_reason = "admission queue full";
            } else {
                ++accepted_;
                ++pending_;
                conn->queue.push_back(
                    Pending{std::move(req), now_us,
                            static_cast<int64_t>(line.size()) + 1});
            }
            if (reject_reason != nullptr)
                ++rejected_;
        }
        if (reject_reason != nullptr) {
            obs::MetricsRegistry::global()
                .counter("service.rejected")
                .add(1);
            if (telemetryEnabled())
                rejectedRate_.mark(now_us);
            Response resp;
            resp.id = request_id;
            resp.requestId = attribution;
            resp.ok = false;
            resp.rejected = true;
            resp.code = 3;
            resp.error = std::string(reject_reason) + "\n";
            writeResponse(*conn, resp);
        } else {
            pool_->submit([this] { slotTask(); });
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    conn->open = false;
}

void
Server::slotTask()
{
    // One slot is submitted per admitted request, but a slot does not
    // execute "its" request: it pulls the next request round-robin
    // across connections, which is what keeps one chatty client from
    // starving the others — backlog depth costs only its own latency.
    std::shared_ptr<Conn> conn;
    Pending item;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const size_t n = conns_.size();
        for (size_t k = 0; k < n; ++k) {
            auto &c = conns_[(rrCursor_ + k) % n];
            if (c->queue.empty())
                continue;
            item = std::move(c->queue.front());
            c->queue.pop_front();
            --pending_;
            ++executing_;
            ++c->inFlight;
            conn = c;
            rrCursor_ = (rrCursor_ + k + 1) % n;
            break;
        }
    }
    if (!conn)
        return; // admitted == slots, so this only races a drain
    Response resp;
    bool accounted = false; // completed_ already counted pre-send?
    if (telemetryEnabled()) {
        RequestTelemetry telem;
        telem.requestId = item.req.requestId;
        telem.captureTrace = true;
        const int64_t dispatched_us =
            obs::TraceRecorder::global().nowMicros();
        const int64_t queue_wait_us =
            dispatched_us - item.enqueuedAtMicros;
        resp = runRequestGuarded(item.req, *cache_, &telem);
        resp.requestId = item.req.requestId;
        // Account *before* the response leaves: once a client holds
        // its response, a dump/metrics request — answered inline on a
        // reader thread — must already see this request's record and
        // counters (read-your-own-writes attribution). The line is
        // rendered first so bytesOut is exact.
        const std::string line = resp.json() + "\n";
        const auto bytes_out = static_cast<int64_t>(line.size());
        auto &registry = obs::MetricsRegistry::global();
        registry.latency("service.queue_wait_us").observe(queue_wait_us);
        registry.latency("service.execute_us")
            .observe(telem.executeMicros);
        registry.counter("service.bytes_in").add(item.bytesIn);
        registry.counter("service.bytes_out").add(bytes_out);
        const int64_t finished_us =
            obs::TraceRecorder::global().nowMicros();
        obs::RequestRecord record;
        record.requestId = telem.requestId;
        record.verb = toString(item.req.verb);
        record.backends = telem.backends;
        record.exitCode = resp.code;
        record.cacheHits = telem.cacheHits;
        record.cacheMisses = telem.cacheMisses;
        record.queueWaitMicros = queue_wait_us;
        record.executeMicros = telem.executeMicros;
        record.bytesIn = item.bytesIn;
        record.bytesOut = bytes_out;
        record.finishedAtMicros = finished_us;
        if (config_.slowTraceUs > 0 &&
            telem.executeMicros >= config_.slowTraceUs)
            record.trace = std::move(telem.trace);
        flight_.push(std::move(record));
        completedRate_.mark(finished_us);
        {
            // Only completed_ moves early; executing_ stays held until
            // the line is on the wire so the shutdown drain cannot
            // close this connection under an unsent response.
            std::lock_guard<std::mutex> lock(mutex_);
            ++completed_;
        }
        obs::MetricsRegistry::global()
            .counter("service.completed")
            .add(1);
        accounted = true;
        sendLine(*conn, line);
    } else {
        resp = runRequestGuarded(item.req, *cache_);
        writeResponse(*conn, resp);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!accounted)
            ++completed_;
        --executing_;
        --conn->inFlight;
        if (pending_ == 0 && executing_ == 0)
            drained_.notify_all();
    }
    if (!accounted)
        obs::MetricsRegistry::global().counter("service.completed").add(1);
}

void
Server::handleShutdown(Conn &conn, const Request &req)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
        // Drain: every admitted request is answered before the
        // shutdown response leaves. New work is rejected (accounted)
        // while this waits, so the wait terminates.
        drained_.wait(lock, [&] {
            return pending_ == 0 && executing_ == 0;
        });
    }
    Response resp = statsResponse(req.id);
    resp.requestId = assignRequestId(req.requestId);
    writeResponse(conn, resp);
    beginStop();
}

void
Server::requestStop()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!started_)
            return;
        stopping_ = true;
        drained_.wait(lock, [&] {
            return stopped_ || (pending_ == 0 && executing_ == 0);
        });
    }
    beginStop();
}

void
Server::beginStop()
{
    std::vector<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        conns = conns_;
    }
    listener_.close();
    // Wake every reader blocked in recv; their loops exit on EOF.
    for (auto &c : conns)
        ::shutdown(c->fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mutex_);
    drained_.notify_all();
}

void
Server::wait()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!started_)
            return;
        drained_.wait(lock, [&] { return stopped_; });
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        conns.swap(conns_);
        conns.insert(conns.end(), reaped_.begin(), reaped_.end());
        reaped_.clear();
    }
    for (auto &c : conns) {
        if (c->reader.joinable())
            c->reader.join();
        core::closeFd(c->fd);
    }
    pool_.reset(); // drains (already empty) and joins the workers
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats s;
    s.offered = offered_;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.malformed = malformed_;
    s.pending = pending_;
    s.executing = executing_;
    for (const auto &c : conns_)
        s.connections += c->open ? 1 : 0;
    return s;
}

Response
Server::statsResponse(int64_t request_id) const
{
    Response resp;
    resp.id = request_id;
    resp.ok = true;
    resp.code = 0;
    resp.stats = stats().toMap(*cache_);
    return resp;
}

std::string
Server::assignRequestId(const std::string &client_supplied)
{
    if (!telemetryEnabled())
        return std::string();
    if (!client_supplied.empty())
        return client_supplied;
    return "r" + std::to_string(nextRequestId_.fetch_add(
                     1, std::memory_order_relaxed));
}

std::string
Server::flightDumpJson() const
{
    return telemetryEnabled() ? flight_.json() : std::string();
}

Response
Server::dumpResponse(const Request &req) const
{
    Response resp;
    resp.id = req.id;
    if (!telemetryEnabled()) {
        resp.ok = false;
        resp.code = 1;
        resp.error = "flight recorder disabled (start pmcd with "
                     "--flight-entries > 0)\n";
        return resp;
    }
    resp.ok = true;
    resp.code = 0;
    resp.output = flight_.json() + "\n";
    return resp;
}

obs::MetricsSnapshot
Server::metricsSnapshot() const
{
    obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    // Server and cache state join the scrape as synthetic instruments:
    // lifetime totals as counters, instantaneous values as gauges. The
    // per-backend soc.stream.occupancy gauges set by the stream
    // scheduler arrive via the registry snapshot itself.
    const ServerStats s = stats();
    snap.counters["service.server.offered"] = s.offered;
    snap.counters["service.server.accepted"] = s.accepted;
    snap.counters["service.server.rejected"] = s.rejected;
    snap.counters["service.server.completed"] = s.completed;
    snap.counters["service.server.malformed"] = s.malformed;
    snap.gauges["service.server.pending"] =
        static_cast<double>(s.pending);
    snap.gauges["service.server.executing"] =
        static_cast<double>(s.executing);
    snap.gauges["service.server.connections"] =
        static_cast<double>(s.connections);
    snap.counters["service.cache.hits"] = cache_->hits();
    snap.counters["service.cache.misses"] = cache_->misses();
    snap.counters["service.cache.coalesced"] = cache_->coalesced();
    snap.counters["service.cache.evictions"] = cache_->evictions();
    snap.gauges["service.cache.entries"] =
        static_cast<double>(cache_->size());
    snap.gauges["service.cache.hit_rate"] = cache_->hitRate();
    const int64_t now_us = obs::TraceRecorder::global().nowMicros();
    snap.gauges["service.rate.completed_per_s"] =
        completedRate_.ratePerSecond(now_us);
    snap.gauges["service.rate.rejected_per_s"] =
        rejectedRate_.ratePerSecond(now_us);
    return snap;
}

namespace {

/**
 * Delta scrape: counters and histogram count/sum/underflow become
 * since-last differences; gauges stay instantaneous and quantiles stay
 * cumulative (a log-linear histogram cannot be subtracted without the
 * full bucket arrays, and cumulative quantiles are what Prometheus
 * summaries report anyway).
 */
obs::MetricsSnapshot
diffSnapshot(const obs::MetricsSnapshot &current,
             const obs::MetricsSnapshot &last)
{
    obs::MetricsSnapshot delta = current;
    for (auto &[name, value] : delta.counters) {
        const auto it = last.counters.find(name);
        if (it != last.counters.end())
            value -= it->second;
    }
    for (auto &[name, h] : delta.histograms) {
        const auto it = last.histograms.find(name);
        if (it == last.histograms.end())
            continue;
        h.count -= it->second.count;
        h.sum -= it->second.sum;
        h.underflow -= it->second.underflow;
    }
    for (auto &[name, l] : delta.latencies) {
        const auto it = last.latencies.find(name);
        if (it == last.latencies.end())
            continue;
        l.count -= it->second.count;
        l.sum -= it->second.sum;
        l.underflow -= it->second.underflow;
    }
    return delta;
}

} // namespace

Response
Server::metricsResponse(const Request &req)
{
    Response resp;
    resp.id = req.id;
    resp.ok = true;
    resp.code = 0;
    const obs::MetricsSnapshot snap = metricsSnapshot();
    if (req.metricsDelta) {
        std::lock_guard<std::mutex> lock(scrapeMutex_);
        const obs::MetricsSnapshot shown =
            haveLastScrape_ ? diffSnapshot(snap, lastScrape_) : snap;
        lastScrape_ = snap;
        haveLastScrape_ = true;
        resp.output = obs::prometheusText(shown);
        resp.metricsJson = shown.json();
    } else {
        resp.output = obs::prometheusText(snap);
        resp.metricsJson = snap.json();
    }
    return resp;
}

size_t
Server::writeResponse(Conn &conn, const Response &resp)
{
    const std::string line = resp.json() + "\n";
    sendLine(conn, line);
    return line.size();
}

void
Server::sendLine(Conn &conn, const std::string &line)
{
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    // A vanished client (EPIPE, thanks to MSG_NOSIGNAL) just loses its
    // response; the request still counts as completed — conservation
    // is about work done, not deliveries.
    core::writeAll(conn.fd, line);
}

} // namespace polymath::service
