/**
 * @file
 * Blocking client for the pmcd compile service (docs/SERVICE.md), used
 * by `pmc --connect`, bench_service, and the tests.
 *
 * One Client wraps one connection. Requests may be pipelined (send()
 * many, then recv() the answers); responses to a pipelined burst can
 * arrive out of request order — match them by id. call() is the
 * simple one-outstanding-request convenience.
 */
#ifndef POLYMATH_SERVICE_CLIENT_H_
#define POLYMATH_SERVICE_CLIENT_H_

#include <memory>
#include <string>

#include "core/net.h"
#include "service/protocol.h"

namespace polymath::service {

class Client
{
  public:
    /** Connects to the daemon at @p socketPath.
     *  @throws UserError when nobody is listening. */
    explicit Client(const std::string &socketPath);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Sends one request line. @throws UserError when the server is
     *  gone (broken pipe). */
    void send(const Request &request);

    /** Receives the next response line. Returns false on a clean EOF
     *  (server closed the connection). @throws UserError on a
     *  malformed response. */
    bool recv(Response &response);

    /** send() + recv(). @throws UserError when the connection dies
     *  before the response arrives. */
    Response call(const Request &request);

    /** Raw connection descriptor (tests drive the wire directly). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    core::LineReader reader_;
};

} // namespace polymath::service

#endif // POLYMATH_SERVICE_CLIENT_H_
