/**
 * @file
 * The pmcd compile-service server loop (docs/SERVICE.md).
 *
 * A long-running Unix-domain-socket server sharing one process-wide
 * CompileCache and Op interner across every request. Architecture:
 *
 *   accept thread ── one reader thread per connection ── worker pool
 *
 * Readers parse JSON-line requests and either answer inline (stats,
 * malformed lines, admission rejections — all cheap) or enqueue onto
 * their connection's queue. Work is executed on the PR-2 ThreadPool;
 * each enqueue submits one pool task, and the task pulls the *next
 * request round-robin across connections*, so a chatty client that
 * pipelines thousands of requests cannot starve a neighbor: queue
 * depth costs only its own latency.
 *
 * Admission control bounds the total queued backlog (maxPending); past
 * it, requests are rejected immediately with an accounted, structured
 * response. The conservation law
 *
 *     completed + rejected == offered        (after drain)
 *
 * is the server's correctness spine: every offered work request is
 * eventually answered exactly once, including through shutdown (which
 * drains queued + in-flight work before the shutdown response leaves).
 */
#ifndef POLYMATH_SERVICE_SERVER_H_
#define POLYMATH_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/net.h"
#include "core/thread_pool.h"
#include "lower/compile_cache.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "service/protocol.h"

namespace polymath::service {

/** Server construction knobs. */
struct ServerConfig
{
    std::string socketPath;

    /** Worker threads (core::resolveJobs semantics: 0 = all hardware
     *  threads). In-flight work is bounded by this. */
    int jobs = 1;

    /** Admission bound on the total queued (not yet executing) request
     *  backlog across all clients; 0 = unbounded. */
    int maxPending = 256;

    /** When > 0, bounds the shared CompileCache to this many entries
     *  (LRU) before serving. 0 leaves the cache's capacity untouched. */
    size_t cacheEntries = 0;

    /** Cache to serve from; nullptr = CompileCache::global(). */
    lower::CompileCache *cache = nullptr;

    /**
     * Flight-recorder capacity: keep the last N completed request
     * records for the dump verb / SIGUSR1 / shutdown dumps. 0 (the
     * library default) disables request telemetry entirely — no
     * request ids on the wire, no clock reads, byte-identical
     * responses to the pre-telemetry server. The pmcd CLI defaults
     * this to 256 (docs/SERVICE.md).
     */
    size_t flightEntries = 0;

    /** Retain the full span trace of requests whose execute time
     *  exceeds this many microseconds (0 = retain none). Only
     *  meaningful with flightEntries > 0. */
    int64_t slowTraceUs = 0;
};

/** Counters exposed by the stats verb (work verbs only; stats/shutdown
 *  and malformed lines are accounted separately). */
struct ServerStats
{
    int64_t offered = 0;   ///< work requests received
    int64_t accepted = 0;  ///< admitted to a queue
    int64_t rejected = 0;  ///< refused by admission control / shutdown
    int64_t completed = 0; ///< executed and answered
    int64_t malformed = 0; ///< unparsable or unknown-verb lines
    int64_t pending = 0;   ///< queued right now
    int64_t executing = 0; ///< running on the pool right now
    int64_t connections = 0; ///< currently open connections

    /** Flat map for the stats response (includes cache counters). */
    std::map<std::string, double> toMap(
        const lower::CompileCache &cache) const;
};

/** The compile-service server. */
class Server
{
  public:
    explicit Server(ServerConfig config);

    /** Stops (draining) and joins if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Binds the socket and spawns the accept thread + worker pool.
     *  @throws UserError when the socket cannot be bound. */
    void start();

    /**
     * Programmatic shutdown, equivalent to receiving a shutdown verb:
     * stop admitting, drain queued + in-flight work, close the
     * listener and every connection. Blocks until drained. Idempotent.
     */
    void requestStop();

    /** Blocks until the server has fully stopped (shutdown verb or
     *  requestStop()) and joins every thread. */
    void wait();

    /** Snapshot of the counters. */
    ServerStats stats() const;

    const std::string &socketPath() const
    {
        return config_.socketPath;
    }

    lower::CompileCache &cache() const { return *cache_; }

    /** True when the server records per-request telemetry. */
    bool telemetryEnabled() const
    {
        return config_.flightEntries > 0;
    }

    /** Flight-recorder dump as JSON, "" when telemetry is disabled
     *  (used by the dump verb, SIGUSR1, and the shutdown dump). */
    std::string flightDumpJson() const;

  private:
    /** One queued work request with its admission-time telemetry. */
    struct Pending
    {
        Request req;
        int64_t enqueuedAtMicros = 0; ///< 0 when telemetry is off
        int64_t bytesIn = 0;          ///< request line bytes
    };

    /** Per-connection state; shared between its reader, the workers
     *  executing its requests, and the reaper. */
    struct Conn
    {
        int fd = -1;
        std::mutex writeMutex;   ///< serializes response lines
        std::deque<Pending> queue; ///< guarded by Server::mutex_
        int inFlight = 0;          ///< guarded by Server::mutex_
        bool open = true;          ///< guarded by Server::mutex_
        std::thread reader;
    };

    void acceptLoop();
    void readerLoop(const std::shared_ptr<Conn> &conn);
    void slotTask();
    void handleShutdown(Conn &conn, const Request &req);
    void beginStop();
    /** Joins and erases finished connections (caller holds mutex_). */
    void reapConnectionsLocked();
    /** Writes one response line; returns the bytes written. */
    size_t writeResponse(Conn &conn, const Response &resp);
    void sendLine(Conn &conn, const std::string &line);
    Response statsResponse(int64_t request_id) const;
    Response dumpResponse(const Request &req) const;
    Response metricsResponse(const Request &req);
    /** Assigns (or passes through) the attribution id; "" when
     *  telemetry is disabled. */
    std::string assignRequestId(const std::string &client_supplied);
    /** Global-registry snapshot + server/cache/rate synthetics. */
    obs::MetricsSnapshot metricsSnapshot() const;

    ServerConfig config_;
    lower::CompileCache *cache_ = nullptr;

    mutable std::mutex mutex_;
    std::condition_variable drained_;
    std::vector<std::shared_ptr<Conn>> conns_;
    /** Dead connections collected by reapConnectionsLocked(), awaiting
     *  an out-of-lock join + close (see that function's comment). */
    std::vector<std::shared_ptr<Conn>> reaped_;
    size_t rrCursor_ = 0;
    bool started_ = false;
    bool stopping_ = false; ///< no longer admitting work
    bool stopped_ = false;  ///< listener + connections closed

    int64_t offered_ = 0;
    int64_t accepted_ = 0;
    int64_t rejected_ = 0;
    int64_t completed_ = 0;
    int64_t malformed_ = 0;
    int64_t pending_ = 0;
    int64_t executing_ = 0;

    core::UnixListener listener_;
    std::unique_ptr<core::ThreadPool> pool_;
    std::thread acceptThread_;

    // --- telemetry (inert when config_.flightEntries == 0) ---
    obs::FlightRecorder flight_;
    std::atomic<int64_t> nextRequestId_{1};
    obs::RateWindow completedRate_;
    obs::RateWindow rejectedRate_;
    /** Baseline of the last delta scrape (metricsDelta); guarded by
     *  its own mutex so scrapes never contend with the work path. */
    std::mutex scrapeMutex_;
    obs::MetricsSnapshot lastScrape_;
    bool haveLastScrape_ = false;
};

} // namespace polymath::service

#endif // POLYMATH_SERVICE_SERVER_H_
