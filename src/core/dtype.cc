#include "core/dtype.h"

#include "core/error.h"

namespace polymath {

std::string
toString(DType t)
{
    switch (t) {
      case DType::Bin: return "bin";
      case DType::Int: return "int";
      case DType::Float: return "float";
      case DType::Str: return "str";
      case DType::Complex: return "complex";
    }
    panic("unhandled DType");
}

std::optional<DType>
dtypeFromString(const std::string &s)
{
    if (s == "bin") return DType::Bin;
    if (s == "int") return DType::Int;
    if (s == "float") return DType::Float;
    if (s == "str") return DType::Str;
    if (s == "complex") return DType::Complex;
    return std::nullopt;
}

int64_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::Bin: return 1;
      case DType::Int: return 8;
      case DType::Float: return 8;
      case DType::Str: return 0;
      case DType::Complex: return 16;
    }
    panic("unhandled DType");
}

bool
isNumeric(DType t)
{
    return t == DType::Bin || t == DType::Int || t == DType::Float ||
           t == DType::Complex;
}

DType
promote(DType a, DType b)
{
    if (!isNumeric(a) || !isNumeric(b))
        panic("promote() on non-numeric dtype");
    auto rank = [](DType t) {
        switch (t) {
          case DType::Bin: return 0;
          case DType::Int: return 1;
          case DType::Float: return 2;
          case DType::Complex: return 3;
          default: return -1;
        }
    };
    return rank(a) >= rank(b) ? a : b;
}

} // namespace polymath
