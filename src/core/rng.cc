#include "core/rng.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace polymath {

uint64_t
Rng::next()
{
    // SplitMix64 (Steele, Lea, Flood 2014): tiny, well-distributed, seedable.
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t n)
{
    if (n <= 0)
        panic("uniformInt(): n must be positive");
    return static_cast<int64_t>(uniform() * static_cast<double>(n));
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300)
        u1 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

} // namespace polymath
