/**
 * @file
 * Multi-error diagnostics engine.
 *
 * Historically the stack followed the gem5 fatal/panic model: the first
 * user error aborts compilation. A DiagnosticEngine instead *accumulates*
 * errors and warnings (each with an optional SourceLoc) so one run over a
 * PMLang file can surface every problem it contains — the parser recovers
 * at statement boundaries and keeps going, and `lower::compile` degrades
 * unregistered domains to host execution with a warning instead of dying.
 *
 * Components that receive a DiagnosticEngine report into it; components
 * that do not keep the original throw-on-first-error behavior, so the
 * engine is strictly opt-in and existing callers are unaffected.
 */
#ifndef POLYMATH_CORE_DIAGNOSTICS_H_
#define POLYMATH_CORE_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/error.h"

namespace polymath {

/** Diagnostic severity, ordered from least to most severe. */
enum class Severity : uint8_t { Note, Warning, Error };

/** Printable name: "note", "warning", "error". */
std::string toString(Severity severity);

/** One accumulated diagnostic. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string message;
    SourceLoc loc;

    /** Renders "LINE:COL: error: message" (location omitted if unknown). */
    std::string str() const;
};

/** Accumulates diagnostics instead of aborting on the first error. */
class DiagnosticEngine
{
  public:
    void report(Severity severity, const std::string &message,
                SourceLoc loc = {});
    void error(const std::string &message, SourceLoc loc = {});
    void warning(const std::string &message, SourceLoc loc = {});
    void note(const std::string &message, SourceLoc loc = {});

    bool hasErrors() const { return errors_ > 0; }
    bool empty() const { return diags_.empty(); }
    size_t errorCount() const { return errors_; }
    size_t warningCount() const { return warnings_; }

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** All diagnostics, one per line, in report order. */
    std::string str() const;

    /** Throws UserError carrying the first error, if any was collected
     *  (bridge back into throw-style callers). */
    void throwIfErrors() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t errors_ = 0;
    size_t warnings_ = 0;
};

} // namespace polymath

#endif // POLYMATH_CORE_DIAGNOSTICS_H_
