/**
 * @file
 * Minimal Unix-domain-socket primitives for the compile service
 * (docs/SERVICE.md): a listener, a blocking connect, line-buffered
 * reads, and SIGPIPE-safe whole-buffer writes.
 *
 * The service protocol is JSON-line (one request or response object per
 * '\n'-terminated line), so this layer deals only in byte streams and
 * lines; framing above it is core-agnostic. Writes use MSG_NOSIGNAL so a
 * client that disconnects mid-response surfaces as an error return, not
 * a process-killing SIGPIPE — a daemon must outlive its rudest client.
 */
#ifndef POLYMATH_CORE_NET_H_
#define POLYMATH_CORE_NET_H_

#include <cstddef>
#include <string>

namespace polymath::core {

/**
 * Largest accepted line, including the terminator (64 MiB). A peer that
 * streams an unterminated request must not grow our buffer without
 * bound; LineReader fails the connection past this.
 */
inline constexpr size_t kMaxLineBytes = 64u << 20;

/** Closes @p fd if valid (EINTR-safe); negative fds are ignored. */
void closeFd(int fd);

/**
 * Writes all of @p data to @p fd, retrying short writes and EINTR.
 * Returns false on any other error (including EPIPE from a vanished
 * peer — no signal is raised). Never throws.
 */
bool writeAll(int fd, const std::string &data);

/** Incremental '\n'-delimited reader over a blocking socket fd. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /**
     * Reads the next line into @p line (terminator stripped). Returns
     * true on success; false on clean EOF, on a read error, or when a
     * line exceeds kMaxLineBytes. A final unterminated fragment before
     * EOF is discarded — a truncated request is not a request.
     */
    bool readLine(std::string &line);

  private:
    int fd_;
    std::string buffer_;
    size_t scanned_ = 0;
    bool failed_ = false;
};

/**
 * Connects to the Unix-domain socket at @p path.
 * @returns the connected fd. @throws UserError when the path is too
 * long for sockaddr_un or the connection is refused/absent.
 */
int connectUnix(const std::string &path);

/** Listening Unix-domain socket bound to a filesystem path. */
class UnixListener
{
  public:
    UnixListener() = default;

    /** Closes and unlinks. */
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /**
     * Binds and listens on @p path, replacing a stale socket file from
     * a dead server if one is there. @throws UserError when the path is
     * too long, or bind/listen fail.
     */
    void listen(const std::string &path, int backlog = 64);

    /**
     * Accepts one connection (blocking). Returns the connection fd, or
     * -1 once the listener has been closed (the shutdown path) or on a
     * non-retryable accept error.
     */
    int accept();

    /**
     * Shuts the listening socket down (unblocking a concurrent
     * accept(), which then returns -1) and unlinks the socket file.
     * The fd itself is closed by the destructor — deferring the close
     * keeps a racing accept() from ever seeing a recycled descriptor.
     * Idempotent; safe to call from a thread other than the acceptor.
     */
    void close();

    bool listening() const { return fd_ >= 0 && !closed_; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    bool closed_ = false;
    std::string path_;
};

} // namespace polymath::core

#endif // POLYMATH_CORE_NET_H_
