/**
 * @file
 * Small string-keyed map as a sorted vector.
 *
 * Mirrors the slice of the std::map API the frontend uses (operator[],
 * at, find, count). Keys are string_views into storage the caller
 * guarantees outlives the map — the frontend points them at AST
 * strings, which outlive every build. Name resolution runs on every
 * reference the frontend touches and a scope holds at most a couple
 * dozen entries, so one flat binary-searched vector beats an rbtree
 * node allocation per name.
 */
#ifndef POLYMATH_CORE_FLAT_MAP_H_
#define POLYMATH_CORE_FLAT_MAP_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.h"

namespace polymath {

template <class T>
struct FlatStringMap
{
    std::vector<std::pair<std::string_view, T>> items;

    auto lookup(std::string_view k)
    {
        return std::lower_bound(items.begin(), items.end(), k,
                                [](const auto &a, std::string_view b) {
                                    return a.first < b;
                                });
    }
    auto lookup(std::string_view k) const
    {
        return std::lower_bound(items.begin(), items.end(), k,
                                [](const auto &a, std::string_view b) {
                                    return a.first < b;
                                });
    }

    T &operator[](std::string_view k)
    {
        auto it = lookup(k);
        if (it == items.end() || it->first != k)
            it = items.insert(it, {k, T{}});
        return it->second;
    }
    size_t count(std::string_view k) const
    {
        const auto it = lookup(k);
        return it != items.end() && it->first == k ? 1 : 0;
    }
    auto find(std::string_view k)
    {
        auto it = lookup(k);
        return it != items.end() && it->first == k ? it : items.end();
    }
    auto find(std::string_view k) const
    {
        auto it = lookup(k);
        return it != items.end() && it->first == k ? it : items.end();
    }
    T &at(std::string_view k)
    {
        auto it = lookup(k);
        if (it == items.end() || it->first != k)
            panic("unbound name '" + std::string(k) + "'");
        return it->second;
    }
    const T &at(std::string_view k) const
    {
        const auto it = lookup(k);
        if (it == items.end() || it->first != k)
            panic("unbound name '" + std::string(k) + "'");
        return it->second;
    }
    auto end() { return items.end(); }
    auto end() const { return items.end(); }
};

} // namespace polymath

#endif // POLYMATH_CORE_FLAT_MAP_H_
