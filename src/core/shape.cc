#include "core/shape.h"

#include "core/error.h"

namespace polymath {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims)
{
    for (int64_t d : dims_) {
        if (d < 0)
            panic("negative shape extent");
    }
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
{
    for (int64_t d : dims_) {
        if (d < 0)
            panic("negative shape extent");
    }
}

int64_t
Shape::dim(int axis) const
{
    if (axis < 0 || axis >= rank())
        panic("shape axis out of range");
    return dims_[static_cast<size_t>(axis)];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

std::vector<int64_t>
Shape::strides() const
{
    std::vector<int64_t> s(dims_.size());
    int64_t acc = 1;
    for (int i = rank() - 1; i >= 0; --i) {
        s[static_cast<size_t>(i)] = acc;
        acc *= dims_[static_cast<size_t>(i)];
    }
    return s;
}

int64_t
Shape::flatten(const std::vector<int64_t> &index) const
{
    if (static_cast<int>(index.size()) != rank())
        panic("flatten(): index rank mismatch");
    int64_t offset = 0;
    int64_t stride = 1;
    for (int i = rank() - 1; i >= 0; --i) {
        const auto ui = static_cast<size_t>(i);
        if (index[ui] < 0 || index[ui] >= dims_[ui])
            panic("flatten(): index out of bounds");
        offset += index[ui] * stride;
        stride *= dims_[ui];
    }
    return offset;
}

std::vector<int64_t>
Shape::unflatten(int64_t offset) const
{
    std::vector<int64_t> index(dims_.size());
    for (int i = rank() - 1; i >= 0; --i) {
        const auto ui = static_cast<size_t>(i);
        index[ui] = offset % dims_[ui];
        offset /= dims_[ui];
    }
    return index;
}

std::string
Shape::str() const
{
    if (isScalar())
        return "scalar";
    std::string out;
    for (int64_t d : dims_)
        out += "[" + std::to_string(d) + "]";
    return out;
}

} // namespace polymath
