#include "core/shape.h"

#include "core/error.h"

namespace polymath {

namespace {

std::shared_ptr<const std::vector<int64_t>>
checkedDims(std::vector<int64_t> dims)
{
    if (dims.empty())
        return nullptr; // scalar: allocation-free
    for (int64_t d : dims) {
        if (d < 0)
            panic("negative shape extent");
    }
    return std::make_shared<const std::vector<int64_t>>(std::move(dims));
}

} // namespace

Shape::Shape(std::initializer_list<int64_t> dims)
    : dims_(checkedDims(std::vector<int64_t>(dims)))
{
}

Shape::Shape(std::vector<int64_t> dims) : dims_(checkedDims(std::move(dims)))
{
}

int64_t
Shape::dim(int axis) const
{
    if (axis < 0 || axis >= rank())
        panic("shape axis out of range");
    return dims()[static_cast<size_t>(axis)];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims())
        n *= d;
    return n;
}

std::vector<int64_t>
Shape::strides() const
{
    const auto &ds = dims();
    std::vector<int64_t> s(ds.size());
    int64_t acc = 1;
    for (int i = rank() - 1; i >= 0; --i) {
        s[static_cast<size_t>(i)] = acc;
        acc *= ds[static_cast<size_t>(i)];
    }
    return s;
}

int64_t
Shape::flatten(const std::vector<int64_t> &index) const
{
    if (static_cast<int>(index.size()) != rank())
        panic("flatten(): index rank mismatch");
    const auto &ds = dims();
    int64_t offset = 0;
    int64_t stride = 1;
    for (int i = rank() - 1; i >= 0; --i) {
        const auto ui = static_cast<size_t>(i);
        if (index[ui] < 0 || index[ui] >= ds[ui])
            panic("flatten(): index out of bounds");
        offset += index[ui] * stride;
        stride *= ds[ui];
    }
    return offset;
}

std::vector<int64_t>
Shape::unflatten(int64_t offset) const
{
    const auto &ds = dims();
    std::vector<int64_t> index(ds.size());
    for (int i = rank() - 1; i >= 0; --i) {
        const auto ui = static_cast<size_t>(i);
        index[ui] = offset % ds[ui];
        offset /= ds[ui];
    }
    return index;
}

std::string
Shape::str() const
{
    if (isScalar())
        return "scalar";
    std::string out;
    for (int64_t d : dims())
        out += "[" + std::to_string(d) + "]";
    return out;
}

} // namespace polymath
