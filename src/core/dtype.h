/**
 * @file
 * PMLang element data types (Table I of the paper: bin, int, float, str,
 * complex) and helpers for size/printing/parsing.
 */
#ifndef POLYMATH_CORE_DTYPE_H_
#define POLYMATH_CORE_DTYPE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace polymath {

/** Element types usable in PMLang declarations. */
enum class DType : uint8_t {
    Bin,     ///< 1-bit boolean, stored as a byte
    Int,     ///< 64-bit signed integer
    Float,   ///< 64-bit IEEE double (PMLang "float")
    Str,     ///< variable-length string (host side only)
    Complex, ///< complex<double>
};

/** Returns the PMLang keyword for @p t ("float", "int", ...). */
std::string toString(DType t);

/** Parses a PMLang type keyword; empty when @p s is not a type. */
std::optional<DType> dtypeFromString(const std::string &s);

/** Storage size in bytes of one element of @p t on an accelerator.
 *  Str has no accelerator representation and reports 0. */
int64_t dtypeSize(DType t);

/** True for types on which arithmetic is defined (Int, Float, Complex, Bin).*/
bool isNumeric(DType t);

/** Result type of a binary arithmetic op between @p a and @p b
 *  (the "wider" numeric type). */
DType promote(DType a, DType b);

} // namespace polymath

#endif // POLYMATH_CORE_DTYPE_H_
