#include "core/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace polymath {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

int64_t
countCodeLines(const std::string &source, const std::string &line_comment)
{
    int64_t count = 0;
    for (const auto &raw : split(source, '\n')) {
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (!line_comment.empty() && line.rfind(line_comment, 0) == 0)
            continue;
        ++count;
    }
    return count;
}

} // namespace polymath
