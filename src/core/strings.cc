#include "core/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <system_error>

namespace polymath {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

namespace {

std::string
toCharsFloat(double value, std::chars_format fmt, int precision)
{
    // to_chars with an explicit precision is specified to produce the
    // same characters printf would under the "C" locale ('g'/'f'
    // conversion), making the result locale-independent by construction.
    // Non-finite values render as printf's "inf"/"-inf"/"nan".
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value < 0 ? "-inf" : "inf";
    char buf[512]; // %f of 1e308 needs ~310 characters
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), value, fmt, precision);
    if (ec != std::errc{})
        return "?"; // cannot happen with the buffer above
    return std::string(buf, ptr);
}

} // namespace

std::string
formatG(double value, int precision)
{
    return toCharsFloat(value, std::chars_format::general, precision);
}

std::string
formatF(double value, int precision)
{
    return toCharsFloat(value, std::chars_format::fixed, precision);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

int64_t
countCodeLines(const std::string &source, const std::string &line_comment)
{
    int64_t count = 0;
    for (const auto &raw : split(source, '\n')) {
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (!line_comment.empty() && line.rfind(line_comment, 0) == 0)
            continue;
        ++count;
    }
    return count;
}

} // namespace polymath
