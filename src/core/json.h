/**
 * @file
 * Minimal JSON value, parser, and locale-independent number emission
 * (no external dependencies), shared by the srDFG serializer, the bench
 * artifact pipeline, and tools/bench_compare.
 *
 * Parsing and emission both go through std::from_chars/std::to_chars,
 * so neither consults the global locale (DESIGN.md §"Locale"): "1.5"
 * parses and prints as "1.5" even under a comma-decimal locale.
 */
#ifndef POLYMATH_CORE_JSON_H_
#define POLYMATH_CORE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace polymath::json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One JSON value; accessors throw UserError on a type mismatch. */
struct Value
{
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        data = nullptr;

    bool isNull() const
    {
        return std::holds_alternative<std::nullptr_t>(data);
    }
    double num() const;
    int64_t asInt() const { return static_cast<int64_t>(num()); }
    const std::string &str() const;
    const Array &arr() const;
    const Object &obj() const;

    /** Member lookup; @throws UserError when @p key is absent. */
    const Value &at(const std::string &key) const;

    /** True when this is an object containing @p key. */
    bool has(const std::string &key) const;
};

/** Parses @p text as one JSON document. @throws UserError on malformed
 *  input (including trailing characters). */
Value parse(const std::string &text);

/**
 * Locale-independent double → JSON. to_chars emits the shortest decimal
 * string that round-trips to the same bits (so -0.0, subnormals and
 * 1e308 all survive), where printf %g goes through the C locale and
 * can emit comma decimals. Infinities and NaN are not representable as
 * JSON numbers, so they travel as the strings "inf"/"-inf"/"nan".
 */
std::string numberToJson(double value);

/** Inverse of numberToJson: a plain number or one of the non-finite
 *  marker strings. */
double numberFromJson(const Value &v);

/** JSON string literal with escaping for '"', '\\', and '\n'. */
std::string quote(const std::string &s);

} // namespace polymath::json

#endif // POLYMATH_CORE_JSON_H_
