/**
 * @file
 * Dense tensor runtime used by the srDFG interpreter and the workloads.
 *
 * Storage policy: Bin/Int/Float elements live in a double buffer (every value
 * the stack manipulates fits in the 53-bit exact-integer range of a double);
 * Complex elements live in a complex<double> buffer. This keeps the
 * interpreter simple while preserving PMLang's five dtype distinctions via the
 * DType tag.
 */
#ifndef POLYMATH_CORE_TENSOR_H_
#define POLYMATH_CORE_TENSOR_H_

#include <complex>
#include <string>
#include <vector>

#include "core/dtype.h"
#include "core/shape.h"

namespace polymath {

/** A dense, row-major tensor of a single numeric DType. */
class Tensor
{
  public:
    /** Creates a zero-filled tensor. */
    Tensor() : Tensor(DType::Float, Shape{}) {}
    Tensor(DType dtype, Shape shape);

    /** Convenience: scalar double. */
    static Tensor scalar(double value);
    /** Convenience: scalar complex. */
    static Tensor scalar(std::complex<double> value);
    /** Convenience: rank-1 float tensor from values. */
    static Tensor vec(std::vector<double> values);
    /** Rank-N float tensor from flat values (size must match shape). */
    static Tensor fromFlat(Shape shape, std::vector<double> values);

    DType dtype() const { return dtype_; }
    const Shape &shape() const { return shape_; }
    int64_t numel() const { return shape_.numel(); }
    bool isComplex() const { return dtype_ == DType::Complex; }

    /** Element access for real-typed tensors (flat offset). */
    double at(int64_t offset) const;
    double &at(int64_t offset);

    /** Element access by multi-dimensional index. */
    double at(const std::vector<int64_t> &index) const;
    double &at(const std::vector<int64_t> &index);

    /** Element access for complex tensors (flat offset). */
    std::complex<double> cat(int64_t offset) const;
    std::complex<double> &cat(int64_t offset);

    /** Reads an element as complex regardless of dtype. */
    std::complex<double> asComplex(int64_t offset) const;

    /** Returns the single element of a scalar tensor. */
    double scalarValue() const;

    /** Underlying real buffer (valid for non-complex tensors). */
    const std::vector<double> &real() const { return real_; }
    std::vector<double> &real() { return real_; }

    /** Underlying complex buffer (valid for complex tensors). */
    const std::vector<std::complex<double>> &cplx() const { return cplx_; }
    std::vector<std::complex<double>> &cplx() { return cplx_; }

    /** Total accelerator-side footprint in bytes. */
    int64_t bytes() const { return numel() * dtypeSize(dtype_); }

    /** Copies this tensor converted to @p target dtype. */
    Tensor cast(DType target) const;

    /** Short human-readable rendering (truncated for large tensors). */
    std::string str() const;

    /** Max |a-b| across elements; tensors must agree in shape. */
    static double maxAbsDiff(const Tensor &a, const Tensor &b);

  private:
    DType dtype_;
    Shape shape_;
    std::vector<double> real_;
    std::vector<std::complex<double>> cplx_;
};

} // namespace polymath

#endif // POLYMATH_CORE_TENSOR_H_
