#include "core/diagnostics.h"

namespace polymath {

std::string
toString(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "diagnostic";
}

std::string
Diagnostic::str() const
{
    std::string out;
    if (loc.valid())
        out += loc.str() + ": ";
    out += toString(severity) + ": " + message;
    return out;
}

void
DiagnosticEngine::report(Severity severity, const std::string &message,
                         SourceLoc loc)
{
    if (severity == Severity::Error)
        ++errors_;
    else if (severity == Severity::Warning)
        ++warnings_;
    diags_.push_back(Diagnostic{severity, message, loc});
}

void
DiagnosticEngine::error(const std::string &message, SourceLoc loc)
{
    report(Severity::Error, message, loc);
}

void
DiagnosticEngine::warning(const std::string &message, SourceLoc loc)
{
    report(Severity::Warning, message, loc);
}

void
DiagnosticEngine::note(const std::string &message, SourceLoc loc)
{
    report(Severity::Note, message, loc);
}

std::string
DiagnosticEngine::str() const
{
    std::string out;
    for (const auto &d : diags_)
        out += d.str() + "\n";
    return out;
}

void
DiagnosticEngine::throwIfErrors() const
{
    for (const auto &d : diags_) {
        if (d.severity == Severity::Error)
            throw UserError(d.message, d.loc);
    }
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    errors_ = 0;
    warnings_ = 0;
}

} // namespace polymath
