#include "core/thread_pool.h"

#include <cstdlib>

#include "core/error.h"

namespace polymath::core {

int
defaultJobs()
{
    const char *env = std::getenv("POLYMATH_JOBS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || value < 0)
        return 1;
    return resolveJobs(static_cast<int>(value));
}

int
resolveJobs(int jobs)
{
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }
    // Oversubscription beyond the core count is allowed (like make -j):
    // determinism must not depend on the machine, so a -j4 run on one
    // core still exercises four workers. A hard cap bounds runaway input.
    return jobs < kMaxJobs ? jobs : kMaxJobs;
}

ThreadPool::ThreadPool(int jobs)
{
    const int n = resolveJobs(jobs);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task(); // packaged_task captures exceptions into the future
    }
}

} // namespace polymath::core
