#include "core/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace polymath {

namespace {

// The level is read on every inform/warn call from any thread (the -jN
// pool workers log freely), so it must be atomic; relaxed ordering is
// enough for a verbosity switch. Output itself is serialized through a
// mutex so concurrent messages never interleave mid-line.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_output_mutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const std::string &message)
{
    if (logLevel() >= LogLevel::Info) {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        std::fprintf(stderr, "info: %s\n", message.c_str());
    }
}

void
warn(const std::string &message)
{
    if (logLevel() >= LogLevel::Warn) {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        std::fprintf(stderr, "warn: %s\n", message.c_str());
    }
}

} // namespace polymath
