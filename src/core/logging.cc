#include "core/logging.h"

#include <cstdio>

namespace polymath {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const std::string &message)
{
    if (g_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
warn(const std::string &message)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

} // namespace polymath
