#include "core/net.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/error.h"

namespace polymath::core {

namespace {

/** Fills @p addr from @p path. @throws UserError when it does not fit. */
void
fillAddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty())
        fatal("unix socket path must not be empty");
    if (path.size() >= sizeof(addr.sun_path))
        fatal("unix socket path too long (" + std::to_string(path.size()) +
              " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
              "): '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

} // namespace

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    // POSIX leaves the fd state after EINTR unspecified; on Linux the fd
    // is closed either way, so a retry loop would risk closing a
    // recycled descriptor. One call is the safe idiom.
    ::close(fd);
}

bool
writeAll(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a disconnected peer yields EPIPE instead of
        // raising SIGPIPE and killing the daemon.
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
LineReader::readLine(std::string &line)
{
    if (failed_)
        return false;
    for (;;) {
        const size_t newline = buffer_.find('\n', scanned_);
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            scanned_ = 0;
            return true;
        }
        scanned_ = buffer_.size();
        if (buffer_.size() >= kMaxLineBytes) {
            failed_ = true; // unbounded line: poison the connection
            return false;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            return false; // EOF; any partial line is discarded
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failed_ = true;
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    fillAddr(path, addr);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("cannot create unix socket: " +
              std::string(std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        closeFd(fd);
        fatal("cannot connect to '" + path +
              "': " + std::string(std::strerror(err)));
    }
    return fd;
}

UnixListener::~UnixListener()
{
    close();
    closeFd(fd_);
    fd_ = -1;
}

void
UnixListener::listen(const std::string &path, int backlog)
{
    sockaddr_un addr;
    fillAddr(path, addr);
    close();
    closeFd(fd_);
    fd_ = -1;
    closed_ = false;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("cannot create unix socket: " +
              std::string(std::strerror(errno)));
    // A stale socket file from a crashed server would fail bind with
    // EADDRINUSE; if nobody answers on it, it is garbage — remove it.
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0) {
        closeFd(fd);
        fatal("'" + path + "' already has a listening server");
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        closeFd(fd);
        fatal("cannot bind '" + path +
              "': " + std::string(std::strerror(err)));
    }
    if (::listen(fd, backlog) != 0) {
        const int err = errno;
        closeFd(fd);
        ::unlink(path.c_str());
        fatal("cannot listen on '" + path +
              "': " + std::string(std::strerror(err)));
    }
    fd_ = fd;
    path_ = path;
}

int
UnixListener::accept()
{
    for (;;) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn >= 0)
            return conn;
        if (errno == EINTR)
            continue;
        return -1; // listener closed (EBADF after close()) or fatal
    }
}

void
UnixListener::close()
{
    if (fd_ < 0 || closed_)
        return;
    closed_ = true;
    // shutdown() wakes a blocked accept() (it returns EINVAL on Linux);
    // the fd stays open until destruction so the acceptor can never
    // race against a recycled descriptor number.
    ::shutdown(fd_, SHUT_RDWR);
    if (!path_.empty())
        ::unlink(path_.c_str());
    path_.clear();
}

} // namespace polymath::core
