/**
 * @file
 * Deterministic pseudo-random generator (SplitMix64 core) used by every
 * synthetic dataset so results are bit-reproducible across runs and
 * platforms, independent of libstdc++'s distribution implementations.
 */
#ifndef POLYMATH_CORE_RNG_H_
#define POLYMATH_CORE_RNG_H_

#include <cstdint>

namespace polymath {

/** Small deterministic RNG with uniform/gaussian helpers. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be positive. */
    int64_t uniformInt(int64_t n);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with mean/stddev. */
    double gaussian(double mean, double stddev);

  private:
    uint64_t state_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace polymath

#endif // POLYMATH_CORE_RNG_H_
