/**
 * @file
 * Multi-dimensional shapes for PMLang values and srDFG edge metadata.
 */
#ifndef POLYMATH_CORE_SHAPE_H_
#define POLYMATH_CORE_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace polymath {

/**
 * A tensor shape: an ordered list of non-negative extents.
 * A rank-0 shape denotes a scalar.
 *
 * Immutable after construction; the extent list is shared behind a
 * refcount so copying a Shape never allocates (shapes ride on every
 * srDFG value and are copied heavily by Graph::clone()).
 */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims);
    explicit Shape(std::vector<int64_t> dims);

    /** Number of dimensions; 0 for scalars. */
    int rank() const { return static_cast<int>(dims().size()); }

    /** Extent of dimension @p axis (0-based). */
    int64_t dim(int axis) const;

    /** Total element count (1 for scalars). */
    int64_t numel() const;

    /** True iff rank() == 0. */
    bool isScalar() const { return !dims_ || dims_->empty(); }

    /** Row-major strides; empty for scalars. */
    std::vector<int64_t> strides() const;

    /** Row-major flat offset of @p index (must have rank() entries). */
    int64_t flatten(const std::vector<int64_t> &index) const;

    /** Inverse of flatten(). */
    std::vector<int64_t> unflatten(int64_t offset) const;

    const std::vector<int64_t> &dims() const
    {
        static const std::vector<int64_t> kNone;
        return dims_ ? *dims_ : kNone;
    }

    /** "[a][b][c]" rendering; "scalar" for rank 0. */
    std::string str() const;

    bool operator==(const Shape &other) const
    {
        return dims_ == other.dims_ || dims() == other.dims();
    }

  private:
    std::shared_ptr<const std::vector<int64_t>> dims_;
};

} // namespace polymath

#endif // POLYMATH_CORE_SHAPE_H_
