#include "core/tensor.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace polymath {

Tensor::Tensor(DType dtype, Shape shape)
    : dtype_(dtype), shape_(std::move(shape))
{
    if (!isNumeric(dtype_))
        panic("Tensor only supports numeric dtypes");
    if (dtype_ == DType::Complex)
        cplx_.assign(static_cast<size_t>(shape_.numel()), {0.0, 0.0});
    else
        real_.assign(static_cast<size_t>(shape_.numel()), 0.0);
}

Tensor
Tensor::scalar(double value)
{
    Tensor t(DType::Float, Shape{});
    t.real_[0] = value;
    return t;
}

Tensor
Tensor::scalar(std::complex<double> value)
{
    Tensor t(DType::Complex, Shape{});
    t.cplx_[0] = value;
    return t;
}

Tensor
Tensor::vec(std::vector<double> values)
{
    Tensor t(DType::Float, Shape{static_cast<int64_t>(values.size())});
    t.real_ = std::move(values);
    return t;
}

Tensor
Tensor::fromFlat(Shape shape, std::vector<double> values)
{
    if (static_cast<int64_t>(values.size()) != shape.numel())
        panic("fromFlat(): value count does not match shape");
    Tensor t(DType::Float, std::move(shape));
    t.real_ = std::move(values);
    return t;
}

double
Tensor::at(int64_t offset) const
{
    if (isComplex())
        panic("real at() on complex tensor");
    return real_[static_cast<size_t>(offset)];
}

double &
Tensor::at(int64_t offset)
{
    if (isComplex())
        panic("real at() on complex tensor");
    return real_[static_cast<size_t>(offset)];
}

double
Tensor::at(const std::vector<int64_t> &index) const
{
    return at(shape_.flatten(index));
}

double &
Tensor::at(const std::vector<int64_t> &index)
{
    return at(shape_.flatten(index));
}

std::complex<double>
Tensor::cat(int64_t offset) const
{
    if (!isComplex())
        panic("cat() on real tensor");
    return cplx_[static_cast<size_t>(offset)];
}

std::complex<double> &
Tensor::cat(int64_t offset)
{
    if (!isComplex())
        panic("cat() on real tensor");
    return cplx_[static_cast<size_t>(offset)];
}

std::complex<double>
Tensor::asComplex(int64_t offset) const
{
    if (isComplex())
        return cplx_[static_cast<size_t>(offset)];
    return {real_[static_cast<size_t>(offset)], 0.0};
}

double
Tensor::scalarValue() const
{
    if (numel() != 1)
        panic("scalarValue() on non-scalar tensor");
    if (isComplex())
        return cplx_[0].real();
    return real_[0];
}

Tensor
Tensor::cast(DType target) const
{
    if (target == dtype_)
        return *this;
    Tensor out(target, shape_);
    const int64_t n = numel();
    if (target == DType::Complex) {
        for (int64_t i = 0; i < n; ++i)
            out.cplx_[static_cast<size_t>(i)] = asComplex(i);
        return out;
    }
    for (int64_t i = 0; i < n; ++i) {
        double v = isComplex() ? cplx_[static_cast<size_t>(i)].real()
                               : real_[static_cast<size_t>(i)];
        if (target == DType::Int)
            v = std::trunc(v);
        else if (target == DType::Bin)
            v = (v != 0.0) ? 1.0 : 0.0;
        out.real_[static_cast<size_t>(i)] = v;
    }
    return out;
}

std::string
Tensor::str() const
{
    std::string out = toString(dtype_) + shape_.str() + " {";
    const int64_t n = std::min<int64_t>(numel(), 8);
    for (int64_t i = 0; i < n; ++i) {
        if (i)
            out += ", ";
        if (isComplex()) {
            auto c = cplx_[static_cast<size_t>(i)];
            out += "(" + std::to_string(c.real()) + "," +
                   std::to_string(c.imag()) + ")";
        } else {
            out += std::to_string(real_[static_cast<size_t>(i)]);
        }
    }
    if (numel() > n)
        out += ", ...";
    return out + "}";
}

double
Tensor::maxAbsDiff(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        panic("maxAbsDiff(): shape mismatch");
    double worst = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i)
        worst = std::max(worst, std::abs(a.asComplex(i) - b.asComplex(i)));
    return worst;
}

} // namespace polymath
