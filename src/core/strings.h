/**
 * @file
 * Small string helpers shared across the stack.
 */
#ifndef POLYMATH_CORE_STRINGS_H_
#define POLYMATH_CORE_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace polymath {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Locale-independent `%.<precision>g` via std::to_chars: byte-identical
 * to printf under the "C" locale, but immune to comma-decimal locales
 * (printf's %g consults the global locale; see DESIGN.md §"Locale").
 * Report/table code must use these instead of format("%g"/"%f").
 */
std::string formatG(double value, int precision);

/** Locale-independent `%.<precision>f` via std::to_chars. */
std::string formatF(double value, int precision);

/** Splits @p s on @p sep; keeps empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strips leading/trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Joins items with @p sep. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** Counts non-blank, non-comment-only lines of source text.
 *  @p line_comment is the comment leader ("//" or "#"). */
int64_t countCodeLines(const std::string &source,
                       const std::string &line_comment);

} // namespace polymath

#endif // POLYMATH_CORE_STRINGS_H_
