/**
 * @file
 * Error types shared across the PolyMath stack.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - UserError ("fatal"): the input program or configuration is at fault;
 *    the stack cannot continue but is itself behaving correctly.
 *  - InternalError ("panic"): an invariant of the stack itself was violated.
 */
#ifndef POLYMATH_CORE_ERROR_H_
#define POLYMATH_CORE_ERROR_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace polymath {

/** A position in PMLang source text (1-based line/column). */
struct SourceLoc
{
    int32_t line = 0;
    int32_t column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Raised when the user's program or configuration is invalid. */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string &message, SourceLoc loc = {});

    /** Location in PMLang source, if the error is tied to one. */
    SourceLoc loc() const { return loc_; }

    /** The message without the location prefix what() carries (used by
     *  DiagnosticEngine, which tracks locations separately). */
    const std::string &message() const { return message_; }

  private:
    std::string message_;
    SourceLoc loc_;
};

/** Raised when an internal invariant of the stack is violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &message);
};

/** Throws InternalError with a standard prefix. Never returns. */
[[noreturn]] void panic(const std::string &message);

/** Throws UserError. Never returns. */
[[noreturn]] void fatal(const std::string &message, SourceLoc loc = {});

} // namespace polymath

#endif // POLYMATH_CORE_ERROR_H_
