/**
 * @file
 * Minimal status-message facility in the style of gem5's logging.hh.
 *
 * inform() — normal operating messages.
 * warn()   — something may be off; execution continues.
 * Both honor a global verbosity switch so tests and benches stay quiet.
 *
 * Thread-safety contract: every function here may be called from any
 * thread (the `-jN` pool workers log freely). The level is an atomic,
 * and message output is serialized so concurrent inform()/warn() calls
 * never interleave mid-line.
 */
#ifndef POLYMATH_CORE_LOGGING_H_
#define POLYMATH_CORE_LOGGING_H_

#include <string>

namespace polymath {

/** Verbosity levels for stack-status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2 };

/** Sets the global log level (default: Warn). */
void setLogLevel(LogLevel level);

/** Returns the current global log level. */
LogLevel logLevel();

/** Prints an informational message when level >= Info. */
void inform(const std::string &message);

/** Prints a warning when level >= Warn. */
void warn(const std::string &message);

} // namespace polymath

#endif // POLYMATH_CORE_LOGGING_H_
