#include "core/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>

#include "core/error.h"
#include "core/strings.h"

namespace polymath::json {

double
Value::num() const
{
    if (!std::holds_alternative<double>(data))
        fatal("json: expected number");
    return std::get<double>(data);
}

const std::string &
Value::str() const
{
    if (!std::holds_alternative<std::string>(data))
        fatal("json: expected string");
    return std::get<std::string>(data);
}

const Array &
Value::arr() const
{
    if (!std::holds_alternative<Array>(data))
        fatal("json: expected array");
    return std::get<Array>(data);
}

const Object &
Value::obj() const
{
    if (!std::holds_alternative<Object>(data))
        fatal("json: expected object");
    return std::get<Object>(data);
}

const Value &
Value::at(const std::string &key) const
{
    const auto &o = obj();
    auto it = o.find(key);
    if (it == o.end())
        fatal("json: missing key '" + key + "'");
    return it->second;
}

bool
Value::has(const std::string &key) const
{
    if (!std::holds_alternative<Object>(data))
        return false;
    return std::get<Object>(data).count(key) > 0;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value parse()
    {
        auto v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fatal("json: trailing characters");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fatal("json: unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fatal(format("json: expected '%c' at offset %zu", c, pos_));
        ++pos_;
    }

    Value parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Value{parseString()};
        if (c == 't') {
            literal("true");
            return Value{true};
        }
        if (c == 'f') {
            literal("false");
            return Value{false};
        }
        if (c == 'n') {
            literal("null");
            return Value{nullptr};
        }
        return parseNumber();
    }

    void literal(const char *word)
    {
        skipWs();
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fatal("json: bad literal");
            ++pos_;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fatal("json: bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case '/': c = '/'; break;
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case 'u': {
                      out += parseUnicodeEscape();
                      continue;
                  }
                  default: fatal("json: unsupported escape");
                }
            }
            out += c;
        }
        if (pos_ >= text_.size())
            fatal("json: unterminated string");
        ++pos_; // closing quote
        return out;
    }

    /** Consumes the 4 hex digits of a \\uXXXX escape (the leading
     *  "\\u" is already consumed) and returns the UTF-8 encoding.
     *  Surrogate pairs are not decoded — the service protocol only
     *  emits \\u00XX for control characters — but lone code points up
     *  to U+FFFF round-trip. */
    std::string parseUnicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fatal("json: bad \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
            else
                fatal("json: bad \\u escape");
        }
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
        return out;
    }

    Value parseNumber()
    {
        skipWs();
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (start == pos_)
            fatal("json: expected a value");
        // from_chars, not stod: stod honors the global locale (a
        // comma-decimal locale rejects "1.5") and throws raw exceptions.
        double value = 0;
        const char *begin = text_.data() + start;
        const char *end = text_.data() + pos_;
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec == std::errc::result_out_of_range)
            fatal("json: number out of range: " +
                  text_.substr(start, pos_ - start));
        if (ec != std::errc{} || ptr != end)
            fatal("json: malformed number: " +
                  text_.substr(start, pos_ - start));
        return Value{value};
    }

    Value parseArray()
    {
        expect('[');
        Array out;
        if (peek() == ']') {
            ++pos_;
            return Value{std::move(out)};
        }
        while (true) {
            out.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value{std::move(out)};
        }
    }

    Value parseObject()
    {
        expect('{');
        Object out;
        if (peek() == '}') {
            ++pos_;
            return Value{std::move(out)};
        }
        while (true) {
            const std::string key = parseString();
            expect(':');
            out.emplace(key, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value{std::move(out)};
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

std::string
numberToJson(double value)
{
    if (std::isnan(value))
        return "\"nan\"";
    if (std::isinf(value))
        return value < 0 ? "\"-inf\"" : "\"inf\"";
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    if (ec != std::errc{})
        panic("json: double does not fit the to_chars buffer");
    return std::string(buf, ptr);
}

double
numberFromJson(const Value &v)
{
    if (std::holds_alternative<std::string>(v.data)) {
        const auto &s = std::get<std::string>(v.data);
        if (s == "nan")
            return std::numeric_limits<double>::quiet_NaN();
        if (s == "inf")
            return std::numeric_limits<double>::infinity();
        if (s == "-inf")
            return -std::numeric_limits<double>::infinity();
        fatal("json: expected a number or inf/-inf/nan, got \"" + s +
              "\"");
    }
    return v.num();
}

std::string
quote(const std::string &s)
{
    // Every control character is escaped, so quoted strings never
    // contain a raw newline — the invariant the JSON-line service
    // protocol's framing depends on (docs/SERVICE.md).
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; continue;
          case '\\': out += "\\\\"; continue;
          case '\n': out += "\\n"; continue;
          case '\t': out += "\\t"; continue;
          case '\r': out += "\\r"; continue;
          default: break;
        }
        const auto uc = static_cast<unsigned char>(c);
        if (uc < 0x20) {
            static const char hex[] = "0123456789abcdef";
            out += "\\u00";
            out += hex[uc >> 4];
            out += hex[uc & 0xf];
            continue;
        }
        out += c;
    }
    return out + "\"";
}

} // namespace polymath::json
