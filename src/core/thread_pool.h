/**
 * @file
 * Fixed-size thread pool for the parallel suite driver.
 *
 * The pool exists to fan independent compile/simulate work across cores
 * while keeping reports *bit-identical* to a serial run: work items are
 * submitted as index-addressed tasks and results land in an output vector
 * slot per index, so aggregation order never depends on thread timing.
 *
 * With `jobs <= 1` every helper runs the work inline on the calling
 * thread — no threads are spawned and the semantics (including exception
 * propagation order) are exactly those of a plain loop. This is the
 * default unless the user opts in via `-j`/`POLYMATH_JOBS`.
 */
#ifndef POLYMATH_CORE_THREAD_POOL_H_
#define POLYMATH_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace polymath::core {

/**
 * Worker count from the environment: `POLYMATH_JOBS` when set to a
 * positive integer (0 means "all hardware threads"), else 1 (serial).
 * Malformed values fall back to 1 rather than erroring — the knob is a
 * performance hint, not configuration.
 */
int defaultJobs();

/** Upper bound on worker threads (defensive cap, not a tuning knob). */
inline constexpr int kMaxJobs = 256;

/** Resolves a jobs request: 0 (or negative) means "all hardware
 *  threads"; positive values pass through, capped at kMaxJobs.
 *  Oversubscription past the core count is allowed. */
int resolveJobs(int jobs);

/** Fixed-size pool of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawns @p jobs workers (resolved via resolveJobs()). */
    explicit ThreadPool(int jobs);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int jobs() const { return static_cast<int>(workers_.size()); }

    /** Enqueues @p task; the future carries its result or exception. */
    template <class Fn>
    auto submit(Fn &&task) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(task));
        std::future<R> result = packaged->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push([packaged] { (*packaged)(); });
        }
        ready_.notify_one();
        return result;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable ready_;
    bool stopping_ = false;
};

/**
 * Deterministic parallel map: evaluates `fn(i)` for every i in [0, n)
 * and returns the results indexed by i — the output is independent of
 * scheduling. With `jobs <= 1` (or n <= 1) the loop runs inline. The
 * first exception thrown by any task is rethrown after all tasks finish.
 */
template <class Fn>
auto
parallelMap(int jobs, int64_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn, int64_t>>
{
    using R = std::invoke_result_t<Fn, int64_t>;
    std::vector<R> out;
    jobs = resolveJobs(jobs);
    if (jobs <= 1 || n <= 1) {
        out.reserve(static_cast<size_t>(n > 0 ? n : 0));
        for (int64_t i = 0; i < n; ++i)
            out.push_back(fn(i));
        return out;
    }
    ThreadPool pool(jobs);
    std::vector<std::future<R>> futures;
    futures.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { return fn(i); }));
    out.reserve(static_cast<size_t>(n));
    std::exception_ptr first_error;
    for (auto &f : futures) {
        try {
            out.push_back(f.get());
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return out;
}

} // namespace polymath::core

#endif // POLYMATH_CORE_THREAD_POOL_H_
