#include "core/error.h"

namespace polymath {

std::string
SourceLoc::str() const
{
    if (!valid())
        return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

UserError::UserError(const std::string &message, SourceLoc loc)
    : std::runtime_error(loc.valid() ? loc.str() + ": " + message : message),
      message_(message), loc_(loc)
{
}

InternalError::InternalError(const std::string &message)
    : std::logic_error("internal error: " + message)
{
}

void
panic(const std::string &message)
{
    throw InternalError(message);
}

void
fatal(const std::string &message, SourceLoc loc)
{
    throw UserError(message, loc);
}

} // namespace polymath
