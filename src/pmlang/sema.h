/**
 * @file
 * Semantic analysis for PMLang programs.
 *
 * Validates, before srDFG construction:
 *  - component/reduction name uniqueness and existence of the entry point;
 *  - type-modifier access rules (input/param read-only, output write-only
 *    until first assigned, state read-write — Section II-A);
 *  - index-variable scoping: every index used in an assignment is bound by
 *    the statement's left-hand side or an enclosing reduction axis;
 *  - reference arity (scalar or fully-indexed) and call arity/compatibility;
 *  - built-in function arity and reduction-name resolution;
 *  - absence of recursive component instantiation.
 *
 * All violations raise UserError with the offending source location.
 */
#ifndef POLYMATH_PMLANG_SEMA_H_
#define POLYMATH_PMLANG_SEMA_H_

#include <string>

#include "pmlang/ast.h"

namespace polymath::lang {

/**
 * Analyzes @p prog. @p entry is the top-level component ("main" for whole
 * programs; any component name for library-style analysis).
 * @throws UserError on the first semantic violation.
 */
void analyze(const Program &prog, const std::string &entry = "main");

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_SEMA_H_
