/**
 * @file
 * Recursive-descent parser for PMLang.
 */
#ifndef POLYMATH_PMLANG_PARSER_H_
#define POLYMATH_PMLANG_PARSER_H_

#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "pmlang/ast.h"
#include "pmlang/token.h"

namespace polymath::lang {

/**
 * Parses PMLang source text into a Program.
 * @throws UserError (with source location) on the first syntax error.
 */
Program parse(const std::string &source);

/**
 * Parses PMLang source text, recovering from syntax errors at statement
 * and declaration boundaries so every error in the file lands in @p diag
 * in one pass. Returns the (possibly partial) program of the statements
 * that did parse; callers must check diag.hasErrors() before using it.
 * Lexical errors are unrecoverable and yield an empty program with one
 * diagnostic.
 */
Program parseWithRecovery(const std::string &source, DiagnosticEngine &diag);

/** Internal parser class; exposed for unit tests of sub-productions. */
class Parser
{
  public:
    /** With a DiagnosticEngine, syntax errors are collected and the parser
     *  resynchronizes; without one, the first error throws UserError. */
    explicit Parser(std::vector<Token> tokens,
                    DiagnosticEngine *diag = nullptr);

    /** Parses a whole translation unit. */
    Program parseProgram();

    /** Parses a single expression (must consume all input up to Eof). */
    ExprPtr parseStandaloneExpr();

  private:
    const Token &peek(int ahead = 0) const;
    const Token &advance();
    bool check(Tok kind) const { return peek().is(kind); }
    bool match(Tok kind);
    const Token &expect(Tok kind, const std::string &context);
    [[noreturn]] void errorHere(const std::string &message) const;

    /** Error recovery: skip tokens to a statement boundary (past a ';' or
     *  up to a token that can begin a statement / close the body). */
    void synchronizeStmt();

    /** Error recovery: skip tokens to the next plausible top-level
     *  declaration start. */
    void synchronizeTopLevel();

    ComponentDecl parseComponent();
    ReductionDecl parseReduction();
    ArgDecl parseArgDecl();
    StmtPtr parseStmt();
    StmtPtr parseIndexDecl();
    StmtPtr parseVarDecl(DType type);
    StmtPtr parseAssignOrCall(Domain domain);
    std::vector<ExprPtr> parseDims();

    ExprPtr parseExpr();
    ExprPtr parseTernary();
    ExprPtr parseOr();
    ExprPtr parseAnd();
    ExprPtr parseComparison();
    ExprPtr parseAdditive();
    ExprPtr parseMultiplicative();
    ExprPtr parsePower();
    ExprPtr parseUnary();
    ExprPtr parsePrimary();
    ExprPtr parseIdentExpr();

    std::vector<Token> toks_;
    size_t pos_ = 0;
    DiagnosticEngine *diag_ = nullptr;
};

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_PARSER_H_
