/**
 * @file
 * Recursive-descent parser for PMLang.
 */
#ifndef POLYMATH_PMLANG_PARSER_H_
#define POLYMATH_PMLANG_PARSER_H_

#include <string>
#include <vector>

#include "pmlang/ast.h"
#include "pmlang/token.h"

namespace polymath::lang {

/**
 * Parses PMLang source text into a Program.
 * @throws UserError (with source location) on the first syntax error.
 */
Program parse(const std::string &source);

/** Internal parser class; exposed for unit tests of sub-productions. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens);

    /** Parses a whole translation unit. */
    Program parseProgram();

    /** Parses a single expression (must consume all input up to Eof). */
    ExprPtr parseStandaloneExpr();

  private:
    const Token &peek(int ahead = 0) const;
    const Token &advance();
    bool check(Tok kind) const { return peek().is(kind); }
    bool match(Tok kind);
    const Token &expect(Tok kind, const std::string &context);
    [[noreturn]] void errorHere(const std::string &message) const;

    ComponentDecl parseComponent();
    ReductionDecl parseReduction();
    ArgDecl parseArgDecl();
    StmtPtr parseStmt();
    StmtPtr parseIndexDecl();
    StmtPtr parseVarDecl(DType type);
    StmtPtr parseAssignOrCall(Domain domain);
    std::vector<ExprPtr> parseDims();

    ExprPtr parseExpr();
    ExprPtr parseTernary();
    ExprPtr parseOr();
    ExprPtr parseAnd();
    ExprPtr parseComparison();
    ExprPtr parseAdditive();
    ExprPtr parseMultiplicative();
    ExprPtr parsePower();
    ExprPtr parseUnary();
    ExprPtr parsePrimary();
    ExprPtr parseIdentExpr();

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_PARSER_H_
