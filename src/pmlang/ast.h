/**
 * @file
 * Abstract syntax tree for PMLang (Section II of the paper).
 *
 * A program is a set of component declarations plus custom reduction
 * definitions. Components carry modifier-typed arguments
 * (input/output/state/param); bodies are index declarations, local variable
 * declarations, assignments over index domains, and component instantiations
 * optionally annotated with a target domain.
 */
#ifndef POLYMATH_PMLANG_AST_H_
#define POLYMATH_PMLANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dtype.h"
#include "core/error.h"

namespace polymath::lang {

/** Argument type modifiers (Table I). */
enum class Modifier : uint8_t { Input, Output, State, Param };

/** Target-domain annotations for component instantiations (Section II-D). */
enum class Domain : uint8_t { None, RBT, GA, DSP, DA, DL };

/** Returns the PMLang keyword for @p m. */
std::string toString(Modifier m);

/** Returns the annotation keyword for @p d ("RBT", ...; "" for None). */
std::string toString(Domain d);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node kinds. */
enum class ExprKind : uint8_t {
    Number,  ///< numeric literal
    Ref,     ///< variable reference, optionally fully indexed
    Unary,   ///< -x, !x
    Binary,  ///< arithmetic / comparison / logical
    Ternary, ///< c ? a : b
    Call,    ///< built-in function application, e.g. sigmoid(x)
    Reduce,  ///< group reduction, e.g. sum[i][j: j != i](body)
};

/** One reduction axis: an index-variable name plus optional Boolean guard. */
struct ReduceAxis
{
    std::string index;
    ExprPtr cond; ///< may be null
    SourceLoc loc;
};

/**
 * A PMLang expression. Modeled as a single tagged node (rather than a class
 * hierarchy) so tree transforms stay local to one type; only the fields of
 * the active kind are populated.
 */
struct Expr
{
    ExprKind kind = ExprKind::Number;
    SourceLoc loc;

    // Number
    double value = 0.0;
    bool isIntLit = false;

    // Ref / Call / Reduce: name of variable, function, or reduction op
    std::string name;

    // Ref: index expressions; Call: arguments
    std::vector<ExprPtr> args;

    // Unary/Binary: operator spelling ("+", "-", "*", "/", "%", "^", "<",
    // "<=", ">", ">=", "==", "!=", "&&", "||", "!", "neg")
    std::string op;
    ExprPtr lhs;
    ExprPtr rhs;
    ExprPtr third; ///< Ternary else-branch (lhs=cond, rhs=then)

    // Reduce
    std::vector<ReduceAxis> axes;
    ExprPtr body;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t { IndexDecl, VarDecl, Assign, Call };

/** One declared index range: name[lo:hi], bounds inclusive. */
struct IndexSpec
{
    std::string name;
    ExprPtr lo;
    ExprPtr hi;
    SourceLoc loc;
};

/** One declared local variable with optional dimensions. */
struct LocalDecl
{
    std::string name;
    std::vector<ExprPtr> dims;
    SourceLoc loc;
};

/** A statement inside a component body. */
struct Stmt
{
    StmtKind kind = StmtKind::Assign;
    SourceLoc loc;

    // IndexDecl
    std::vector<IndexSpec> indexSpecs;

    // VarDecl
    DType declType = DType::Float;
    std::vector<LocalDecl> locals;

    // Assign: target[indices...] = value
    std::string target;
    std::vector<ExprPtr> targetIndices;
    ExprPtr value;

    // Call: DOMAIN: callee(args...)
    Domain domain = Domain::None;
    std::string callee;
    std::vector<ExprPtr> callArgs;
};
using StmtPtr = std::unique_ptr<Stmt>;

/** One component argument declaration. */
struct ArgDecl
{
    Modifier mod = Modifier::Input;
    DType type = DType::Float;
    std::string name;
    std::vector<ExprPtr> dims; ///< literals or symbolic dim names
    SourceLoc loc;
};

/** A component: the reusable building block of PMLang programs. */
struct ComponentDecl
{
    std::string name;
    std::vector<ArgDecl> args;
    std::vector<StmtPtr> body;
    SourceLoc loc;
};

/** A custom group reduction: `reduction name(a,b) = expr;`. */
struct ReductionDecl
{
    std::string name;
    std::string paramA;
    std::string paramB;
    ExprPtr body;
    SourceLoc loc;
};

/** A whole PMLang translation unit. */
struct Program
{
    std::vector<ComponentDecl> components;
    std::vector<ReductionDecl> reductions;

    /** Finds a component by name; nullptr when absent. */
    const ComponentDecl *findComponent(const std::string &name) const;

    /** Finds a custom reduction by name; nullptr when absent. */
    const ReductionDecl *findReduction(const std::string &name) const;
};

/** Deep-copies an expression tree. */
ExprPtr cloneExpr(const Expr &e);

/** Renders an expression back to PMLang-like text (for diagnostics/tests). */
std::string exprToString(const Expr &e);

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_AST_H_
