/**
 * @file
 * Hand-written lexer for PMLang.
 *
 * Supports //-line and C-style block comments, decimal int/float literals
 * with exponents, double-quoted strings, and the operator set of Section II.
 */
#ifndef POLYMATH_PMLANG_LEXER_H_
#define POLYMATH_PMLANG_LEXER_H_

#include <string>
#include <vector>

#include "pmlang/token.h"

namespace polymath::lang {

/** Converts PMLang source text into a token stream. */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Lexes the entire input; the final token is always Eof.
     *  @throws UserError on malformed input. */
    std::vector<Token> lexAll();

  private:
    char peek(int ahead = 0) const;
    char advance();
    bool atEnd() const;
    void skipTrivia();
    Token lexNumber();
    Token lexIdentOrKeyword();
    Token lexString();
    Token make(Tok kind, std::string text) const;
    SourceLoc here() const;

    std::string src_;
    size_t pos_ = 0;
    int32_t line_ = 1;
    size_t lineStart_ = 0; ///< offset of the current line (column = pos - this)
    SourceLoc tokenStart_;
};

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_LEXER_H_
