/**
 * @file
 * Token definitions for the PMLang lexer.
 */
#ifndef POLYMATH_PMLANG_TOKEN_H_
#define POLYMATH_PMLANG_TOKEN_H_

#include <cstdint>
#include <string>

#include "core/error.h"

namespace polymath::lang {

/** Lexical token kinds. */
enum class Tok : uint8_t {
    // literals / identifiers
    Ident, IntLit, FloatLit, StrLit,
    // keywords
    KwInput, KwOutput, KwState, KwParam, KwIndex, KwReduction,
    KwBin, KwInt, KwFloat, KwStr, KwComplex,
    // domain annotations
    KwRBT, KwGA, KwDSP, KwDA, KwDL,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semicolon, Colon, Question,
    // operators
    Assign, Plus, Minus, Star, Slash, Percent, Caret,
    Lt, Gt, Le, Ge, EqEq, NotEq, AndAnd, OrOr, Not,
    // end of input
    Eof,
};

/** Returns a printable name for @p kind ("'+'", "identifier", ...). */
std::string tokName(Tok kind);

/** One lexical token with its source text and location. */
struct Token
{
    Tok kind = Tok::Eof;
    std::string text;
    SourceLoc loc;

    bool is(Tok k) const { return kind == k; }
};

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_TOKEN_H_
