#include "pmlang/builtins.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/error.h"

namespace polymath::lang {

namespace {

const std::unordered_map<std::string, int> &
functionTable()
{
    static const std::unordered_map<std::string, int> table = {
        {"sin", 1},   {"cos", 1},     {"tan", 1},   {"exp", 1},
        {"ln", 1},    {"log", 1},     {"sqrt", 1},  {"abs", 1},
        {"sigmoid", 1}, {"relu", 1},  {"tanh", 1},  {"erf", 1},
        {"sign", 1},  {"floor", 1},   {"ceil", 1},  {"gauss", 1},
        {"re", 1},    {"im", 1},      {"conj", 1},
        {"pow", 2},   {"min", 2},     {"max", 2},
    };
    return table;
}

} // namespace

bool
isBuiltinFunction(const std::string &name)
{
    return functionTable().count(name) > 0;
}

int
builtinArity(const std::string &name)
{
    auto it = functionTable().find(name);
    if (it == functionTable().end())
        panic("builtinArity(): unknown builtin " + name);
    return it->second;
}

bool
isBuiltinReduction(const std::string &name)
{
    return name == "sum" || name == "prod" || name == "max" || name == "min";
}

const std::vector<std::string> &
builtinFunctionNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &[name, arity] : functionTable())
            out.push_back(name);
        return out;
    }();
    return names;
}

double
evalBuiltin1(const std::string &name, double x)
{
    if (name == "sin") return std::sin(x);
    if (name == "cos") return std::cos(x);
    if (name == "tan") return std::tan(x);
    if (name == "exp") return std::exp(x);
    if (name == "ln" || name == "log") return std::log(x);
    if (name == "sqrt") return std::sqrt(x);
    if (name == "abs") return std::abs(x);
    if (name == "sigmoid") return 1.0 / (1.0 + std::exp(-x));
    if (name == "relu") return x > 0.0 ? x : 0.0;
    if (name == "tanh") return std::tanh(x);
    if (name == "erf") return std::erf(x);
    if (name == "sign") return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0);
    if (name == "floor") return std::floor(x);
    if (name == "ceil") return std::ceil(x);
    if (name == "gauss") return std::exp(-x * x);
    if (name == "re") return x;
    if (name == "im") return 0.0;
    if (name == "conj") return x;
    panic("evalBuiltin1(): unknown builtin " + name);
}

double
evalBuiltin2(const std::string &name, double a, double b)
{
    if (name == "pow") return std::pow(a, b);
    if (name == "min") return a < b ? a : b;
    if (name == "max") return a > b ? a : b;
    panic("evalBuiltin2(): unknown builtin " + name);
}

std::complex<double>
evalBuiltin1Complex(const std::string &name, std::complex<double> x)
{
    if (name == "exp") return std::exp(x);
    if (name == "sqrt") return std::sqrt(x);
    if (name == "abs") return {std::abs(x), 0.0};
    if (name == "conj") return std::conj(x);
    if (name == "re") return {x.real(), 0.0};
    if (name == "im") return {x.imag(), 0.0};
    fatal("builtin '" + name + "' is not defined for complex operands");
}

double
reductionIdentity(const std::string &name)
{
    if (name == "sum") return 0.0;
    if (name == "prod") return 1.0;
    if (name == "max") return -std::numeric_limits<double>::infinity();
    if (name == "min") return std::numeric_limits<double>::infinity();
    panic("reductionIdentity(): unknown reduction " + name);
}

double
applyBuiltinReduction(const std::string &name, double acc, double x)
{
    if (name == "sum") return acc + x;
    if (name == "prod") return acc * x;
    if (name == "max") return acc > x ? acc : x;
    if (name == "min") return acc < x ? acc : x;
    panic("applyBuiltinReduction(): unknown reduction " + name);
}

BinaryOp
resolveBinaryOp(const std::string &op)
{
    static const std::unordered_map<std::string, BinaryOp> table = {
        {"+", BinaryOp::Add},  {"-", BinaryOp::Sub},
        {"*", BinaryOp::Mul},  {"/", BinaryOp::Div},
        {"%", BinaryOp::Mod},  {"^", BinaryOp::Pow},
        {"<", BinaryOp::Lt},   {"<=", BinaryOp::Le},
        {">", BinaryOp::Gt},   {">=", BinaryOp::Ge},
        {"==", BinaryOp::Eq},  {"!=", BinaryOp::Ne},
        {"&&", BinaryOp::And}, {"||", BinaryOp::Or},
    };
    auto it = table.find(op);
    if (it == table.end())
        panic("unknown binary operator " + op);
    return it->second;
}

UnaryOp
resolveUnaryOp(const std::string &op)
{
    if (op == "neg")
        return UnaryOp::Neg;
    if (op == "!" || op == "not")
        return UnaryOp::Not;
    panic("unknown unary operator " + op);
}

double
applyBinaryOp(BinaryOp op, double l, double r)
{
    switch (op) {
      case BinaryOp::Add: return l + r;
      case BinaryOp::Sub: return l - r;
      case BinaryOp::Mul: return l * r;
      case BinaryOp::Div: return l / r;
      case BinaryOp::Mod: return std::fmod(l, r);
      case BinaryOp::Pow: return std::pow(l, r);
      case BinaryOp::Lt: return l < r;
      case BinaryOp::Le: return l <= r;
      case BinaryOp::Gt: return l > r;
      case BinaryOp::Ge: return l >= r;
      case BinaryOp::Eq: return l == r;
      case BinaryOp::Ne: return l != r;
      case BinaryOp::And: return l != 0.0 && r != 0.0;
      case BinaryOp::Or: return l != 0.0 || r != 0.0;
    }
    panic("unhandled BinaryOp");
}

} // namespace polymath::lang
