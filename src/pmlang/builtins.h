/**
 * @file
 * Registry of PMLang built-in scalar functions and group reductions
 * (Section II-C: non-linear operations and reduction operations).
 */
#ifndef POLYMATH_PMLANG_BUILTINS_H_
#define POLYMATH_PMLANG_BUILTINS_H_

#include <complex>
#include <string>
#include <vector>

namespace polymath::lang {

/** True when @p name is a built-in scalar function usable in expressions. */
bool isBuiltinFunction(const std::string &name);

/** Arity of a built-in function (1 or 2). @pre isBuiltinFunction(name). */
int builtinArity(const std::string &name);

/** True when @p name is a built-in group reduction (sum/prod/max/min). */
bool isBuiltinReduction(const std::string &name);

/** All built-in function names (for documentation/benches). */
const std::vector<std::string> &builtinFunctionNames();

/** Evaluates a unary built-in on a real scalar. */
double evalBuiltin1(const std::string &name, double x);

/** Evaluates a binary built-in on real scalars. */
double evalBuiltin2(const std::string &name, double a, double b);

/** Evaluates a unary built-in on a complex scalar (subset: exp, sqrt, abs,
 *  conj, re, im). @throws UserError for functions without complex support. */
std::complex<double> evalBuiltin1Complex(const std::string &name,
                                         std::complex<double> x);

/** Identity element of a built-in reduction (0 for sum, 1 for prod,
 *  -inf for max, +inf for min). */
double reductionIdentity(const std::string &name);

/** Applies a built-in reduction combiner. */
double applyBuiltinReduction(const std::string &name, double acc, double x);

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_BUILTINS_H_
