/**
 * @file
 * Registry of PMLang built-in scalar functions and group reductions
 * (Section II-C: non-linear operations and reduction operations).
 */
#ifndef POLYMATH_PMLANG_BUILTINS_H_
#define POLYMATH_PMLANG_BUILTINS_H_

#include <complex>
#include <string>
#include <vector>

namespace polymath::lang {

/** True when @p name is a built-in scalar function usable in expressions. */
bool isBuiltinFunction(const std::string &name);

/** Arity of a built-in function (1 or 2). @pre isBuiltinFunction(name). */
int builtinArity(const std::string &name);

/** True when @p name is a built-in group reduction (sum/prod/max/min). */
bool isBuiltinReduction(const std::string &name);

/** All built-in function names (for documentation/benches). */
const std::vector<std::string> &builtinFunctionNames();

/** Evaluates a unary built-in on a real scalar. */
double evalBuiltin1(const std::string &name, double x);

/** Evaluates a binary built-in on real scalars. */
double evalBuiltin2(const std::string &name, double a, double b);

/** Evaluates a unary built-in on a complex scalar (subset: exp, sqrt, abs,
 *  conj, re, im). @throws UserError for functions without complex support. */
std::complex<double> evalBuiltin1Complex(const std::string &name,
                                         std::complex<double> x);

/** Identity element of a built-in reduction (0 for sum, 1 for prod,
 *  -inf for max, +inf for min). */
double reductionIdentity(const std::string &name);

/** Applies a built-in reduction combiner. */
double applyBuiltinReduction(const std::string &name, double acc, double x);

/** Resolved PMLang binary-operator spellings ("+", "<=", "&&", ...), for
 *  dispatch without per-use string comparison. */
enum class BinaryOp : uint8_t {
    Add, Sub, Mul, Div, Mod, Pow,
    Lt, Le, Gt, Ge, Eq, Ne, And, Or,
};

/** Resolves an Expr::Binary operator spelling.
 *  @throws InternalError on unknown spellings. */
BinaryOp resolveBinaryOp(const std::string &op);

/** Resolved Expr::Unary operator spellings ("neg", "!"). */
enum class UnaryOp : uint8_t { Neg, Not };

/** Resolves an Expr::Unary operator spelling.
 *  @throws InternalError on unknown spellings. */
UnaryOp resolveUnaryOp(const std::string &op);

/** Applies a resolved binary operator to real scalars (logic ops treat
 *  non-zero as true and return 0/1). */
double applyBinaryOp(BinaryOp op, double l, double r);

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_BUILTINS_H_
