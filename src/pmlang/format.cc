#include "pmlang/format.h"

namespace polymath::lang {

namespace {

std::string
dimsText(const std::vector<ExprPtr> &dims)
{
    std::string out;
    for (const auto &d : dims)
        out += "[" + exprToString(*d) + "]";
    return out;
}

} // namespace

std::string
formatStmt(const Stmt &stmt, int indent)
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    switch (stmt.kind) {
      case StmtKind::IndexDecl: {
        std::string out = pad + "index ";
        for (size_t i = 0; i < stmt.indexSpecs.size(); ++i) {
            const auto &spec = stmt.indexSpecs[i];
            if (i)
                out += ", ";
            out += spec.name + "[" + exprToString(*spec.lo) + ":" +
                   exprToString(*spec.hi) + "]";
        }
        return out + ";\n";
      }
      case StmtKind::VarDecl: {
        std::string out = pad + toString(stmt.declType) + " ";
        for (size_t i = 0; i < stmt.locals.size(); ++i) {
            if (i)
                out += ", ";
            out += stmt.locals[i].name + dimsText(stmt.locals[i].dims);
        }
        return out + ";\n";
      }
      case StmtKind::Assign: {
        std::string out = pad + stmt.target;
        for (const auto &ix : stmt.targetIndices)
            out += "[" + exprToString(*ix) + "]";
        return out + " = " + exprToString(*stmt.value) + ";\n";
      }
      case StmtKind::Call: {
        std::string out = pad;
        if (stmt.domain != Domain::None)
            out += toString(stmt.domain) + ": ";
        out += stmt.callee + "(";
        for (size_t i = 0; i < stmt.callArgs.size(); ++i) {
            if (i)
                out += ", ";
            out += exprToString(*stmt.callArgs[i]);
        }
        return out + ");\n";
      }
    }
    panic("unhandled StmtKind");
}

std::string
formatComponent(const ComponentDecl &component)
{
    std::string out = component.name + "(";
    for (size_t i = 0; i < component.args.size(); ++i) {
        const auto &arg = component.args[i];
        if (i)
            out += ", ";
        out += toString(arg.mod) + " " + toString(arg.type) + " " +
               arg.name + dimsText(arg.dims);
    }
    out += ") {\n";
    for (const auto &stmt : component.body)
        out += formatStmt(*stmt);
    return out + "}\n";
}

std::string
formatProgram(const Program &program)
{
    std::string out;
    for (const auto &red : program.reductions) {
        out += "reduction " + red.name + "(" + red.paramA + ", " +
               red.paramB + ") = " + exprToString(*red.body) + ";\n";
    }
    if (!program.reductions.empty())
        out += "\n";
    for (size_t i = 0; i < program.components.size(); ++i) {
        if (i)
            out += "\n";
        out += formatComponent(program.components[i]);
    }
    return out;
}

} // namespace polymath::lang
