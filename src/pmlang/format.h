/**
 * @file
 * PMLang pretty-printer: renders an AST back to canonical source text.
 *
 * Guarantees round-trip stability: parse(format(parse(s))) produces the
 * same AST as parse(s), and format is idempotent on its own output (the
 * property tests enforce both on every bundled workload). Used by tooling
 * (`pmc --format`) and as a structural-equality oracle in tests.
 */
#ifndef POLYMATH_PMLANG_FORMAT_H_
#define POLYMATH_PMLANG_FORMAT_H_

#include <string>

#include "pmlang/ast.h"

namespace polymath::lang {

/** Renders a whole program in canonical form. */
std::string formatProgram(const Program &program);

/** Renders one component. */
std::string formatComponent(const ComponentDecl &component);

/** Renders one statement at @p indent spaces. */
std::string formatStmt(const Stmt &stmt, int indent = 4);

} // namespace polymath::lang

#endif // POLYMATH_PMLANG_FORMAT_H_
