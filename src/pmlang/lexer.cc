#include "pmlang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace polymath::lang {

namespace {

const std::unordered_map<std::string, Tok> &
keywordMap()
{
    static const std::unordered_map<std::string, Tok> kw = {
        {"input", Tok::KwInput},     {"output", Tok::KwOutput},
        {"state", Tok::KwState},     {"param", Tok::KwParam},
        {"index", Tok::KwIndex},     {"reduction", Tok::KwReduction},
        {"bin", Tok::KwBin},         {"int", Tok::KwInt},
        {"float", Tok::KwFloat},     {"str", Tok::KwStr},
        {"complex", Tok::KwComplex}, {"RBT", Tok::KwRBT},
        {"GA", Tok::KwGA},           {"DSP", Tok::KwDSP},
        {"DA", Tok::KwDA},           {"DL", Tok::KwDL},
    };
    return kw;
}

} // namespace

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char
Lexer::peek(int ahead) const
{
    const size_t p = pos_ + static_cast<size_t>(ahead);
    return p < src_.size() ? src_[p] : '\0';
}

char
Lexer::advance()
{
    const char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

bool
Lexer::atEnd() const
{
    return pos_ >= src_.size();
}

SourceLoc
Lexer::here() const
{
    return {line_, col_};
}

void
Lexer::skipTrivia()
{
    while (!atEnd()) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            const SourceLoc open = here();
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (atEnd())
                fatal("unterminated block comment", open);
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token
Lexer::make(Tok kind, std::string text) const
{
    return Token{kind, std::move(text), tokenStart_};
}

Token
Lexer::lexNumber()
{
    std::string text;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
        text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        text += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
            text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
        const char sign = peek(1);
        const char first = (sign == '+' || sign == '-') ? peek(2) : sign;
        if (std::isdigit(static_cast<unsigned char>(first))) {
            is_float = true;
            text += advance();
            if (peek() == '+' || peek() == '-')
                text += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                text += advance();
        }
    }
    return make(is_float ? Tok::FloatLit : Tok::IntLit, std::move(text));
}

Token
Lexer::lexIdentOrKeyword()
{
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        text += advance();
    const auto &kw = keywordMap();
    if (auto it = kw.find(text); it != kw.end())
        return make(it->second, std::move(text));
    return make(Tok::Ident, std::move(text));
}

Token
Lexer::lexString()
{
    const SourceLoc open = tokenStart_;
    advance(); // opening quote
    std::string text;
    while (!atEnd() && peek() != '"') {
        if (peek() == '\n')
            fatal("newline in string literal", open);
        text += advance();
    }
    if (atEnd())
        fatal("unterminated string literal", open);
    advance(); // closing quote
    return make(Tok::StrLit, std::move(text));
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> out;
    while (true) {
        skipTrivia();
        tokenStart_ = here();
        if (atEnd()) {
            out.push_back(make(Tok::Eof, ""));
            return out;
        }
        const char c = peek();
        if (std::isdigit(static_cast<unsigned char>(c))) {
            out.push_back(lexNumber());
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            out.push_back(lexIdentOrKeyword());
            continue;
        }
        if (c == '"') {
            out.push_back(lexString());
            continue;
        }
        advance();
        switch (c) {
          case '(': out.push_back(make(Tok::LParen, "(")); break;
          case ')': out.push_back(make(Tok::RParen, ")")); break;
          case '{': out.push_back(make(Tok::LBrace, "{")); break;
          case '}': out.push_back(make(Tok::RBrace, "}")); break;
          case '[': out.push_back(make(Tok::LBracket, "[")); break;
          case ']': out.push_back(make(Tok::RBracket, "]")); break;
          case ',': out.push_back(make(Tok::Comma, ",")); break;
          case ';': out.push_back(make(Tok::Semicolon, ";")); break;
          case '?': out.push_back(make(Tok::Question, "?")); break;
          case '+': out.push_back(make(Tok::Plus, "+")); break;
          case '-': out.push_back(make(Tok::Minus, "-")); break;
          case '*': out.push_back(make(Tok::Star, "*")); break;
          case '/': out.push_back(make(Tok::Slash, "/")); break;
          case '%': out.push_back(make(Tok::Percent, "%")); break;
          case '^': out.push_back(make(Tok::Caret, "^")); break;
          case ':':
            out.push_back(make(Tok::Colon, ":"));
            break;
          case '=':
            if (peek() == '=') {
                advance();
                out.push_back(make(Tok::EqEq, "=="));
            } else {
                out.push_back(make(Tok::Assign, "="));
            }
            break;
          case '<':
            if (peek() == '=') {
                advance();
                out.push_back(make(Tok::Le, "<="));
            } else {
                out.push_back(make(Tok::Lt, "<"));
            }
            break;
          case '>':
            if (peek() == '=') {
                advance();
                out.push_back(make(Tok::Ge, ">="));
            } else {
                out.push_back(make(Tok::Gt, ">"));
            }
            break;
          case '!':
            if (peek() == '=') {
                advance();
                out.push_back(make(Tok::NotEq, "!="));
            } else {
                out.push_back(make(Tok::Not, "!"));
            }
            break;
          case '&':
            if (peek() == '&') {
                advance();
                out.push_back(make(Tok::AndAnd, "&&"));
                break;
            }
            fatal("unexpected character '&'", tokenStart_);
          case '|':
            if (peek() == '|') {
                advance();
                out.push_back(make(Tok::OrOr, "||"));
                break;
            }
            fatal("unexpected character '|'", tokenStart_);
          default:
            fatal(std::string("unexpected character '") + c + "'",
                  tokenStart_);
        }
    }
}

} // namespace polymath::lang
