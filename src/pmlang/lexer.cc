#include "pmlang/lexer.h"

#include <array>
#include <string_view>
#include <unordered_map>

namespace polymath::lang {

namespace {

const std::unordered_map<std::string_view, Tok> &
keywordMap()
{
    static const std::unordered_map<std::string_view, Tok> kw = {
        {"input", Tok::KwInput},     {"output", Tok::KwOutput},
        {"state", Tok::KwState},     {"param", Tok::KwParam},
        {"index", Tok::KwIndex},     {"reduction", Tok::KwReduction},
        {"bin", Tok::KwBin},         {"int", Tok::KwInt},
        {"float", Tok::KwFloat},     {"str", Tok::KwStr},
        {"complex", Tok::KwComplex}, {"RBT", Tok::KwRBT},
        {"GA", Tok::KwGA},           {"DSP", Tok::KwDSP},
        {"DA", Tok::KwDA},           {"DL", Tok::KwDL},
    };
    return kw;
}

// Branch-light character classes (PMLang source is ASCII); the
// locale-aware std::is* calls are far too slow for the per-character
// scanning loops below.
enum : uint8_t { kSpace = 1, kDigit = 2, kAlpha = 4 };

constexpr std::array<uint8_t, 256>
makeCharClass()
{
    std::array<uint8_t, 256> t{};
    for (int c = 0; c < 256; ++c) {
        const auto uc = static_cast<size_t>(c);
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
            c == '\f')
            t[uc] |= kSpace;
        if (c >= '0' && c <= '9')
            t[uc] |= kDigit;
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_')
            t[uc] |= kAlpha;
    }
    return t;
}

constexpr std::array<uint8_t, 256> kCharClass = makeCharClass();

bool
isSpace(char c)
{
    return (kCharClass[static_cast<uint8_t>(c)] & kSpace) != 0;
}

bool
isDigit(char c)
{
    return (kCharClass[static_cast<uint8_t>(c)] & kDigit) != 0;
}

bool
isIdentStart(char c)
{
    return (kCharClass[static_cast<uint8_t>(c)] & kAlpha) != 0;
}

bool
isIdent(char c)
{
    return (kCharClass[static_cast<uint8_t>(c)] & (kAlpha | kDigit)) != 0;
}

} // namespace

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char
Lexer::peek(int ahead) const
{
    const size_t p = pos_ + static_cast<size_t>(ahead);
    return p < src_.size() ? src_[p] : '\0';
}

char
Lexer::advance()
{
    const char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        lineStart_ = pos_;
    }
    return c;
}

bool
Lexer::atEnd() const
{
    return pos_ >= src_.size();
}

SourceLoc
Lexer::here() const
{
    // Column is derived from the current line's start offset instead of
    // being updated per character in the scanning loops.
    return {line_, static_cast<int32_t>(pos_ - lineStart_) + 1};
}

void
Lexer::skipTrivia()
{
    const size_t n = src_.size();
    while (pos_ < n) {
        const char c = src_[pos_];
        if (isSpace(c)) {
            ++pos_;
            if (c == '\n') {
                ++line_;
                lineStart_ = pos_;
            }
        } else if (c == '/' && peek(1) == '/') {
            while (pos_ < n && src_[pos_] != '\n')
                ++pos_;
        } else if (c == '/' && peek(1) == '*') {
            const SourceLoc open = here();
            pos_ += 2;
            while (pos_ < n && !(src_[pos_] == '*' && peek(1) == '/'))
                advance();
            if (pos_ >= n)
                fatal("unterminated block comment", open);
            pos_ += 2;
        } else {
            return;
        }
    }
}

Token
Lexer::make(Tok kind, std::string text) const
{
    return Token{kind, std::move(text), tokenStart_};
}

Token
Lexer::lexNumber()
{
    const size_t start = pos_;
    bool is_float = false;
    while (isDigit(peek()))
        ++pos_;
    if (peek() == '.' && isDigit(peek(1))) {
        is_float = true;
        ++pos_;
        while (isDigit(peek()))
            ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
        const char sign = peek(1);
        const char first = (sign == '+' || sign == '-') ? peek(2) : sign;
        if (isDigit(first)) {
            is_float = true;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (isDigit(peek()))
                ++pos_;
        }
    }
    return make(is_float ? Tok::FloatLit : Tok::IntLit,
                src_.substr(start, pos_ - start));
}

Token
Lexer::lexIdentOrKeyword()
{
    const size_t start = pos_;
    while (isIdent(peek()))
        ++pos_;
    const std::string_view text(src_.data() + start, pos_ - start);
    const auto &kw = keywordMap();
    if (auto it = kw.find(text); it != kw.end())
        return make(it->second, std::string(text));
    return make(Tok::Ident, std::string(text));
}

Token
Lexer::lexString()
{
    const SourceLoc open = tokenStart_;
    ++pos_; // opening quote
    const size_t start = pos_;
    while (!atEnd() && peek() != '"') {
        if (peek() == '\n')
            fatal("newline in string literal", open);
        ++pos_;
    }
    if (atEnd())
        fatal("unterminated string literal", open);
    const size_t len = pos_ - start;
    ++pos_; // closing quote
    return make(Tok::StrLit, src_.substr(start, len));
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> out;
    out.reserve(src_.size() / 3 + 8);
    while (true) {
        skipTrivia();
        tokenStart_ = here();
        if (atEnd()) {
            out.push_back(make(Tok::Eof, ""));
            return out;
        }
        const char c = peek();
        if (isDigit(c)) {
            out.push_back(lexNumber());
            continue;
        }
        if (isIdentStart(c)) {
            out.push_back(lexIdentOrKeyword());
            continue;
        }
        if (c == '"') {
            out.push_back(lexString());
            continue;
        }
        ++pos_;
        switch (c) {
          case '(': out.push_back(make(Tok::LParen, "(")); break;
          case ')': out.push_back(make(Tok::RParen, ")")); break;
          case '{': out.push_back(make(Tok::LBrace, "{")); break;
          case '}': out.push_back(make(Tok::RBrace, "}")); break;
          case '[': out.push_back(make(Tok::LBracket, "[")); break;
          case ']': out.push_back(make(Tok::RBracket, "]")); break;
          case ',': out.push_back(make(Tok::Comma, ",")); break;
          case ';': out.push_back(make(Tok::Semicolon, ";")); break;
          case '?': out.push_back(make(Tok::Question, "?")); break;
          case '+': out.push_back(make(Tok::Plus, "+")); break;
          case '-': out.push_back(make(Tok::Minus, "-")); break;
          case '*': out.push_back(make(Tok::Star, "*")); break;
          case '/': out.push_back(make(Tok::Slash, "/")); break;
          case '%': out.push_back(make(Tok::Percent, "%")); break;
          case '^': out.push_back(make(Tok::Caret, "^")); break;
          case ':':
            out.push_back(make(Tok::Colon, ":"));
            break;
          case '=':
            if (peek() == '=') {
                ++pos_;
                out.push_back(make(Tok::EqEq, "=="));
            } else {
                out.push_back(make(Tok::Assign, "="));
            }
            break;
          case '<':
            if (peek() == '=') {
                ++pos_;
                out.push_back(make(Tok::Le, "<="));
            } else {
                out.push_back(make(Tok::Lt, "<"));
            }
            break;
          case '>':
            if (peek() == '=') {
                ++pos_;
                out.push_back(make(Tok::Ge, ">="));
            } else {
                out.push_back(make(Tok::Gt, ">"));
            }
            break;
          case '!':
            if (peek() == '=') {
                ++pos_;
                out.push_back(make(Tok::NotEq, "!="));
            } else {
                out.push_back(make(Tok::Not, "!"));
            }
            break;
          case '&':
            if (peek() == '&') {
                ++pos_;
                out.push_back(make(Tok::AndAnd, "&&"));
                break;
            }
            fatal("unexpected character '&'", tokenStart_);
          case '|':
            if (peek() == '|') {
                ++pos_;
                out.push_back(make(Tok::OrOr, "||"));
                break;
            }
            fatal("unexpected character '|'", tokenStart_);
          default:
            fatal(std::string("unexpected character '") + c + "'",
                  tokenStart_);
        }
    }
}

} // namespace polymath::lang
