#include "pmlang/token.h"

namespace polymath::lang {

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::StrLit: return "string literal";
      case Tok::KwInput: return "'input'";
      case Tok::KwOutput: return "'output'";
      case Tok::KwState: return "'state'";
      case Tok::KwParam: return "'param'";
      case Tok::KwIndex: return "'index'";
      case Tok::KwReduction: return "'reduction'";
      case Tok::KwBin: return "'bin'";
      case Tok::KwInt: return "'int'";
      case Tok::KwFloat: return "'float'";
      case Tok::KwStr: return "'str'";
      case Tok::KwComplex: return "'complex'";
      case Tok::KwRBT: return "'RBT'";
      case Tok::KwGA: return "'GA'";
      case Tok::KwDSP: return "'DSP'";
      case Tok::KwDA: return "'DA'";
      case Tok::KwDL: return "'DL'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semicolon: return "';'";
      case Tok::Colon: return "':'";
      case Tok::Question: return "'?'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Caret: return "'^'";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::Le: return "'<='";
      case Tok::Ge: return "'>='";
      case Tok::EqEq: return "'=='";
      case Tok::NotEq: return "'!='";
      case Tok::AndAnd: return "'&&'";
      case Tok::OrOr: return "'||'";
      case Tok::Not: return "'!'";
      case Tok::Eof: return "end of input";
    }
    panic("unhandled token kind");
}

} // namespace polymath::lang
