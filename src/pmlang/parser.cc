#include "pmlang/parser.h"

#include <charconv>
#include <utility>

#include "obs/trace.h"
#include "pmlang/lexer.h"

namespace polymath::lang {

namespace {

/** Maps a domain-annotation token to its Domain value. */
Domain
domainFor(Tok kind)
{
    switch (kind) {
      case Tok::KwRBT: return Domain::RBT;
      case Tok::KwGA: return Domain::GA;
      case Tok::KwDSP: return Domain::DSP;
      case Tok::KwDA: return Domain::DA;
      case Tok::KwDL: return Domain::DL;
      default: return Domain::None;
    }
}

/** Maps a type-keyword token to its DType; nullopt otherwise. */
std::optional<DType>
typeFor(Tok kind)
{
    switch (kind) {
      case Tok::KwBin: return DType::Bin;
      case Tok::KwInt: return DType::Int;
      case Tok::KwFloat: return DType::Float;
      case Tok::KwStr: return DType::Str;
      case Tok::KwComplex: return DType::Complex;
      default: return std::nullopt;
    }
}

ExprPtr
makeBinary(std::string op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->loc = loc;
    e->op = std::move(op);
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
}

} // namespace

Program
parse(const std::string &source)
{
    obs::Span span("pmlang:parse", "frontend");
    span.arg("bytes", static_cast<int64_t>(source.size()));
    Lexer lexer(source);
    Parser parser(lexer.lexAll());
    return parser.parseProgram();
}

Program
parseWithRecovery(const std::string &source, DiagnosticEngine &diag)
{
    std::vector<Token> tokens;
    try {
        Lexer lexer(source);
        tokens = lexer.lexAll();
    } catch (const UserError &e) {
        diag.error(e.message(), e.loc());
        return {};
    }
    Parser parser(std::move(tokens), &diag);
    return parser.parseProgram();
}

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine *diag)
    : toks_(std::move(tokens)), diag_(diag)
{
    if (toks_.empty() || !toks_.back().is(Tok::Eof))
        panic("token stream must end with Eof");
}

const Token &
Parser::peek(int ahead) const
{
    const size_t p = pos_ + static_cast<size_t>(ahead);
    return p < toks_.size() ? toks_[p] : toks_.back();
}

const Token &
Parser::advance()
{
    const Token &t = peek();
    if (!t.is(Tok::Eof))
        ++pos_;
    return t;
}

bool
Parser::match(Tok kind)
{
    if (check(kind)) {
        advance();
        return true;
    }
    return false;
}

const Token &
Parser::expect(Tok kind, const std::string &context)
{
    if (!check(kind)) {
        fatal("expected " + tokName(kind) + " " + context + ", found " +
                  tokName(peek().kind),
              peek().loc);
    }
    return advance();
}

void
Parser::errorHere(const std::string &message) const
{
    fatal(message + " (found " + tokName(peek().kind) + ")", peek().loc);
}

void
Parser::synchronizeStmt()
{
    while (!check(Tok::Eof)) {
        if (match(Tok::Semicolon))
            return;
        const Tok k = peek().kind;
        if (k == Tok::RBrace || k == Tok::KwIndex || k == Tok::KwReduction ||
            typeFor(k) || domainFor(k) != Domain::None) {
            return;
        }
        advance();
    }
}

void
Parser::synchronizeTopLevel()
{
    while (!check(Tok::Eof)) {
        if (check(Tok::KwReduction))
            return;
        if (check(Tok::Ident) && peek(1).is(Tok::LParen))
            return;
        advance();
    }
}

Program
Parser::parseProgram()
{
    Program prog;
    while (!check(Tok::Eof)) {
        const size_t before = pos_;
        try {
            if (check(Tok::KwReduction)) {
                prog.reductions.push_back(parseReduction());
            } else if (check(Tok::Ident)) {
                prog.components.push_back(parseComponent());
            } else {
                errorHere("expected component or reduction declaration");
            }
        } catch (const UserError &e) {
            if (!diag_)
                throw;
            diag_->error(e.message(), e.loc());
            if (pos_ == before)
                advance();
            synchronizeTopLevel();
        }
    }
    return prog;
}

ReductionDecl
Parser::parseReduction()
{
    ReductionDecl red;
    red.loc = peek().loc;
    expect(Tok::KwReduction, "at reduction declaration");
    red.name = expect(Tok::Ident, "after 'reduction'").text;
    expect(Tok::LParen, "in reduction declaration");
    red.paramA = expect(Tok::Ident, "as first reduction parameter").text;
    expect(Tok::Comma, "between reduction parameters");
    red.paramB = expect(Tok::Ident, "as second reduction parameter").text;
    expect(Tok::RParen, "after reduction parameters");
    expect(Tok::Assign, "in reduction declaration");
    red.body = parseExpr();
    expect(Tok::Semicolon, "after reduction body");
    return red;
}

ComponentDecl
Parser::parseComponent()
{
    ComponentDecl comp;
    comp.loc = peek().loc;
    comp.name = expect(Tok::Ident, "at component declaration").text;
    expect(Tok::LParen, "after component name");
    if (!check(Tok::RParen)) {
        comp.args.push_back(parseArgDecl());
        while (match(Tok::Comma))
            comp.args.push_back(parseArgDecl());
    }
    expect(Tok::RParen, "after component arguments");
    expect(Tok::LBrace, "at component body");
    while (!check(Tok::RBrace) && !check(Tok::Eof)) {
        if (!diag_) {
            comp.body.push_back(parseStmt());
            continue;
        }
        const size_t before = pos_;
        try {
            comp.body.push_back(parseStmt());
        } catch (const UserError &e) {
            diag_->error(e.message(), e.loc());
            if (pos_ == before)
                advance();
            synchronizeStmt();
        }
    }
    expect(Tok::RBrace, "at end of component body");
    return comp;
}

ArgDecl
Parser::parseArgDecl()
{
    ArgDecl arg;
    arg.loc = peek().loc;
    switch (peek().kind) {
      case Tok::KwInput: arg.mod = Modifier::Input; break;
      case Tok::KwOutput: arg.mod = Modifier::Output; break;
      case Tok::KwState: arg.mod = Modifier::State; break;
      case Tok::KwParam: arg.mod = Modifier::Param; break;
      default:
        errorHere("expected argument modifier "
                  "(input/output/state/param)");
    }
    advance();
    const auto type = typeFor(peek().kind);
    if (!type)
        errorHere("expected argument type");
    arg.type = *type;
    advance();
    arg.name = expect(Tok::Ident, "as argument name").text;
    arg.dims = parseDims();
    return arg;
}

std::vector<ExprPtr>
Parser::parseDims()
{
    std::vector<ExprPtr> dims;
    while (match(Tok::LBracket)) {
        dims.push_back(parseExpr());
        expect(Tok::RBracket, "after dimension");
    }
    return dims;
}

StmtPtr
Parser::parseStmt()
{
    if (check(Tok::KwIndex))
        return parseIndexDecl();
    if (const auto type = typeFor(peek().kind)) {
        advance();
        return parseVarDecl(*type);
    }
    const Domain dom = domainFor(peek().kind);
    if (dom != Domain::None) {
        advance();
        expect(Tok::Colon, "after domain annotation");
        auto stmt = parseAssignOrCall(dom);
        if (stmt->kind != StmtKind::Call)
            fatal("domain annotations apply only to component "
                  "instantiations",
                  stmt->loc);
        return stmt;
    }
    if (check(Tok::Ident))
        return parseAssignOrCall(Domain::None);
    errorHere("expected statement");
}

StmtPtr
Parser::parseIndexDecl()
{
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::IndexDecl;
    stmt->loc = peek().loc;
    expect(Tok::KwIndex, "at index declaration");
    do {
        IndexSpec spec;
        spec.loc = peek().loc;
        spec.name = expect(Tok::Ident, "as index name").text;
        expect(Tok::LBracket, "after index name");
        spec.lo = parseExpr();
        expect(Tok::Colon, "between index bounds");
        spec.hi = parseExpr();
        expect(Tok::RBracket, "after index bounds");
        stmt->indexSpecs.push_back(std::move(spec));
    } while (match(Tok::Comma));
    expect(Tok::Semicolon, "after index declaration");
    return stmt;
}

StmtPtr
Parser::parseVarDecl(DType type)
{
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::VarDecl;
    stmt->loc = peek().loc;
    stmt->declType = type;
    do {
        LocalDecl decl;
        decl.loc = peek().loc;
        decl.name = expect(Tok::Ident, "as variable name").text;
        decl.dims = parseDims();
        stmt->locals.push_back(std::move(decl));
    } while (match(Tok::Comma));
    expect(Tok::Semicolon, "after variable declaration");
    return stmt;
}

StmtPtr
Parser::parseAssignOrCall(Domain domain)
{
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;
    const std::string name = expect(Tok::Ident, "at statement").text;
    if (check(Tok::LParen)) {
        stmt->kind = StmtKind::Call;
        stmt->domain = domain;
        stmt->callee = name;
        advance();
        if (!check(Tok::RParen)) {
            stmt->callArgs.push_back(parseExpr());
            while (match(Tok::Comma))
                stmt->callArgs.push_back(parseExpr());
        }
        expect(Tok::RParen, "after instantiation arguments");
        expect(Tok::Semicolon, "after component instantiation");
        return stmt;
    }
    stmt->kind = StmtKind::Assign;
    stmt->target = name;
    while (match(Tok::LBracket)) {
        stmt->targetIndices.push_back(parseExpr());
        expect(Tok::RBracket, "after subscript");
    }
    expect(Tok::Assign, "in assignment");
    stmt->value = parseExpr();
    expect(Tok::Semicolon, "after assignment");
    return stmt;
}

ExprPtr
Parser::parseStandaloneExpr()
{
    auto e = parseExpr();
    expect(Tok::Eof, "after expression");
    return e;
}

ExprPtr
Parser::parseExpr()
{
    return parseTernary();
}

ExprPtr
Parser::parseTernary()
{
    auto cond = parseOr();
    if (!match(Tok::Question))
        return cond;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Ternary;
    e->loc = cond->loc;
    e->lhs = std::move(cond);
    e->rhs = parseExpr();
    expect(Tok::Colon, "in conditional expression");
    e->third = parseExpr();
    return e;
}

ExprPtr
Parser::parseOr()
{
    auto lhs = parseAnd();
    while (check(Tok::OrOr)) {
        const SourceLoc loc = peek().loc;
        advance();
        lhs = makeBinary("||", std::move(lhs), parseAnd(), loc);
    }
    return lhs;
}

ExprPtr
Parser::parseAnd()
{
    auto lhs = parseComparison();
    while (check(Tok::AndAnd)) {
        const SourceLoc loc = peek().loc;
        advance();
        lhs = makeBinary("&&", std::move(lhs), parseComparison(), loc);
    }
    return lhs;
}

ExprPtr
Parser::parseComparison()
{
    auto lhs = parseAdditive();
    std::string op;
    switch (peek().kind) {
      case Tok::Lt: op = "<"; break;
      case Tok::Gt: op = ">"; break;
      case Tok::Le: op = "<="; break;
      case Tok::Ge: op = ">="; break;
      case Tok::EqEq: op = "=="; break;
      case Tok::NotEq: op = "!="; break;
      default: return lhs;
    }
    const SourceLoc loc = peek().loc;
    advance();
    return makeBinary(std::move(op), std::move(lhs), parseAdditive(), loc);
}

ExprPtr
Parser::parseAdditive()
{
    auto lhs = parseMultiplicative();
    while (check(Tok::Plus) || check(Tok::Minus)) {
        const std::string op = peek().is(Tok::Plus) ? "+" : "-";
        const SourceLoc loc = peek().loc;
        advance();
        lhs = makeBinary(op, std::move(lhs), parseMultiplicative(), loc);
    }
    return lhs;
}

ExprPtr
Parser::parseMultiplicative()
{
    auto lhs = parsePower();
    while (check(Tok::Star) || check(Tok::Slash) || check(Tok::Percent)) {
        std::string op = "*";
        if (peek().is(Tok::Slash))
            op = "/";
        else if (peek().is(Tok::Percent))
            op = "%";
        const SourceLoc loc = peek().loc;
        advance();
        lhs = makeBinary(std::move(op), std::move(lhs), parsePower(), loc);
    }
    return lhs;
}

ExprPtr
Parser::parsePower()
{
    auto base = parseUnary();
    if (!check(Tok::Caret))
        return base;
    const SourceLoc loc = peek().loc;
    advance();
    // right-associative
    return makeBinary("^", std::move(base), parsePower(), loc);
}

ExprPtr
Parser::parseUnary()
{
    if (check(Tok::Minus)) {
        const SourceLoc loc = peek().loc;
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Unary;
        e->loc = loc;
        e->op = "neg";
        e->lhs = parseUnary();
        return e;
    }
    if (check(Tok::Not)) {
        const SourceLoc loc = peek().loc;
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Unary;
        e->loc = loc;
        e->op = "!";
        e->lhs = parseUnary();
        return e;
    }
    return parsePrimary();
}

ExprPtr
Parser::parsePrimary()
{
    if (check(Tok::IntLit) || check(Tok::FloatLit)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Number;
        e->loc = peek().loc;
        e->isIntLit = peek().is(Tok::IntLit);
        // from_chars, not stod: stod honors the global locale and lets
        // out-of-range literals (1e999) escape as std::out_of_range
        // instead of a positioned diagnostic.
        const std::string &text = peek().text;
        const char *begin = text.data();
        const char *end = begin + text.size();
        const auto [ptr, ec] = std::from_chars(begin, end, e->value);
        if (ec == std::errc::result_out_of_range)
            errorHere("number literal out of range: " + text);
        if (ec != std::errc{} || ptr != end)
            errorHere("malformed number literal: " + text);
        advance();
        return e;
    }
    if (match(Tok::LParen)) {
        auto e = parseExpr();
        expect(Tok::RParen, "after parenthesized expression");
        return e;
    }
    if (check(Tok::Ident))
        return parseIdentExpr();
    errorHere("expected expression");
}

ExprPtr
Parser::parseIdentExpr()
{
    auto e = std::make_unique<Expr>();
    e->loc = peek().loc;
    e->name = expect(Tok::Ident, "in expression").text;

    // Bracket groups: either subscripts (A[i][j]) or reduce axes
    // (sum[i][j: j != i]). Disambiguated by a trailing '(' — subscripted
    // references are never applied.
    struct Group
    {
        ExprPtr expr;
        ExprPtr cond;
        SourceLoc loc;
    };
    std::vector<Group> groups;
    while (match(Tok::LBracket)) {
        Group g;
        g.loc = peek().loc;
        g.expr = parseExpr();
        if (match(Tok::Colon))
            g.cond = parseExpr();
        expect(Tok::RBracket, "after subscript");
        groups.push_back(std::move(g));
    }

    if (check(Tok::LParen)) {
        advance();
        if (groups.empty()) {
            // Built-in function application: sigmoid(x), pow(a, b), ...
            e->kind = ExprKind::Call;
            if (!check(Tok::RParen)) {
                e->args.push_back(parseExpr());
                while (match(Tok::Comma))
                    e->args.push_back(parseExpr());
            }
            expect(Tok::RParen, "after function arguments");
            return e;
        }
        // Group reduction: every bracket group must be a bare index name.
        e->kind = ExprKind::Reduce;
        for (auto &g : groups) {
            if (g.expr->kind != ExprKind::Ref || !g.expr->args.empty()) {
                fatal("reduction axis must be a bare index variable",
                      g.loc);
            }
            ReduceAxis axis;
            axis.index = g.expr->name;
            axis.cond = std::move(g.cond);
            axis.loc = g.loc;
            e->axes.push_back(std::move(axis));
        }
        e->body = parseExpr();
        expect(Tok::RParen, "after reduction body");
        return e;
    }

    // Plain (possibly subscripted) reference.
    e->kind = ExprKind::Ref;
    for (auto &g : groups) {
        if (g.cond) {
            fatal("conditional subscripts are only valid on reduction "
                  "axes",
                  g.loc);
        }
        e->args.push_back(std::move(g.expr));
    }
    return e;
}

} // namespace polymath::lang
