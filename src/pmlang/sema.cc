#include "pmlang/sema.h"

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat_map.h"
#include "obs/trace.h"
#include "pmlang/builtins.h"

namespace polymath::lang {

namespace {

/** What a name refers to inside a component body. */
struct Symbol
{
    enum class Kind { Arg, Local, Index, DimSym };

    Kind kind = Kind::Local;
    Modifier mod = Modifier::Input; // Args only
    int rank = 0;                   // tensor rank; index/dim syms are 0
    SourceLoc loc;
};

/** Per-component analysis state. */
class ComponentChecker
{
  public:
    ComponentChecker(const Program &prog, const ComponentDecl &comp)
        : prog_(prog), comp_(comp)
    {
    }

    void check();

  private:
    void declareArgs();
    void checkStmt(const Stmt &stmt);
    void checkAssign(const Stmt &stmt);
    void checkCall(const Stmt &stmt);

    /** Validates an expression. @p bound is the set of index variables
     *  usable at this point. */
    void checkExpr(const Expr &e, const std::set<std::string_view> &bound);

    /** Validates an index-arithmetic expression (subscripts, bounds, axis
     *  guards): only index variables in @p bound, int params, dim symbols,
     *  and literals may appear. @p bound == nullptr denotes an assignment
     *  LHS, where index variables bind themselves. */
    void checkIndexExpr(const Expr &e, const std::set<std::string_view> *bound);

    const Symbol &lookup(const std::string &name, SourceLoc loc) const;
    bool isReadable(const Symbol &sym, const std::string &name) const;
    bool isWritable(const Symbol &sym) const;

    /** Collects index variables syntactically present in @p e. */
    void collectIndexVars(const Expr &e, std::set<std::string_view> *out) const;

    const Program &prog_;
    const ComponentDecl &comp_;
    FlatStringMap<Symbol> scope_; // keys view into the AST
    std::set<std::string_view> assigned_; // outputs/locals written so far
};

void
ComponentChecker::declareArgs()
{
    for (const auto &arg : comp_.args) {
        if (scope_.count(arg.name)) {
            fatal("duplicate argument '" + arg.name + "' in component '" +
                      comp_.name + "'",
                  arg.loc);
        }
        Symbol sym;
        sym.kind = Symbol::Kind::Arg;
        sym.mod = arg.mod;
        sym.rank = static_cast<int>(arg.dims.size());
        sym.loc = arg.loc;
        scope_[arg.name] = sym;
    }
    // Symbolic dimensions (e.g. m, n in mvmul) become read-only scalars.
    for (const auto &arg : comp_.args) {
        for (const auto &dim : arg.dims) {
            std::set<std::string_view> names;
            collectIndexVars(*dim, &names);
            for (const auto &n : names) {
                if (scope_.count(n))
                    continue;
                Symbol sym;
                sym.kind = Symbol::Kind::DimSym;
                sym.loc = dim->loc;
                scope_[n] = sym;
            }
        }
    }
}

void
ComponentChecker::check()
{
    declareArgs();
    for (const auto &stmt : comp_.body)
        checkStmt(*stmt);
    for (const auto &arg : comp_.args) {
        if (arg.mod == Modifier::Output && !assigned_.count(arg.name)) {
            fatal("output '" + arg.name + "' of component '" + comp_.name +
                      "' is never assigned",
                  arg.loc);
        }
    }
}

void
ComponentChecker::checkStmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case StmtKind::IndexDecl:
        for (const auto &spec : stmt.indexSpecs) {
            if (scope_.count(spec.name))
                fatal("redeclaration of '" + spec.name + "'", spec.loc);
            const std::set<std::string_view> none;
            checkIndexExpr(*spec.lo, &none);
            checkIndexExpr(*spec.hi, &none);
            Symbol sym;
            sym.kind = Symbol::Kind::Index;
            sym.loc = spec.loc;
            scope_[spec.name] = sym;
        }
        return;
      case StmtKind::VarDecl:
        for (const auto &decl : stmt.locals) {
            if (scope_.count(decl.name))
                fatal("redeclaration of '" + decl.name + "'", decl.loc);
            const std::set<std::string_view> none;
            for (const auto &dim : decl.dims)
                checkIndexExpr(*dim, &none);
            Symbol sym;
            sym.kind = Symbol::Kind::Local;
            sym.rank = static_cast<int>(decl.dims.size());
            sym.loc = decl.loc;
            scope_[decl.name] = sym;
        }
        return;
      case StmtKind::Assign:
        checkAssign(stmt);
        return;
      case StmtKind::Call:
        checkCall(stmt);
        return;
    }
    panic("unhandled StmtKind");
}

void
ComponentChecker::checkAssign(const Stmt &stmt)
{
    const Symbol &target = lookup(stmt.target, stmt.loc);
    if (!isWritable(target)) {
        fatal("'" + stmt.target + "' is not writable (" +
                  (target.kind == Symbol::Kind::Arg
                       ? toString(target.mod) + " argument"
                       : "index or dimension symbol") +
                  ")",
              stmt.loc);
    }
    if (!stmt.targetIndices.empty() &&
        static_cast<int>(stmt.targetIndices.size()) != target.rank) {
        fatal("'" + stmt.target + "' has rank " +
                  std::to_string(target.rank) + " but is subscripted " +
                  std::to_string(stmt.targetIndices.size()) + " time(s)",
              stmt.loc);
    }
    if (stmt.targetIndices.empty() && target.rank != 0) {
        fatal("whole-tensor assignment to '" + stmt.target +
                  "' requires explicit subscripts",
              stmt.loc);
    }

    std::set<std::string_view> bound;
    for (const auto &ix : stmt.targetIndices) {
        checkIndexExpr(*ix, nullptr);
        collectIndexVars(*ix, &bound);
    }
    // Keep only actual index variables.
    std::set<std::string_view> bound_indices;
    for (const auto &n : bound) {
        auto it = scope_.find(n);
        if (it != scope_.end() && it->second.kind == Symbol::Kind::Index)
            bound_indices.insert(n);
    }
    checkExpr(*stmt.value, bound_indices);
    assigned_.insert(stmt.target);
}

void
ComponentChecker::checkCall(const Stmt &stmt)
{
    const ComponentDecl *callee = prog_.findComponent(stmt.callee);
    if (!callee) {
        fatal("unknown component '" + stmt.callee + "'", stmt.loc);
    }
    if (callee->args.size() != stmt.callArgs.size()) {
        fatal("component '" + stmt.callee + "' takes " +
                  std::to_string(callee->args.size()) + " argument(s), " +
                  std::to_string(stmt.callArgs.size()) + " given",
              stmt.loc);
    }
    for (size_t i = 0; i < callee->args.size(); ++i) {
        const ArgDecl &formal = callee->args[i];
        const Expr &actual = *stmt.callArgs[i];
        if (actual.kind == ExprKind::Ref && actual.args.empty()) {
            const Symbol &sym = lookup(actual.name, actual.loc);
            if (sym.kind == Symbol::Kind::Index) {
                fatal("index variable '" + actual.name +
                          "' cannot be an instantiation argument",
                      actual.loc);
            }
            const bool needs_write = formal.mod == Modifier::Output ||
                                     formal.mod == Modifier::State;
            if (needs_write && !isWritable(sym)) {
                fatal("argument '" + actual.name + "' bound to " +
                          toString(formal.mod) + " '" + formal.name +
                          "' must be writable",
                      actual.loc);
            }
            if (!needs_write && !isReadable(sym, actual.name)) {
                fatal("argument '" + actual.name +
                          "' is not readable here",
                      actual.loc);
            }
            if (needs_write)
                assigned_.insert(actual.name);
        } else {
            // Non-reference actuals are constant expressions and may only
            // bind to param formals (e.g. the literal horizon in Fig. 4).
            if (formal.mod != Modifier::Param) {
                fatal("expression argument may only bind to a param "
                      "formal",
                      actual.loc);
            }
            const std::set<std::string_view> none;
            checkIndexExpr(actual, &none);
        }
    }
}

void
ComponentChecker::checkExpr(const Expr &e, const std::set<std::string_view> &bound)
{
    switch (e.kind) {
      case ExprKind::Number:
        return;
      case ExprKind::Ref: {
        const Symbol &sym = lookup(e.name, e.loc);
        if (sym.kind == Symbol::Kind::Index) {
            if (!bound.count(e.name)) {
                fatal("index variable '" + e.name +
                          "' is not bound in this statement",
                      e.loc);
            }
            if (!e.args.empty())
                fatal("index variable '" + e.name +
                          "' cannot be subscripted",
                      e.loc);
            return;
        }
        if (!isReadable(sym, e.name))
            fatal("'" + e.name + "' is not readable here", e.loc);
        if (!e.args.empty() &&
            static_cast<int>(e.args.size()) != sym.rank) {
            fatal("'" + e.name + "' has rank " + std::to_string(sym.rank) +
                      " but is subscripted " + std::to_string(e.args.size()) +
                      " time(s)",
                  e.loc);
        }
        if (e.args.empty() && sym.rank != 0) {
            fatal("tensor '" + e.name +
                      "' must be fully subscripted in an expression",
                  e.loc);
        }
        for (const auto &ix : e.args)
            checkIndexExpr(*ix, &bound);
        return;
      }
      case ExprKind::Unary:
        checkExpr(*e.lhs, bound);
        return;
      case ExprKind::Binary:
        checkExpr(*e.lhs, bound);
        checkExpr(*e.rhs, bound);
        return;
      case ExprKind::Ternary:
        checkExpr(*e.lhs, bound);
        checkExpr(*e.rhs, bound);
        checkExpr(*e.third, bound);
        return;
      case ExprKind::Call: {
        if (!isBuiltinFunction(e.name)) {
            fatal("unknown function '" + e.name +
                      "' (components are instantiated as statements, not "
                      "called in expressions)",
                  e.loc);
        }
        const int arity = builtinArity(e.name);
        if (static_cast<int>(e.args.size()) != arity) {
            fatal("builtin '" + e.name + "' takes " +
                      std::to_string(arity) + " argument(s)",
                  e.loc);
        }
        for (const auto &a : e.args)
            checkExpr(*a, bound);
        return;
      }
      case ExprKind::Reduce: {
        if (!isBuiltinReduction(e.name) && !prog_.findReduction(e.name)) {
            fatal("unknown reduction '" + e.name + "'", e.loc);
        }
        std::set<std::string_view> inner = bound;
        for (const auto &axis : e.axes) {
            const Symbol &sym = lookup(axis.index, axis.loc);
            if (sym.kind != Symbol::Kind::Index) {
                fatal("reduction axis '" + axis.index +
                          "' is not a declared index variable",
                      axis.loc);
            }
            inner.insert(axis.index);
        }
        // Axis guards may reference any axis of this reduction.
        for (const auto &axis : e.axes) {
            if (axis.cond)
                checkIndexExpr(*axis.cond, &inner);
        }
        checkExpr(*e.body, inner);
        return;
      }
    }
    panic("unhandled ExprKind");
}

void
ComponentChecker::checkIndexExpr(const Expr &e,
                                 const std::set<std::string_view> *bound)
{
    switch (e.kind) {
      case ExprKind::Number:
        return;
      case ExprKind::Ref: {
        if (!e.args.empty())
            fatal("subscripted reference in index arithmetic", e.loc);
        const Symbol &sym = lookup(e.name, e.loc);
        if (sym.kind == Symbol::Kind::Index) {
            // Inside subscripts of an assignment LHS, index variables bind
            // themselves; inside other index arithmetic they must be bound.
            if (bound != nullptr && !bound->count(e.name)) {
                fatal("index variable '" + e.name +
                          "' is not bound in this context",
                      e.loc);
            }
            return;
        }
        if (sym.kind == Symbol::Kind::DimSym)
            return;
        if (sym.kind == Symbol::Kind::Arg && sym.mod == Modifier::Param &&
            sym.rank == 0) {
            return;
        }
        fatal("index arithmetic may only use index variables, scalar "
              "params, dimension symbols, and constants ('" +
                  e.name + "' is none of these)",
              e.loc);
      }
      case ExprKind::Unary:
        checkIndexExpr(*e.lhs, bound);
        return;
      case ExprKind::Binary:
        checkIndexExpr(*e.lhs, bound);
        checkIndexExpr(*e.rhs, bound);
        return;
      case ExprKind::Ternary:
        checkIndexExpr(*e.lhs, bound);
        checkIndexExpr(*e.rhs, bound);
        checkIndexExpr(*e.third, bound);
        return;
      case ExprKind::Call:
      case ExprKind::Reduce:
        fatal("function calls are not allowed in index arithmetic", e.loc);
    }
    panic("unhandled ExprKind");
}

void
ComponentChecker::collectIndexVars(const Expr &e,
                                   std::set<std::string_view> *out) const
{
    switch (e.kind) {
      case ExprKind::Number:
        return;
      case ExprKind::Ref:
        if (e.args.empty())
            out->insert(e.name);
        for (const auto &ix : e.args)
            collectIndexVars(*ix, out);
        return;
      case ExprKind::Unary:
        collectIndexVars(*e.lhs, out);
        return;
      case ExprKind::Binary:
        collectIndexVars(*e.lhs, out);
        collectIndexVars(*e.rhs, out);
        return;
      case ExprKind::Ternary:
        collectIndexVars(*e.lhs, out);
        collectIndexVars(*e.rhs, out);
        collectIndexVars(*e.third, out);
        return;
      case ExprKind::Call:
        for (const auto &a : e.args)
            collectIndexVars(*a, out);
        return;
      case ExprKind::Reduce:
        collectIndexVars(*e.body, out);
        return;
    }
    panic("unhandled ExprKind");
}

const Symbol &
ComponentChecker::lookup(const std::string &name, SourceLoc loc) const
{
    auto it = scope_.find(name);
    if (it == scope_.end()) {
        fatal("use of undeclared name '" + name + "' in component '" +
                  comp_.name + "'",
              loc);
    }
    return it->second;
}

bool
ComponentChecker::isReadable(const Symbol &sym, const std::string &name) const
{
    if (sym.kind == Symbol::Kind::DimSym)
        return true;
    if (sym.kind == Symbol::Kind::Local)
        return assigned_.count(name) > 0;
    if (sym.kind == Symbol::Kind::Arg) {
        switch (sym.mod) {
          case Modifier::Input:
          case Modifier::State:
          case Modifier::Param:
            return true;
          case Modifier::Output:
            // Outputs become readable once the component has produced them
            // (pred in Fig. 4 is read back on the line after it is written).
            return assigned_.count(name) > 0;
        }
    }
    return false;
}

bool
ComponentChecker::isWritable(const Symbol &sym) const
{
    if (sym.kind == Symbol::Kind::Local)
        return true;
    if (sym.kind == Symbol::Kind::Arg)
        return sym.mod == Modifier::Output || sym.mod == Modifier::State;
    return false;
}

/** Detects recursive component instantiation via DFS over the call graph. */
class RecursionChecker
{
  public:
    explicit RecursionChecker(const Program &prog) : prog_(prog) {}

    void check()
    {
        for (const auto &comp : prog_.components)
            visit(comp);
    }

  private:
    void visit(const ComponentDecl &comp)
    {
        if (done_.count(comp.name))
            return;
        if (!onPath_.insert(comp.name).second) {
            fatal("recursive instantiation of component '" + comp.name +
                      "'",
                  comp.loc);
        }
        for (const auto &stmt : comp.body) {
            if (stmt->kind != StmtKind::Call)
                continue;
            if (const auto *callee = prog_.findComponent(stmt->callee))
                visit(*callee);
        }
        onPath_.erase(comp.name);
        done_.insert(comp.name);
    }

    const Program &prog_;
    std::set<std::string_view> onPath_;
    std::set<std::string_view> done_;
};

/** Validates a custom reduction body: pure scalar expression over (a, b). */
void
checkReduction(const ReductionDecl &red)
{
    struct Walker
    {
        const ReductionDecl &red;

        void walk(const Expr &e) const
        {
            switch (e.kind) {
              case ExprKind::Number:
                return;
              case ExprKind::Ref:
                if (!e.args.empty() ||
                    (e.name != red.paramA && e.name != red.paramB)) {
                    fatal("reduction body may only reference its two "
                          "parameters",
                          e.loc);
                }
                return;
              case ExprKind::Unary:
                walk(*e.lhs);
                return;
              case ExprKind::Binary:
                walk(*e.lhs);
                walk(*e.rhs);
                return;
              case ExprKind::Ternary:
                walk(*e.lhs);
                walk(*e.rhs);
                walk(*e.third);
                return;
              case ExprKind::Call:
                if (!isBuiltinFunction(e.name) ||
                    static_cast<int>(e.args.size()) !=
                        builtinArity(e.name)) {
                    fatal("invalid function in reduction body", e.loc);
                }
                for (const auto &a : e.args)
                    walk(*a);
                return;
              case ExprKind::Reduce:
                fatal("nested reductions are not allowed in reduction "
                      "bodies",
                      e.loc);
            }
            panic("unhandled ExprKind");
        }
    };
    Walker{red}.walk(*red.body);
}

} // namespace

void
analyze(const Program &prog, const std::string &entry)
{
    obs::Span span("pmlang:sema", "frontend");
    span.arg("components", static_cast<int64_t>(prog.components.size()));
    std::set<std::string_view> names;
    for (const auto &comp : prog.components) {
        if (!names.insert(comp.name).second)
            fatal("duplicate component '" + comp.name + "'", comp.loc);
        if (isBuiltinFunction(comp.name) || isBuiltinReduction(comp.name)) {
            fatal("component '" + comp.name + "' shadows a builtin",
                  comp.loc);
        }
    }
    std::set<std::string_view> rednames;
    for (const auto &red : prog.reductions) {
        if (!rednames.insert(red.name).second)
            fatal("duplicate reduction '" + red.name + "'", red.loc);
        checkReduction(red);
    }
    if (!prog.findComponent(entry))
        fatal("entry component '" + entry + "' not found");

    RecursionChecker(prog).check();
    for (const auto &comp : prog.components)
        ComponentChecker(prog, comp).check();
}

} // namespace polymath::lang
