#include "pmlang/ast.h"

namespace polymath::lang {

std::string
toString(Modifier m)
{
    switch (m) {
      case Modifier::Input: return "input";
      case Modifier::Output: return "output";
      case Modifier::State: return "state";
      case Modifier::Param: return "param";
    }
    panic("unhandled Modifier");
}

std::string
toString(Domain d)
{
    switch (d) {
      case Domain::None: return "";
      case Domain::RBT: return "RBT";
      case Domain::GA: return "GA";
      case Domain::DSP: return "DSP";
      case Domain::DA: return "DA";
      case Domain::DL: return "DL";
    }
    panic("unhandled Domain");
}

const ComponentDecl *
Program::findComponent(const std::string &name) const
{
    for (const auto &c : components) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

const ReductionDecl *
Program::findReduction(const std::string &name) const
{
    for (const auto &r : reductions) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

ExprPtr
cloneExpr(const Expr &e)
{
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->loc = e.loc;
    out->value = e.value;
    out->isIntLit = e.isIntLit;
    out->name = e.name;
    out->op = e.op;
    for (const auto &a : e.args)
        out->args.push_back(cloneExpr(*a));
    if (e.lhs)
        out->lhs = cloneExpr(*e.lhs);
    if (e.rhs)
        out->rhs = cloneExpr(*e.rhs);
    if (e.third)
        out->third = cloneExpr(*e.third);
    for (const auto &ax : e.axes) {
        ReduceAxis axis;
        axis.index = ax.index;
        axis.loc = ax.loc;
        if (ax.cond)
            axis.cond = cloneExpr(*ax.cond);
        out->axes.push_back(std::move(axis));
    }
    if (e.body)
        out->body = cloneExpr(*e.body);
    return out;
}

std::string
exprToString(const Expr &e)
{
    switch (e.kind) {
      case ExprKind::Number:
        if (e.isIntLit)
            return std::to_string(static_cast<long long>(e.value));
        return std::to_string(e.value);
      case ExprKind::Ref: {
        std::string out = e.name;
        for (const auto &ix : e.args)
            out += "[" + exprToString(*ix) + "]";
        return out;
      }
      case ExprKind::Unary:
        return (e.op == "neg" ? "-" : e.op) + exprToString(*e.lhs);
      case ExprKind::Binary:
        return "(" + exprToString(*e.lhs) + " " + e.op + " " +
               exprToString(*e.rhs) + ")";
      case ExprKind::Ternary:
        return "(" + exprToString(*e.lhs) + " ? " + exprToString(*e.rhs) +
               " : " + exprToString(*e.third) + ")";
      case ExprKind::Call: {
        std::string out = e.name + "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                out += ", ";
            out += exprToString(*e.args[i]);
        }
        return out + ")";
      }
      case ExprKind::Reduce: {
        std::string out = e.name;
        for (const auto &ax : e.axes) {
            out += "[" + ax.index;
            if (ax.cond)
                out += ": " + exprToString(*ax.cond);
            out += "]";
        }
        return out + "(" + exprToString(*e.body) + ")";
      }
    }
    panic("unhandled ExprKind");
}

} // namespace polymath::lang
