/**
 * @file
 * Traversal utilities over one level of an srDFG.
 */
#ifndef POLYMATH_SRDFG_TRAVERSAL_H_
#define POLYMATH_SRDFG_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "srdfg/graph.h"

namespace polymath::ir {

/**
 * Topologically sorted live node ids of @p graph (producers before
 * consumers). @throws InternalError if the dataflow has a cycle.
 */
std::vector<NodeId> topoOrder(const Graph &graph);

/** Applies @p fn to every live node of @p graph and, recursively, of every
 *  component subgraph (pre-order). The graph owning the node is passed
 *  alongside. */
void forEachNodeRecursive(
    Graph &graph, const std::function<void(Graph &, Node &)> &fn);

/** Const overload. */
void forEachNodeRecursive(
    const Graph &graph,
    const std::function<void(const Graph &, const Node &)> &fn);

/** Number of recursion levels below @p graph (1 when no components). */
int recursionDepth(const Graph &graph);

/** Ids of values with no live consumer and not listed as graph outputs. */
std::vector<ValueId> deadValues(const Graph &graph);

} // namespace polymath::ir

#endif // POLYMATH_SRDFG_TRAVERSAL_H_
