#include "srdfg/printer.h"

#include <map>

#include "core/strings.h"
#include "srdfg/traversal.h"

namespace polymath::ir {

namespace {

std::string
accessStr(const Graph &graph, const Access &a,
          std::span<const std::string> var_names)
{
    const auto cs = graph.coords(a);
    if (a.isIndexOperand())
        return "#(" + cs[0].str(var_names) + ")";
    const Value &v = graph.value(a.value);
    std::string out =
        v.md.name.empty() ? "%" + std::to_string(v.id) : v.md.name;
    if (!v.md.name.empty())
        out += "@" + std::to_string(v.id);
    for (const auto &c : cs)
        out += "[" + c.str(var_names) + "]";
    return out;
}

void
printLevel(const Graph &graph, const PrintOptions &opts, int depth,
           std::string *out)
{
    const std::string pad(static_cast<size_t>(depth) * 2, ' ');
    *out += pad + "graph " + graph.name;
    if (graph.domain != Domain::None)
        *out += " <" + lang::toString(graph.domain) + ">";
    *out += " {\n";
    if (opts.showMetadata) {
        for (ValueId v : graph.inputs) {
            const Value &val = graph.value(v);
            *out += pad + "  in  " + toString(val.md.kind) + " " +
                    toString(val.md.dtype) + " " + val.md.name +
                    val.md.shape.str() + "\n";
        }
    }
    for (NodeId id : topoOrder(graph)) {
        const Node &node = *graph.node(id);
        const auto names = node.domainVarNames(graph);
        const auto ins = graph.ins(node);
        const auto outs = graph.outs(node);
        const auto dvars = graph.domainVars(node);
        *out += pad + "  ";
        switch (node.kind) {
          case NodeKind::Constant:
            *out += accessStr(graph, outs[0], names) + " = const " +
                    formatG(node.cval, 6);
            break;
          case NodeKind::Map:
          case NodeKind::Reduce: {
            *out += accessStr(graph, outs[0], names) + " = " +
                    node.op.str();
            if (!dvars.empty()) {
                *out += "{";
                for (size_t i = 0; i < dvars.size(); ++i) {
                    if (i)
                        *out += ",";
                    *out += dvars[i].name;
                    if (dvars[i].reduced)
                        *out += "!";
                    *out += ":" + std::to_string(dvars[i].extent);
                }
                *out += "}";
            }
            if (node.hasPredicate)
                *out += " if(" + node.predicate.str(names) + ")";
            *out += "(";
            for (size_t i = 0; i < ins.size(); ++i) {
                if (i)
                    *out += ", ";
                *out += accessStr(graph, ins[i], names);
            }
            *out += ")";
            if (node.base >= 0)
                *out += " base=" + accessStr(graph, Access{node.base, {}},
                                             names);
            break;
          }
          case NodeKind::Component: {
            *out += "(";
            for (size_t i = 0; i < outs.size(); ++i) {
                if (i)
                    *out += ", ";
                *out += accessStr(graph, outs[i], names);
            }
            *out += ") = " + node.op.str();
            if (node.domain != Domain::None)
                *out += " <" + lang::toString(node.domain) + ">";
            *out += "(";
            for (size_t i = 0; i < ins.size(); ++i) {
                if (i)
                    *out += ", ";
                *out += accessStr(graph, ins[i], names);
            }
            *out += ")";
            break;
          }
        }
        *out += "\n";
        if (node.subgraph &&
            (opts.maxDepth < 0 || depth + 1 < opts.maxDepth)) {
            printLevel(*node.subgraph, opts, depth + 2, out);
        }
    }
    if (opts.showMetadata) {
        for (ValueId v : graph.outputs) {
            const Value &val = graph.value(v);
            *out += pad + "  out " + toString(val.md.kind) + " " +
                    toString(val.md.dtype) + " " + val.md.name +
                    val.md.shape.str() + " = %" + std::to_string(v) + "\n";
        }
    }
    *out += pad + "}\n";
}

void
dotLevel(const Graph &graph, int depth, int max_depth,
         const std::string &prefix, std::string *out)
{
    const std::string pad(static_cast<size_t>(depth) * 2 + 2, ' ');
    for (const Node &node : graph.nodePool()) {
        if (!node.live())
            continue;
        const std::string id = prefix + "n" + std::to_string(node.id);
        if (node.subgraph && depth + 1 < max_depth) {
            *out += pad + "subgraph cluster_" + id + " {\n";
            *out += pad + "  label=\"" + node.op.str() + "\";\n";
            dotLevel(*node.subgraph, depth + 1, max_depth, id + "_", out);
            *out += pad + "}\n";
        } else {
            *out += pad + id + " [label=\"" + node.op.str() + "\"];\n";
        }
    }
    // Edges at this level (value producer -> consumer).
    const auto cons = graph.consumers();
    for (const auto &v : graph.values) {
        if (v.producer < 0 || !graph.node(v.producer))
            continue;
        for (NodeId dst : cons[static_cast<size_t>(v.id)]) {
            *out += pad + prefix + "n" + std::to_string(v.producer) +
                    " -> " + prefix + "n" + std::to_string(dst);
            if (!v.md.name.empty())
                *out += " [label=\"" + v.md.name + "\"]";
            *out += ";\n";
        }
    }
}

} // namespace

std::string
printGraph(const Graph &graph, const PrintOptions &opts)
{
    std::string out;
    printLevel(graph, opts, 0, &out);
    return out;
}

std::string
toDot(const Graph &graph, int maxDepth)
{
    std::string out = "digraph srdfg {\n  compound=true;\n";
    dotLevel(graph, 0, maxDepth, "", &out);
    out += "}\n";
    return out;
}

std::string
graphStats(const Graph &graph)
{
    std::map<NodeKind, int64_t> counts;
    int64_t total = 0;
    forEachNodeRecursive(graph,
                         [&](const Graph &, const Node &node) {
                             ++counts[node.kind];
                             ++total;
                         });
    return format("nodes=%lld (const=%lld map=%lld reduce=%lld comp=%lld) "
                  "depth=%d scalar_ops=%lld arena_bytes=%lld",
                  static_cast<long long>(total),
                  static_cast<long long>(counts[NodeKind::Constant]),
                  static_cast<long long>(counts[NodeKind::Map]),
                  static_cast<long long>(counts[NodeKind::Reduce]),
                  static_cast<long long>(counts[NodeKind::Component]),
                  recursionDepth(graph),
                  static_cast<long long>(graph.scalarOpCount()),
                  static_cast<long long>(graph.arenaBytes()));
}

} // namespace polymath::ir
